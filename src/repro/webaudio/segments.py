"""Graph segmentation for the fused whole-buffer render path.

The quantum loop pays its Python interpreter overhead ~40 times per
render (once per 128-frame block): topological dispatch, input mixing,
and a flurry of small NumPy calls per node. For the graphs the
fingerprinting vectors actually build — automation-free linear chains
like Oscillator→Compressor→Analyser→Gain→Destination — none of that
per-block structure is load-bearing: every node is either elementwise in
the frame axis or carries block-granular state it can manage internally
(the oscillator's phase wrap, the compressor's envelope).

``plan_segments`` partitions the topologically ordered graph into
*segments*: maximal runs of directly chained stateless nodes, with the
stateful Compressor/Analyser nodes as singleton segment boundaries. A
``FusedPlan`` renders each node over the ENTIRE buffer in one
``process_buffer`` call — one graph walk per render instead of one per
block — and attributes profiler time both per node (same labels as the
quantum loop, so hot-node reports stay comparable) and per segment
(``segment:`` labels, so reports show where fusion concentrates time).

Eligibility is deliberately conservative — the plan is refused (returns
``None``, quantum-loop fallback) when any of these hold:

- a node type has no whole-buffer kernel (``fusible`` is False);
- any ``AudioParam`` on any node carries automation events (fused
  kernels assume block-position-independent params);
- any node has fan-in or fan-out > 1 (multi-source mixing and shared
  outputs render correctly block-by-block; the fused tier only claims
  the linear-chain case its bit-identity tests pin).

The fallback is silent and recorded on the context
(``render_path_used``), so callers and tests can observe the decision.
"""
from __future__ import annotations

from dataclasses import dataclass

from .graph import node_label, topological_order
from .param import AudioParam


@dataclass(frozen=True)
class Segment:
    """A maximal chain of nodes the fused path renders back to back."""

    nodes: tuple
    stateful: bool

    @property
    def label(self) -> str:
        return ">".join(node_label(node) for node in self.nodes)


@dataclass(frozen=True)
class FusedPlan:
    """The segmented, whole-buffer execution order for one graph."""

    order: tuple
    segments: tuple[Segment, ...]


def _is_stateful(node) -> bool:
    """Stateful nodes bound segments: their whole-buffer kernels manage
    cross-block state internally and must not be chained into a run."""
    from .analyser import AnalyserNode
    from .compressor import DynamicsCompressorNode
    return isinstance(node, (AnalyserNode, DynamicsCompressorNode))


def _automation_free(node) -> bool:
    return all(not param._events for param in vars(node).values()
               if isinstance(param, AudioParam))


def plan_segments(nodes, destination) -> FusedPlan | None:
    """Build the fused execution plan, or None if the graph is not fusible."""
    try:
        order = topological_order(nodes)
    except ValueError:
        return None  # cyclic graphs fail identically in the quantum loop

    fan_out: dict = {}
    for node in nodes:
        for port in node._inputs:
            for source in port:
                fan_out[source] = fan_out.get(source, 0) + 1
    for node in order:
        if not node.fusible:
            return None
        if not _automation_free(node):
            return None
        if len(node.sources()) > 1 or fan_out.get(node, 0) > 1:
            return None

    segments: list[Segment] = []
    current: list = []
    for node in order:
        sources = node.sources()
        chained = bool(current and sources and sources[0] is current[-1])
        if _is_stateful(node):
            if current:
                segments.append(Segment(tuple(current), stateful=False))
                current = []
            segments.append(Segment((node,), stateful=True))
        elif chained:
            current.append(node)
        else:
            if current:
                segments.append(Segment(tuple(current), stateful=False))
            current = [node]
    if current:
        segments.append(Segment(tuple(current), stateful=False))
    return FusedPlan(order=tuple(order), segments=tuple(segments))
