"""repro.webaudio — a from-scratch, offline Web Audio API rendering engine.

Everything renders in 128-frame quanta as whole-block NumPy operations;
there are no per-sample Python loops anywhere on the render path.

ENGINE_VERSION is folded into every platform stack's cache key: any change
to a node's DSP must bump it, which invalidates every equivalence-class
render cache at once (see DESIGN.md, "Performance architecture").
"""

ENGINE_VERSION = "1"
RENDER_QUANTUM_FRAMES = 128

from .config import (EngineConfig, CompressorParams, NumpyMath,  # noqa: E402
                     RENDER_BACKENDS, RENDER_PATHS,
                     get_default_render_path, set_default_render_path)
from .buffer import AudioBuffer  # noqa: E402
from .context import OfflineAudioContext  # noqa: E402
from .oscillator import OscillatorNode, PeriodicWave  # noqa: E402
from .gain import GainNode  # noqa: E402
from .merger import ChannelMergerNode  # noqa: E402
from .compressor import DynamicsCompressorNode  # noqa: E402
from .analyser import AnalyserNode  # noqa: E402
from .script_processor import ScriptProcessorNode  # noqa: E402
from .segments import FusedPlan, Segment, plan_segments  # noqa: E402
from . import fft  # noqa: E402
from . import jit  # noqa: E402

__all__ = [
    "ENGINE_VERSION",
    "RENDER_QUANTUM_FRAMES",
    "EngineConfig",
    "CompressorParams",
    "NumpyMath",
    "RENDER_BACKENDS",
    "RENDER_PATHS",
    "get_default_render_path",
    "set_default_render_path",
    "FusedPlan",
    "Segment",
    "plan_segments",
    "jit",
    "AudioBuffer",
    "OfflineAudioContext",
    "OscillatorNode",
    "PeriodicWave",
    "GainNode",
    "ChannelMergerNode",
    "DynamicsCompressorNode",
    "AnalyserNode",
    "ScriptProcessorNode",
    "fft",
]
