"""AudioBuffer — the rendered result."""
from __future__ import annotations

import numpy as np


class AudioBuffer:
    def __init__(self, data: np.ndarray, sample_rate: float):
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self._data = data
        self.sample_rate = float(sample_rate)

    @property
    def number_of_channels(self) -> int:
        return self._data.shape[0]

    @property
    def length(self) -> int:
        return self._data.shape[1]

    @property
    def duration(self) -> float:
        return self.length / self.sample_rate

    def get_channel_data(self, channel: int) -> np.ndarray:
        return self._data[channel]
