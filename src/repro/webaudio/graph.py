"""Graph ordering: topological sort with cycle detection (Kahn)."""
from __future__ import annotations


def topological_order(nodes) -> list:
    """Order nodes so every source renders before its destinations."""
    nodes = list(nodes)
    indegree = {node: len(node.sources()) for node in nodes}
    dependents: dict = {node: [] for node in nodes}
    for node in nodes:
        for src in node.sources():
            dependents[src].append(node)

    ready = [node for node in nodes if indegree[node] == 0]
    order = []
    while ready:
        node = ready.pop()
        order.append(node)
        for dep in dependents[node]:
            indegree[dep] -= 1
            if indegree[dep] == 0:
                ready.append(dep)
    if len(order) != len(nodes):
        raise ValueError(
            "audio graph contains a cycle (delay-free loops are not renderable; "
            "DelayNode-legalized cycles arrive in a later engine version)"
        )
    return order
