"""Graph ordering: topological sort with cycle detection (Kahn) — plus
the node labels the per-node profiler attributes render time to."""
from __future__ import annotations


def node_label(node) -> str:
    """Profiler attribution label: the class name minus the Node suffix
    (OscillatorNode -> "Oscillator"), matching hot-node report rows."""
    name = type(node).__name__
    return name[:-4] if name.endswith("Node") else name


def topological_order(nodes) -> list:
    """Order nodes so every source renders before its destinations."""
    nodes = list(nodes)
    indegree = {node: len(node.sources()) for node in nodes}
    dependents: dict = {node: [] for node in nodes}
    for node in nodes:
        for src in node.sources():
            dependents[src].append(node)

    ready = [node for node in nodes if indegree[node] == 0]
    order = []
    while ready:
        node = ready.pop()
        order.append(node)
        for dep in dependents[node]:
            indegree[dep] -= 1
            if indegree[dep] == 0:
                ready.append(dep)
    if len(order) != len(nodes):
        raise ValueError(
            "audio graph contains a cycle (delay-free loops are not renderable; "
            "DelayNode-legalized cycles arrive in a later engine version)"
        )
    return order
