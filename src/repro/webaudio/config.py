"""Engine configuration: the pluggable backends a render runs against.

``repro.webaudio`` depends only on NumPy. The platform layer
(``repro.platform``) builds richer configs (ulp-perturbed math backends,
alternative FFTs, compressor tuning forks, jitter sub-paths) and passes
them in here; the engine itself only duck-types against them.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .fft import FFTBackend, NumpyFFT


class NumpyMath:
    """Reference math library: raw NumPy ufuncs, no perturbation."""

    name = "numpy"

    def sin(self, x):
        return np.sin(x)

    def cos(self, x):
        return np.cos(x)

    def exp(self, x):
        return np.exp(x)

    def log10(self, x):
        return np.log10(x)

    def pow(self, x, y):
        return np.power(x, y)

    def tanh(self, x):
        return np.tanh(x)


@dataclass(frozen=True)
class CompressorParams:
    """DynamicsCompressorNode tuning (spec defaults; variants per stack)."""

    threshold_db: float = -24.0
    knee_db: float = 30.0
    ratio: float = 12.0
    attack_s: float = 0.003
    release_s: float = 0.25
    makeup_exponent: float = 0.6


@dataclass
class EngineConfig:
    """Everything a render's numeric output depends on, besides the graph."""

    math: object = field(default_factory=NumpyMath)
    fft: FFTBackend = field(default_factory=NumpyFFT)
    compressor: CompressorParams = field(default_factory=CompressorParams)
    #: applied to the analyser's windowed frames (jitter sub-path); None = identity
    jitter_transform: Optional[Callable[[np.ndarray], np.ndarray]] = None
    #: frames the analyser readout window is shifted back (jitter timing bucket)
    readout_offset: int = 0

    @classmethod
    def default(cls) -> "EngineConfig":
        return cls()
