"""Engine configuration: the pluggable backends a render runs against.

``repro.webaudio`` depends only on NumPy. The platform layer
(``repro.platform``) builds richer configs (ulp-perturbed math backends,
alternative FFTs, compressor tuning forks, jitter sub-paths) and passes
them in here; the engine itself only duck-types against them.

Two render-dispatch knobs live here:

``render_path``
    Which execution strategy the context uses: ``"auto"`` (fused
    whole-buffer rendering when the graph is fusible, quantum loop
    otherwise — the default), ``"fused"`` (force the fused path; still
    falls back to the quantum loop for non-fusible graphs), or
    ``"quantum"`` (always the 128-frame block loop). The fused NumPy
    path is bit-identical to the quantum loop, so this knob can never
    change an eFP — it is pure cost control and is deliberately *not*
    part of any cache key. The process-wide default can be overridden
    with ``set_default_render_path()`` or ``$REPRO_RENDER_PATH`` (the
    env var wins, and is inherited by pool workers).

``render_backend``
    The numeric execution tier: ``"numpy"`` (reference) or ``"jit"``
    (numba-compiled sequential kernels when numba is importable, with a
    transparent NumPy fallback otherwise). The JIT tier evaluates the
    same DSP in a different floating-point order, so it is a *distinct
    fingerprint identity* — ``AudioStack.render_tier`` folds it into the
    cache key rather than letting it mutate existing digests.
"""
from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .fft import FFTBackend, NumpyFFT

RENDER_PATHS = ("auto", "fused", "quantum")
RENDER_BACKENDS = ("numpy", "jit")

_default_render_path = "auto"


def set_default_render_path(path: str) -> None:
    """Set the process-wide default ``EngineConfig.render_path``."""
    if path not in RENDER_PATHS:
        raise ValueError(f"render_path must be one of {RENDER_PATHS}, got {path!r}")
    global _default_render_path
    _default_render_path = path


def get_default_render_path() -> str:
    """The effective default render path: ``$REPRO_RENDER_PATH`` if it
    names a valid path, else the ``set_default_render_path()`` value.

    Read at ``EngineConfig`` construction time (once per render), so the
    env var also reaches forked/spawned pool workers for free.
    """
    env = os.environ.get("REPRO_RENDER_PATH", "").strip().lower()
    return env if env in RENDER_PATHS else _default_render_path


class NumpyMath:
    """Reference math library: raw NumPy ufuncs, no perturbation."""

    name = "numpy"

    def sin(self, x):
        return np.sin(x)

    def cos(self, x):
        return np.cos(x)

    def exp(self, x):
        return np.exp(x)

    def log10(self, x):
        return np.log10(x)

    def pow(self, x, y):
        return np.power(x, y)

    def tanh(self, x):
        return np.tanh(x)


@dataclass(frozen=True)
class CompressorParams:
    """DynamicsCompressorNode tuning (spec defaults; variants per stack)."""

    threshold_db: float = -24.0
    knee_db: float = 30.0
    ratio: float = 12.0
    attack_s: float = 0.003
    release_s: float = 0.25
    makeup_exponent: float = 0.6


@dataclass
class EngineConfig:
    """Everything a render's numeric output depends on, besides the graph."""

    math: object = field(default_factory=NumpyMath)
    fft: FFTBackend = field(default_factory=NumpyFFT)
    compressor: CompressorParams = field(default_factory=CompressorParams)
    #: applied to the analyser's windowed frames (jitter sub-path); None = identity
    jitter_transform: Optional[Callable[[np.ndarray], np.ndarray]] = None
    #: frames the analyser readout window is shifted back (jitter timing bucket)
    readout_offset: int = 0
    #: execution strategy: "auto" | "fused" | "quantum" (bit-identical either way)
    render_path: str = field(default_factory=get_default_render_path)
    #: numeric tier: "numpy" | "jit" (a distinct fingerprint identity)
    render_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.render_path not in RENDER_PATHS:
            raise ValueError(
                f"render_path must be one of {RENDER_PATHS}, got {self.render_path!r}")
        if self.render_backend not in RENDER_BACKENDS:
            raise ValueError(
                f"render_backend must be one of {RENDER_BACKENDS}, "
                f"got {self.render_backend!r}")

    @classmethod
    def default(cls) -> "EngineConfig":
        return cls()
