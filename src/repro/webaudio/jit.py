"""Opt-in JIT execution tier: numba-compiled sequential kernels.

This is the engine's third "platform stack" numeric identity (after the
math backend and FFT backend): a native/JIT build evaluates the same DSP
with scalar sequential recurrences instead of NumPy's vectorized
closed-form/pairwise evaluation, so its rounding differs at the ulp
level — exactly the kind of real-world divergence (SIMD vs scalar code
paths, compiler contraction) the paper attributes fingerprint diversity
to. It is therefore keyed as a *distinct* ``AudioStack.render_tier``
rather than allowed to mutate existing fingerprints: selecting it never
invalidates a cached NumPy-tier render and never collides with one.

Gating: numba is an optional dependency. ``numba_available()`` probes
for it once; when absent, the nodes silently run their (bit-identical)
fused NumPy kernels instead — the tier identity stays distinct in the
cache key either way, so a population mixing machines with and without
numba stays deterministic per machine. Kernels compile lazily on first
use and are cached for the process lifetime.
"""
from __future__ import annotations

import numpy as np

from . import RENDER_QUANTUM_FRAMES

_numba_probe: bool | None = None
_kernels: dict | None = None


def numba_available() -> bool:
    """True when the numba import succeeds (probed once per process)."""
    global _numba_probe
    if _numba_probe is None:
        try:
            import numba  # noqa: F401
            _numba_probe = True
        except ImportError:
            _numba_probe = False
    return _numba_probe


def _compile_kernels() -> dict:
    """Lazily numba-compile the sequential kernels (import-safe)."""
    global _kernels
    if _kernels is not None:
        return _kernels
    import numba

    @numba.njit(cache=False)
    def envelope_scan(level, attack_coef, release_coef, env0):
        """Sequential one-pole envelope: y[n] = a*y[n-1] + (1-a)*x[n].

        ``level`` is (B, L); the attack/release coefficient is chosen per
        128-frame block from the block peak (same decision rule as the
        NumPy tier), but the recurrence itself runs per sample — the
        honest scalar evaluation a native compressor performs.
        """
        batch, length = level.shape
        out = np.empty_like(level)
        quantum = RENDER_QUANTUM_FRAMES
        for b in range(batch):
            env = env0[b]
            f0 = 0
            while f0 < length:
                n = min(quantum, length - f0)
                peak = level[b, f0]
                for i in range(1, n):
                    if level[b, f0 + i] > peak:
                        peak = level[b, f0 + i]
                a = attack_coef if peak > env else release_coef
                one_minus = 1.0 - a
                for i in range(n):
                    env = a * env + one_minus * level[b, f0 + i]
                    out[b, f0 + i] = env
                f0 += n
        return out

    @numba.njit(cache=False)
    def synth_harmonics(phases, orders, amps, ulp_scale):
        """Sequential additive synthesis: sum_h amps[h]*sin(orders[h]*p).

        Accumulates harmonics in order per frame (no pairwise tree) and
        applies the math backend's ulp perturbation as a final scale —
        the scalar-libm evaluation order a native build would use.
        """
        length = phases.shape[0]
        n_harm = orders.shape[0]
        out = np.empty(length, dtype=np.float64)
        for i in range(length):
            acc = 0.0
            for h in range(n_harm):
                acc += amps[h] * np.sin(orders[h] * phases[i])
            out[i] = acc * ulp_scale
        return out

    _kernels = {"envelope_scan": envelope_scan,
                "synth_harmonics": synth_harmonics}
    return _kernels


def jit_active(config) -> bool:
    """True when this config selects the JIT tier *and* numba is present."""
    return config.render_backend == "jit" and numba_available()


def envelope_scan(level: np.ndarray, attack_coef: float, release_coef: float,
                  env0: np.ndarray) -> np.ndarray:
    return _compile_kernels()["envelope_scan"](
        np.ascontiguousarray(level), attack_coef, release_coef,
        np.ascontiguousarray(env0))


def synth_harmonics(phases: np.ndarray, orders: np.ndarray, amps: np.ndarray,
                    ulp_scale: float) -> np.ndarray:
    return _compile_kernels()["synth_harmonics"](
        np.ascontiguousarray(phases), np.ascontiguousarray(orders),
        np.ascontiguousarray(amps), ulp_scale)
