"""AnalyserNode: Blackman window + pluggable FFT + dB conversion.

This is the node the paper's fickleness phenomenology lives in: the
windowed frames pass through a jitter transform (denormal-flush /
fused-multiply / float32-precision sub-paths) and the readout window can
be shifted by a load-dependent timing bucket — so the same stack
produces different frequency data under different load states, while
the DC vector (which never touches the analyser) stays bit-stable.

The readout is where batch rows diverge: the quantum loop itself is
jitter-independent, so a batched render accumulates one shared history
per row and then applies each row's readout offset and jitter transform
individually, finishing with ONE batched FFT over all rows — the FFT
backends' per-stage Python overhead (the dominant cost for the
recursive split-radix kernel) is paid once per batch instead of once
per class.
"""
from __future__ import annotations

import time

import numpy as np

from ..obs.profiler import current_node_profiler
from .node import AudioNode, mix_to_channels

_VALID_FFT_SIZES = {2 ** k for k in range(5, 16)}


class AnalyserNode(AudioNode):
    fusible = True

    def __init__(self, context):
        super().__init__(context)
        self._fft_size = 2048
        self.smoothing_time_constant = 0.8
        self.min_decibels = -100.0
        self.max_decibels = -30.0
        self._history: list[np.ndarray] = []  # (B, n) mono blocks
        self._history_len = 0
        self._previous_smoothed: np.ndarray | None = None  # (B, bins)

    @property
    def fft_size(self) -> int:
        return self._fft_size

    @fft_size.setter
    def fft_size(self, value: int) -> None:
        if value not in _VALID_FFT_SIZES:
            raise ValueError(f"fftSize must be a power of two in [32, 32768], got {value}")
        self._fft_size = value

    @property
    def frequency_bin_count(self) -> int:
        return self._fft_size // 2

    def process_block(self, inputs, frame0, n):
        block = inputs[0]
        self._history.append(mix_to_channels(block, 1)[:, 0, :].copy())
        self._history_len += n
        return block  # pass-through

    def process_buffer(self, inputs, length):
        # the readout concatenates history along the frame axis, so one
        # whole-buffer append holds the same bytes as per-quantum appends;
        # smoothing state only advances at readout, never during rendering.
        # Fused buffers are write-once, so the mono view is stored uncopied
        # — a row-uniform (broadcast) input stays cheap until the
        # readout's concatenate materializes it
        block = inputs[0]
        self._history.append(mix_to_channels(block, 1)[:, 0, :])
        self._history_len += length
        return block

    # -- readout ------------------------------------------------------------
    def _time_domain_batch(self, offsets) -> np.ndarray:
        """Per-row time-domain windows: row b's window is shifted back by
        ``offsets[b]`` frames. Returns (B, fft_size)."""
        size = self._fft_size
        if self._history:
            data = np.concatenate(self._history, axis=-1)
        else:
            data = np.zeros((self.context.batch_size, 0), dtype=np.float64)
        out = np.empty((len(offsets), size), dtype=np.float64)
        # offsets repeat heavily (a handful of timing buckets), so slice
        # once per distinct offset and assign to every row that uses it —
        # the history rows hold identical values (the render loop is
        # jitter-independent), so each row gets the exact slice the
        # per-row loop produced
        by_offset: dict[int, list[int]] = {}
        for b, offset in enumerate(offsets):
            by_offset.setdefault(int(offset), []).append(b)
        for offset, idx in by_offset.items():
            row = data[idx[0]]
            end = max(0, row.shape[0] - offset)
            start = end - size
            if start < 0:
                window = np.concatenate([np.zeros(-start), row[:end]])
            else:
                window = row[start:end]
            out[idx] = window
        return out

    def get_float_time_domain_data(self) -> np.ndarray:
        return self._time_domain_batch([int(self.context.config.readout_offset)]
                                       * self.context.batch_size)[0]

    def _blackman(self, math) -> np.ndarray:
        n = np.arange(self._fft_size, dtype=np.float64)
        phase = 2.0 * np.pi * n / self._fft_size
        return 0.42 - 0.5 * math.cos(phase) + 0.08 * math.cos(2.0 * phase)

    def _frequency_data(self, offsets, transforms) -> np.ndarray:
        """The shared readout core: per-row window + jitter, batched FFT.

        ``offsets[b]`` / ``transforms[b]`` are row b's readout shift and
        jitter transform (None = identity). Returns (B, bins) dB data.
        The jitter transforms are applied per row on 1-D slices, so each
        row sees exactly the arithmetic the single-render path performs.
        """
        cfg = self.context.config
        math = cfg.math
        # Rows sharing (offset, transform) produce byte-identical FFT
        # inputs: the render loop is jitter-independent, so every history
        # row holds the same values and readouts only diverge here. Window
        # + transform + FFT run once per *distinct* pair, then scatter —
        # per-row FFT results never depend on which other rows are present
        # (the batched-equals-serial invariant), so the bytes are exact.
        # Bound methods compare by receiver *identity*, so the dedup key
        # unwraps them to (__func__, __self__): JitterPath is a frozen
        # dataclass, giving value equality across parsed instances.
        def _tkey(t):
            func = getattr(t, "__func__", None)
            return (func, t.__self__) if func is not None else t

        inverse = None
        try:
            uniq: dict = {}
            keyed = [(int(o), _tkey(t), t) for o, t in zip(offsets, transforms)]
            inverse_idx = [uniq.setdefault(k[:2], (len(uniq), k[2]))[0]
                           for k in keyed]
            if len(uniq) < len(offsets):
                offsets = [k[0] for k in uniq]
                transforms = [v[1] for v in uniq.values()]
                inverse = np.asarray(inverse_idx, dtype=np.intp)
        except TypeError:
            pass  # unhashable custom transform: render every row
        frames = self._time_domain_batch(offsets) * self._blackman(math)
        if any(t is not None for t in transforms):
            # apply each distinct transform to all its rows at once: the
            # transforms are elementwise, so a (rows, n) application holds
            # the same floats as row-at-a-time calls
            groups: dict = {}
            try:
                for b, t in enumerate(transforms):
                    if t is not None:
                        groups.setdefault(t, []).append(b)
            except TypeError:
                groups = None  # unhashable custom transform
            if groups is not None:
                for t, idx in groups.items():
                    frames[idx] = t(frames[idx])
            else:
                frames = np.stack([
                    t(frames[b]) if t is not None else frames[b]
                    for b, t in enumerate(transforms)
                ])
        profiler = current_node_profiler()
        if profiler is None:
            spectrum = cfg.fft.fft(frames)[..., : self.frequency_bin_count]
        else:
            # attribute the transform itself to its backend, so hot-node
            # reports split Analyser bookkeeping from FFT kernel time
            start = time.perf_counter()
            spectrum = cfg.fft.fft(frames)[..., : self.frequency_bin_count]
            profiler.add(f"fft:{cfg.fft.name}", time.perf_counter() - start)
        magnitude = np.abs(spectrum) / self._fft_size
        if inverse is not None:
            magnitude = magnitude[inverse]

        s = self.smoothing_time_constant
        if self._previous_smoothed is not None and 0.0 < s < 1.0:
            magnitude = s * self._previous_smoothed + (1.0 - s) * magnitude
        self._previous_smoothed = magnitude

        return 20.0 * math.log10(np.maximum(magnitude, 1e-40))

    def get_float_frequency_data(self) -> np.ndarray:
        """Single readout (batch size 1) driven by the context config's
        jitter fields — the classic per-class render path."""
        cfg = self.context.config
        if self.context.batch_size != 1:
            raise ValueError(
                "get_float_frequency_data() requires batch_size == 1; "
                "use get_float_frequency_data_batch() for batched contexts")
        return self._frequency_data([int(cfg.readout_offset)],
                                    [cfg.jitter_transform])[0]

    def get_float_frequency_data_batch(self, jitters) -> np.ndarray:
        """Batched readout: ``jitters[b]`` is row b's JitterPath (or None
        for the reference path). Returns (B, bins)."""
        if len(jitters) != self.context.batch_size:
            raise ValueError(
                f"expected {self.context.batch_size} jitter entries, "
                f"got {len(jitters)}")
        offsets = [j.readout_offset if j is not None else 0 for j in jitters]
        transforms = [j.transform if j is not None else None for j in jitters]
        return self._frequency_data(offsets, transforms)

    def get_byte_frequency_data(self) -> np.ndarray:
        db = self.get_float_frequency_data()
        scaled = 255.0 * (db - self.min_decibels) / (self.max_decibels - self.min_decibels)
        return np.clip(scaled, 0, 255).astype(np.uint8)
