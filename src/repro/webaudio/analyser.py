"""AnalyserNode: Blackman window + pluggable FFT + dB conversion.

This is the node the paper's fickleness phenomenology lives in: the
windowed frames pass through the engine config's jitter transform
(denormal-flush / fused-multiply / float32-precision sub-paths) and the
readout window can be shifted by a load-dependent timing bucket — so the
same stack produces different frequency data under different load states,
while the DC vector (which never touches the analyser) stays bit-stable.
"""
from __future__ import annotations

import time

import numpy as np

from ..obs.profiler import current_node_profiler
from .node import AudioNode, mix_to_channels

_VALID_FFT_SIZES = {2 ** k for k in range(5, 16)}


class AnalyserNode(AudioNode):
    def __init__(self, context):
        super().__init__(context)
        self._fft_size = 2048
        self.smoothing_time_constant = 0.8
        self.min_decibels = -100.0
        self.max_decibels = -30.0
        self._history: list[np.ndarray] = []
        self._history_len = 0
        self._previous_smoothed: np.ndarray | None = None

    @property
    def fft_size(self) -> int:
        return self._fft_size

    @fft_size.setter
    def fft_size(self, value: int) -> None:
        if value not in _VALID_FFT_SIZES:
            raise ValueError(f"fftSize must be a power of two in [32, 32768], got {value}")
        self._fft_size = value

    @property
    def frequency_bin_count(self) -> int:
        return self._fft_size // 2

    def process_block(self, inputs, frame0, n):
        block = inputs[0]
        self._history.append(mix_to_channels(block, 1)[0].copy())
        self._history_len += n
        return block  # pass-through

    # -- readout ------------------------------------------------------------
    def _time_domain(self) -> np.ndarray:
        size = self._fft_size
        offset = int(self.context.config.readout_offset)
        data = np.concatenate(self._history) if self._history else np.zeros(0)
        end = max(0, data.shape[0] - offset)
        start = end - size
        if start < 0:
            return np.concatenate([np.zeros(-start), data[:end]])
        return data[start:end]

    def get_float_time_domain_data(self) -> np.ndarray:
        return self._time_domain()

    def _blackman(self, math) -> np.ndarray:
        n = np.arange(self._fft_size, dtype=np.float64)
        phase = 2.0 * np.pi * n / self._fft_size
        return 0.42 - 0.5 * math.cos(phase) + 0.08 * math.cos(2.0 * phase)

    def get_float_frequency_data(self) -> np.ndarray:
        cfg = self.context.config
        math = cfg.math
        frames = self._time_domain() * self._blackman(math)
        if cfg.jitter_transform is not None:
            frames = cfg.jitter_transform(frames)
        profiler = current_node_profiler()
        if profiler is None:
            spectrum = cfg.fft.fft(frames)[: self.frequency_bin_count]
        else:
            # attribute the transform itself to its backend, so hot-node
            # reports split Analyser bookkeeping from FFT kernel time
            start = time.perf_counter()
            spectrum = cfg.fft.fft(frames)[: self.frequency_bin_count]
            profiler.add(f"fft:{cfg.fft.name}", time.perf_counter() - start)
        magnitude = np.abs(spectrum) / self._fft_size

        s = self.smoothing_time_constant
        if self._previous_smoothed is not None and 0.0 < s < 1.0:
            magnitude = s * self._previous_smoothed + (1.0 - s) * magnitude
        self._previous_smoothed = magnitude

        return 20.0 * math.log10(np.maximum(magnitude, 1e-40))

    def get_byte_frequency_data(self) -> np.ndarray:
        db = self.get_float_frequency_data()
        scaled = 255.0 * (db - self.min_decibels) / (self.max_decibels - self.min_decibels)
        return np.clip(scaled, 0, 255).astype(np.uint8)
