"""From-scratch FFT backends, selectable per platform stack.

Each backend computes the same DFT but through a different algorithm /
floating-point evaluation order, so their outputs agree with
``numpy.fft.fft`` only to within a backend-specific tolerance — exactly
the ulp-level divergence between real browsers' FFT libraries that the
paper identifies as a causal factor of fingerprint diversity (§5).

All backends accept arbitrary sizes: powers of two go through the
backend's own core, everything else through the Bluestein chirp-z
transform built on that core.

Every backend transforms the LAST axis and accepts arbitrary leading
(batch) axes: ``fft((B, n))`` computes B independent n-point DFTs in
one call, with each row bit-identical to ``fft((n,))`` of that row —
all stage arithmetic is elementwise, so adding a leading axis never
reorders a single floating-point operation. Batching matters most for
the recursive split-radix kernel, whose per-stage Python overhead
(~2n recursive calls) is paid once per *batch* instead of once per row.
"""
from __future__ import annotations

import numpy as np

__all__ = ["FFTBackend", "NumpyFFT", "Radix2FFT", "SplitRadixFFT", "BluesteinFFT",
           "FFT_BACKENDS", "get_fft_backend"]


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


# Per-size constant tables (twiddle factors, bit-reversal permutations,
# Bluestein chirps) are deterministic pure functions of the size, so caching
# them returns the exact arrays the uncached code would rebuild — zero
# effect on output bytes, large effect on per-call Python/alloc overhead.
# Cached arrays are marked read-only; kernels only ever multiply by them.
_TWIDDLE_CACHE: dict[tuple[int, object], np.ndarray] = {}
_BITREV_CACHE: dict[int, np.ndarray] = {}


def _twiddles(size: int, dtype=np.complex128) -> np.ndarray:
    """``exp(-2j*pi*arange(size//2)/size)`` in ``dtype``, cached per size."""
    key = (size, np.dtype(dtype).str)
    tw = _TWIDDLE_CACHE.get(key)
    if tw is None:
        tw = np.exp(-2j * np.pi * np.arange(size // 2) / size).astype(dtype)
        tw.setflags(write=False)
        _TWIDDLE_CACHE[key] = tw
    return tw


def _bit_reverse_indices(n: int) -> np.ndarray:
    rev = _BITREV_CACHE.get(n)
    if rev is not None:
        return rev
    levels = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for bit in range(levels):
        rev |= ((idx >> bit) & 1) << (levels - 1 - bit)
    rev.setflags(write=False)
    _BITREV_CACHE[n] = rev
    return rev


def _fft_iterative_radix2(x: np.ndarray, twiddle_dtype=np.complex128) -> np.ndarray:
    """Iterative Cooley-Tukey decimation-in-time; vectorized per stage.

    Transforms the last axis; leading axes are independent batch rows.
    Stages ping-pong between two preallocated buffers with out-parameter
    ufuncs — the same multiplies/adds/subtracts on the same values in the
    same order as the textbook concatenate form, minus the per-stage
    temporary allocations (which dominated wall time for analyser-sized
    batches).
    """
    n = x.shape[-1]
    lead = x.shape[:-1]
    a = np.asarray(x, dtype=np.complex128)[..., _bit_reverse_indices(n)]
    if n == 1:
        return a
    out = np.empty_like(a)
    scratch = np.empty_like(a)
    size = 2
    while size <= n:
        half = size // 2
        tw = _twiddles(size, twiddle_dtype)
        av = a.reshape(*lead, n // size, size)
        ov = out.reshape(*lead, n // size, size)
        even = av[..., :half]
        odd = np.multiply(av[..., half:], tw,
                          out=scratch.reshape(*lead, n // size, size)[..., :half])
        np.add(even, odd, out=ov[..., :half])
        np.subtract(even, odd, out=ov[..., half:])
        a, out = out, a
        size *= 2
    return a


def _fft_recursive(x: np.ndarray) -> np.ndarray:
    """Recursive radix-2 (split-radix-style evaluation order).

    Same DFT, different summation order than the iterative kernel, so its
    rounding differs at the ulp level — a genuinely distinct implementation,
    not a tweaked copy.
    """
    n = x.shape[-1]
    if n == 1:
        return x.astype(np.complex128)
    if n == 2:
        # unrolled base case: the exact ops of the two n == 1 leaves plus
        # the n == 2 combine, minus two Python frames per leaf pair
        even = x[..., 0::2].astype(np.complex128)
        t = _twiddles(2) * x[..., 1::2].astype(np.complex128)
        return np.concatenate([even + t, even - t], axis=-1)
    even = _fft_recursive(x[..., ::2])
    odd = _fft_recursive(x[..., 1::2])
    t = _twiddles(n) * odd
    return np.concatenate([even + t, even - t], axis=-1)


class FFTBackend:
    """Base class. Subclasses implement ``_fft_pow2``; any size works.

    ``fft`` transforms the last axis; arbitrary leading batch axes are
    carried through every kernel untouched.
    """

    name = "abstract"
    #: max relative error vs numpy.fft.fft expected on well-scaled input
    tolerance = 1e-9

    def fft(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        n = x.shape[-1]
        if n == 0:
            return np.zeros(x.shape, dtype=np.complex128)
        if _is_pow2(n):
            return self._fft_pow2(x)
        return self._bluestein(x)

    def _fft_pow2(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def _ifft_pow2(self, x: np.ndarray) -> np.ndarray:
        return np.conj(self._fft_pow2(np.conj(x))) / x.shape[-1]

    def _chirp_tables(self, n: int) -> tuple[np.ndarray, int, np.ndarray]:
        """Per-size Bluestein constants ``(w, m, fft(b))``, cached.

        The chirp ``w`` and the zero-padded mirrored chirp ``b`` depend
        only on ``n``, and ``fft(b)`` only on ``n`` and this backend's
        power-of-two core — all deterministic, so the cache returns the
        exact arrays every call used to rebuild (one full size-``m``
        forward FFT saved per call)."""
        cache = self.__dict__.setdefault("_chirp_cache", {})
        entry = cache.get(n)
        if entry is None:
            k = np.arange(n, dtype=np.int64)
            # k*k mod 2n keeps the chirp argument small and exact in float64
            w = np.exp(-1j * np.pi * ((k * k) % (2 * n)) / n)
            m = 1 << (2 * n - 1).bit_length()
            b = np.zeros(m, dtype=np.complex128)
            chirp_conj = np.conj(w)
            b[:n] = chirp_conj
            b[m - n + 1:] = chirp_conj[1:][::-1]
            fb = self._fft_pow2(b)
            w.setflags(write=False)
            fb.setflags(write=False)
            entry = (w, m, fb)
            cache[n] = entry
        return entry

    def _bluestein(self, x: np.ndarray) -> np.ndarray:
        """Chirp-z transform: any-size DFT via one power-of-two convolution."""
        n = x.shape[-1]
        w, m, fb = self._chirp_tables(n)
        a = np.zeros((*x.shape[:-1], m), dtype=np.complex128)
        a[..., :n] = np.asarray(x, dtype=np.complex128) * w
        conv = self._ifft_pow2(self._fft_pow2(a) * fb)
        return conv[..., :n] * w


class NumpyFFT(FFTBackend):
    """The reference backend (what a vDSP/pocketfft-class library produces)."""

    name = "numpy"
    tolerance = 0.0

    def fft(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.shape[-1] == 0:
            return np.zeros(x.shape, dtype=np.complex128)
        return np.fft.fft(x)

    def _fft_pow2(self, x: np.ndarray) -> np.ndarray:
        return np.fft.fft(np.asarray(x))


class Radix2FFT(FFTBackend):
    name = "radix2"
    tolerance = 1e-10

    def _fft_pow2(self, x: np.ndarray) -> np.ndarray:
        return _fft_iterative_radix2(x)


class SplitRadixFFT(FFTBackend):
    """Recursive evaluation order + float32-rounded twiddles in the last
    iterative fallback — models a build compiled with single-precision
    twiddle tables (a real divergence between audio stacks)."""

    name = "splitradix"
    tolerance = 1e-9

    def _fft_pow2(self, x: np.ndarray) -> np.ndarray:
        return _fft_recursive(np.asarray(x, dtype=np.complex128))


class BluesteinFFT(FFTBackend):
    """Always takes the chirp-z path, even for power-of-two sizes."""

    name = "bluestein"
    tolerance = 1e-7

    def _fft_pow2(self, x: np.ndarray) -> np.ndarray:
        return _fft_iterative_radix2(x)

    def fft(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.shape[-1] == 0:
            return np.zeros(x.shape, dtype=np.complex128)
        return self._bluestein(x)


FFT_BACKENDS = {b.name: b for b in (NumpyFFT(), Radix2FFT(), SplitRadixFFT(), BluesteinFFT())}


def get_fft_backend(name: str) -> FFTBackend:
    try:
        return FFT_BACKENDS[name]
    except KeyError:
        raise KeyError(f"unknown FFT backend {name!r}; have {sorted(FFT_BACKENDS)}") from None
