"""OscillatorNode: band-limited additive synthesis through the stack's
math backend, evaluated per 128-frame block with no per-sample loops.

Harmonic series (all through math.sin so ulp-level library differences
propagate into every waveform):
  sine      k = 1
  square    odd k,  4/pi * sin(k w t)/k
  sawtooth  all k,  2/pi * (-1)^{k+1} sin(k w t)/k
  triangle  odd k,  8/pi^2 * (-1)^{(k-1)/2} sin(k w t)/k^2
The series is truncated at the Nyquist frequency (band-limiting), exactly
like browsers' wavetable oscillators.
"""
from __future__ import annotations

import numpy as np

from . import RENDER_QUANTUM_FRAMES, jit
from .node import AudioNode
from .param import AudioParam

_MAX_HARMONICS = 128
_ULP = 2.0 ** -52


class OscillatorNode(AudioNode):
    number_of_inputs = 0
    fusible = True

    def __init__(self, context):
        super().__init__(context)
        self.type = "sine"
        self.frequency = AudioParam(440.0, min_value=-context.sample_rate / 2,
                                    max_value=context.sample_rate / 2)
        self.detune = AudioParam(0.0)
        self._start_frame: int | None = None
        self._stop_frame: int | None = None
        self._phase = 0.0  # radians, carried across blocks

    def start(self, when: float = 0.0) -> None:
        self._start_frame = int(round(when * self.context.sample_rate))

    def stop(self, when: float) -> None:
        self._stop_frame = int(round(when * self.context.sample_rate))

    def _harmonics(self, nyquist: float, fundamental: float):
        """(orders, amplitudes) of the band-limited series for self.type."""
        if fundamental <= 0:
            return np.array([1.0]), np.array([0.0])
        kmax = min(_MAX_HARMONICS, max(1, int(nyquist / fundamental)))
        if self.type == "sine":
            return np.array([1.0]), np.array([1.0])
        if self.type == "square":
            k = np.arange(1, kmax + 1, 2, dtype=np.float64)
            return k, (4.0 / np.pi) / k
        if self.type == "sawtooth":
            k = np.arange(1, kmax + 1, dtype=np.float64)
            return k, (2.0 / np.pi) * ((-1.0) ** (k + 1)) / k
        if self.type == "triangle":
            k = np.arange(1, kmax + 1, 2, dtype=np.float64)
            sign = (-1.0) ** ((k - 1) / 2)
            return k, (8.0 / np.pi ** 2) * sign / (k * k)
        raise ValueError(f"unknown oscillator type {self.type!r}")

    def process_block(self, inputs, frame0, n):
        batch = self.context.batch_size
        if self._start_frame is None:
            return np.zeros((batch, 1, n), dtype=np.float64)
        fs = self.context.sample_rate
        math = self.context.config.math

        freq = self.frequency.values(frame0, n, fs)
        detune = self.detune.values(frame0, n, fs)
        if np.any(detune):
            freq = freq * math.pow(2.0, detune / 1200.0)

        # phase accumulation across the block (vectorized cumulative sum)
        inc = 2.0 * np.pi * freq / fs
        phases = self._phase + np.cumsum(inc) - inc  # phase at start of each frame
        self._phase = (self._phase + float(np.sum(inc))) % (2.0 * np.pi)

        orders, amps = self._harmonics(fs / 2.0, float(freq[0]))
        # (harmonics, frames) evaluated in one shot through the math backend
        waves = math.sin(orders[:, None] * phases[None, :])
        signal = (amps[:, None] * waves).sum(axis=0)

        frames = frame0 + np.arange(n)
        active = frames >= self._start_frame
        if self._stop_frame is not None:
            active &= frames < self._stop_frame
        # oscillator params are graph state shared by every batch row, so the
        # signal is row-uniform: compute it once, hand out a read-only view
        return np.broadcast_to(np.where(active, signal, 0.0), (batch, 1, n))

    def process_buffer(self, inputs, length):
        """Fused path: synthesize the entire buffer in one pass.

        Automation-free params are block-position independent, so one
        128-frame increment template reproduces every quantum block (the
        final, possibly partial block is a prefix of it — cumsum is
        prefix-stable). Per-block phase starts still walk the quantum
        loop's exact update, ``(phase + sum(inc)) % 2pi`` per block, so
        every phase value — and therefore every sin evaluation — is the
        same float the quantum loop produces.
        """
        batch = self.context.batch_size
        if self._start_frame is None:
            return np.zeros((batch, 1, length), dtype=np.float64)
        fs = self.context.sample_rate
        config = self.context.config
        math = config.math
        quantum = RENDER_QUANTUM_FRAMES

        freq = self.frequency.values(0, quantum, fs)
        detune = self.detune.values(0, quantum, fs)
        if np.any(detune):
            freq = freq * math.pow(2.0, detune / 1200.0)
        inc = 2.0 * np.pi * freq / fs
        block_cumsum = np.cumsum(inc)

        nblocks = -(-length // quantum)
        last_n = length - (nblocks - 1) * quantum
        full_sum = float(np.sum(inc))
        starts = np.empty(nblocks, dtype=np.float64)
        phase = self._phase
        for b in range(nblocks):
            starts[b] = phase
            s = full_sum if (b < nblocks - 1 or last_n == quantum) \
                else float(np.sum(inc[:last_n]))
            phase = (phase + s) % (2.0 * np.pi)
        self._phase = phase
        # (start + cumsum) - inc: the quantum loop's exact phase expression,
        # evaluated for all blocks at once and trimmed to the buffer
        phases = ((starts[:, None] + block_cumsum[None, :]) - inc[None, :])
        phases = phases.reshape(-1)[:length]

        orders, amps = self._harmonics(fs / 2.0, float(freq[0]))
        if jit.jit_active(config):
            ulp_scale = 1.0 + getattr(math, "ulp_shift", 0) * _ULP
            signal = jit.synth_harmonics(phases, orders, amps, ulp_scale)
        else:
            # one whole-buffer sin through the math backend; the harmonic
            # reduction tree per frame is identical at any frame count
            waves = math.sin(orders[:, None] * phases[None, :])
            signal = (amps[:, None] * waves).sum(axis=0)

        frames = np.arange(length)
        active = frames >= self._start_frame
        if self._stop_frame is not None:
            active &= frames < self._stop_frame
        return np.broadcast_to(np.where(active, signal, 0.0), (batch, 1, length))
