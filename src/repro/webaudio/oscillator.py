"""OscillatorNode: band-limited additive synthesis through the stack's
math backend, evaluated per 128-frame block with no per-sample loops.

Harmonic series (all through math.sin so ulp-level library differences
propagate into every waveform):
  sine      k = 1
  square    odd k,  4/pi * sin(k w t)/k
  sawtooth  all k,  2/pi * (-1)^{k+1} sin(k w t)/k
  triangle  odd k,  8/pi^2 * (-1)^{(k-1)/2} sin(k w t)/k^2
The series is truncated at the Nyquist frequency (band-limiting), exactly
like browsers' wavetable oscillators.
"""
from __future__ import annotations

import numpy as np

from . import RENDER_QUANTUM_FRAMES, jit
from .node import AudioNode
from .param import AudioParam

_MAX_HARMONICS = 128
_ULP = 2.0 ** -52


class PeriodicWave:
    """Custom-waveform Fourier coefficients (Web Audio ``PeriodicWave``).

    ``real[k]``/``imag[k]`` are the cosine/sine amplitudes of harmonic
    ``k``; index 0 is ignored exactly as the spec ignores the DC terms.
    Coefficients are copied and frozen at construction, so a wave object
    is a stable identity: the same wave always synthesizes the same
    floats. Normalization is NOT applied (the
    ``disableNormalization=true`` semantics) — fingerprinting probes want
    the raw series, and normalizing would couple every coefficient to a
    render-dependent peak scan.
    """

    __slots__ = ("real", "imag")

    def __init__(self, real, imag):
        real = np.array(real, dtype=np.float64, copy=True)
        imag = np.array(imag, dtype=np.float64, copy=True)
        if real.ndim != 1 or imag.ndim != 1:
            raise ValueError("PeriodicWave coefficients must be 1-D arrays")
        if real.shape != imag.shape:
            raise ValueError(
                f"PeriodicWave real/imag lengths differ: "
                f"{real.shape[0]} != {imag.shape[0]}")
        if real.shape[0] < 2:
            raise ValueError("PeriodicWave needs at least one harmonic "
                             "(index 0 carries the ignored DC terms)")
        real.flags.writeable = False
        imag.flags.writeable = False
        self.real = real
        self.imag = imag


class OscillatorNode(AudioNode):
    number_of_inputs = 0
    fusible = True

    def __init__(self, context):
        super().__init__(context)
        self.type = "sine"
        self.frequency = AudioParam(440.0, min_value=-context.sample_rate / 2,
                                    max_value=context.sample_rate / 2)
        self.detune = AudioParam(0.0)
        self._start_frame: int | None = None
        self._stop_frame: int | None = None
        self._phase = 0.0  # radians, carried across blocks
        self._periodic_wave: PeriodicWave | None = None

    def start(self, when: float = 0.0) -> None:
        self._start_frame = int(round(when * self.context.sample_rate))

    def stop(self, when: float) -> None:
        self._stop_frame = int(round(when * self.context.sample_rate))

    def set_periodic_wave(self, wave: PeriodicWave) -> None:
        """Switch to the custom waveform ``wave`` (type becomes "custom")."""
        if not isinstance(wave, PeriodicWave):
            raise TypeError("set_periodic_wave expects a PeriodicWave")
        self._periodic_wave = wave
        self.type = "custom"

    def _custom_series(self, nyquist: float, fundamental: float):
        """Band-limited (orders, sin_amps, cos_amps) of the custom wave."""
        wave = self._periodic_wave
        if wave is None:
            raise ValueError(
                'oscillator type "custom" requires set_periodic_wave()')
        if fundamental <= 0:
            zero = np.array([0.0])
            return np.array([1.0]), zero, zero
        kmax = min(_MAX_HARMONICS, max(1, int(nyquist / fundamental)),
                   wave.real.shape[0] - 1)
        orders = np.arange(1, kmax + 1, dtype=np.float64)
        return orders, wave.imag[1:kmax + 1], wave.real[1:kmax + 1]

    def _synthesize(self, math, phases: np.ndarray, nyquist: float,
                    fundamental: float) -> np.ndarray:
        """Evaluate the band-limited series on ``phases`` through the math
        backend. Elementwise per frame with a fixed per-frame reduction
        tree, so the result is blocking-invariant: the fused whole-buffer
        call produces exactly the floats the per-block calls produce."""
        if self.type == "custom":
            orders, sin_amps, cos_amps = self._custom_series(nyquist,
                                                             fundamental)
            angles = orders[:, None] * phases[None, :]
            signal = (sin_amps[:, None] * math.sin(angles)).sum(axis=0)
            return signal + (cos_amps[:, None] * math.cos(angles)).sum(axis=0)
        orders, amps = self._harmonics(nyquist, fundamental)
        # one sin through the math backend; the harmonic reduction tree
        # per frame is identical at any frame count
        waves = math.sin(orders[:, None] * phases[None, :])
        return (amps[:, None] * waves).sum(axis=0)

    def _harmonics(self, nyquist: float, fundamental: float):
        """(orders, amplitudes) of the band-limited series for self.type."""
        if fundamental <= 0:
            return np.array([1.0]), np.array([0.0])
        kmax = min(_MAX_HARMONICS, max(1, int(nyquist / fundamental)))
        if self.type == "sine":
            return np.array([1.0]), np.array([1.0])
        if self.type == "square":
            k = np.arange(1, kmax + 1, 2, dtype=np.float64)
            return k, (4.0 / np.pi) / k
        if self.type == "sawtooth":
            k = np.arange(1, kmax + 1, dtype=np.float64)
            return k, (2.0 / np.pi) * ((-1.0) ** (k + 1)) / k
        if self.type == "triangle":
            k = np.arange(1, kmax + 1, 2, dtype=np.float64)
            sign = (-1.0) ** ((k - 1) / 2)
            return k, (8.0 / np.pi ** 2) * sign / (k * k)
        raise ValueError(f"unknown oscillator type {self.type!r}")

    def process_block(self, inputs, frame0, n):
        batch = self.context.batch_size
        if self._start_frame is None:
            return np.zeros((batch, 1, n), dtype=np.float64)
        fs = self.context.sample_rate
        math = self.context.config.math

        freq = self.frequency.values(frame0, n, fs)
        detune = self.detune.values(frame0, n, fs)
        if np.any(detune):
            freq = freq * math.pow(2.0, detune / 1200.0)

        # phase accumulation across the block (vectorized cumulative sum)
        inc = 2.0 * np.pi * freq / fs
        phases = self._phase + np.cumsum(inc) - inc  # phase at start of each frame
        self._phase = (self._phase + float(np.sum(inc))) % (2.0 * np.pi)

        # (harmonics, frames) evaluated in one shot through the math backend
        signal = self._synthesize(math, phases, fs / 2.0, float(freq[0]))

        frames = frame0 + np.arange(n)
        active = frames >= self._start_frame
        if self._stop_frame is not None:
            active &= frames < self._stop_frame
        # oscillator params are graph state shared by every batch row, so the
        # signal is row-uniform: compute it once, hand out a read-only view
        return np.broadcast_to(np.where(active, signal, 0.0), (batch, 1, n))

    def process_buffer(self, inputs, length):
        """Fused path: synthesize the entire buffer in one pass.

        Automation-free params are block-position independent, so one
        128-frame increment template reproduces every quantum block (the
        final, possibly partial block is a prefix of it — cumsum is
        prefix-stable). Per-block phase starts still walk the quantum
        loop's exact update, ``(phase + sum(inc)) % 2pi`` per block, so
        every phase value — and therefore every sin evaluation — is the
        same float the quantum loop produces.
        """
        batch = self.context.batch_size
        if self._start_frame is None:
            return np.zeros((batch, 1, length), dtype=np.float64)
        fs = self.context.sample_rate
        config = self.context.config
        math = config.math
        quantum = RENDER_QUANTUM_FRAMES

        freq = self.frequency.values(0, quantum, fs)
        detune = self.detune.values(0, quantum, fs)
        if np.any(detune):
            freq = freq * math.pow(2.0, detune / 1200.0)
        inc = 2.0 * np.pi * freq / fs
        block_cumsum = np.cumsum(inc)

        nblocks = -(-length // quantum)
        last_n = length - (nblocks - 1) * quantum
        full_sum = float(np.sum(inc))
        starts = np.empty(nblocks, dtype=np.float64)
        phase = self._phase
        for b in range(nblocks):
            starts[b] = phase
            s = full_sum if (b < nblocks - 1 or last_n == quantum) \
                else float(np.sum(inc[:last_n]))
            phase = (phase + s) % (2.0 * np.pi)
        self._phase = phase
        # (start + cumsum) - inc: the quantum loop's exact phase expression,
        # evaluated for all blocks at once and trimmed to the buffer
        phases = ((starts[:, None] + block_cumsum[None, :]) - inc[None, :])
        phases = phases.reshape(-1)[:length]

        if self.type != "custom" and jit.jit_active(config):
            orders, amps = self._harmonics(fs / 2.0, float(freq[0]))
            ulp_scale = 1.0 + getattr(math, "ulp_shift", 0) * _ULP
            signal = jit.synth_harmonics(phases, orders, amps, ulp_scale)
        else:
            # custom waves always take the generic NumPy series (the JIT
            # kernel only synthesizes sine-phase series)
            signal = self._synthesize(math, phases, fs / 2.0, float(freq[0]))

        frames = np.arange(length)
        active = frames >= self._start_frame
        if self._stop_frame is not None:
            active &= frames < self._stop_frame
        return np.broadcast_to(np.where(active, signal, 0.0), (batch, 1, length))
