"""ScriptProcessorNode: the deterministic stand-in for Web Audio's
script-processing path (``createScriptProcessor`` + ``onaudioprocess``).

Real fingerprinting scripts hook a JS callback between two native nodes
and transform (or just read) the samples with JS ``Math`` — which is why
the path is fingerprint-relevant at all: the JS engine's math library
leaks into the rendered buffer. Here the "script" is a vectorized Python
callable ``script(samples, t, math)`` receiving the input block, the
absolute per-frame time axis, and the stack's math backend (the stand-in
for JS ``Math``), returning the processed block.

Determinism contract: the script must be **elementwise in the frame
axis** — output frame ``i`` may depend only on ``samples[..., i]`` and
``t[i]``. That makes the node stateless and blocking-invariant, so the
fused whole-buffer kernel is bit-identical to the 128-frame quantum loop
by construction (the same ufunc evaluations in the same order per
frame), and batch rows never interact. Scripts with cross-frame state
would need a block-granular kernel like the compressor's; none of the
paper's probes do.

``buffer_size`` is validated against the spec's allowed power-of-two
sizes and kept as metadata: because the script is elementwise, the
callback granularity cannot affect the rendered floats, so the engine is
free to apply it per render quantum (or per whole buffer on the fused
path) without emulating the spec's double-buffering latency.
"""
from __future__ import annotations

import numpy as np

from .node import AudioNode, batch_uniform

#: the spec's valid ``bufferSize`` values for createScriptProcessor
VALID_BUFFER_SIZES = (256, 512, 1024, 2048, 4096, 8192, 16384)


class ScriptProcessorNode(AudioNode):
    fusible = True

    def __init__(self, context, buffer_size: int = 256, script=None):
        if buffer_size not in VALID_BUFFER_SIZES:
            raise ValueError(
                f"buffer_size must be one of {VALID_BUFFER_SIZES}, "
                f"got {buffer_size!r}")
        super().__init__(context)
        self.buffer_size = int(buffer_size)
        #: ``script(samples, t, math) -> samples`` — elementwise in the
        #: frame axis (see module docstring); None = pass-through
        self.script = script

    def _apply(self, block: np.ndarray, frame0: int, n: int) -> np.ndarray:
        if self.script is None:
            return block
        fs = self.context.sample_rate
        # absolute frame indices are exact float64 integers, so t is the
        # same float at any blocking of the buffer
        t = (frame0 + np.arange(n, dtype=np.float64)) / fs
        return self.script(block, t, self.context.config.math)

    def process_block(self, inputs, frame0, n):
        return self._apply(inputs[0], frame0, n)

    def process_buffer(self, inputs, length):
        x = inputs[0]
        if batch_uniform(x):
            # row-uniform input stays row-uniform: run the script once,
            # broadcast (bit-identical — rows never interact)
            return np.broadcast_to(self._apply(x[:1], 0, length), x.shape)
        return self._apply(x, 0, length)
