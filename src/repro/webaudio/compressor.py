"""DynamicsCompressorNode: spec-style soft-knee curve with attack/release
envelope smoothing — fully vectorized per 128-frame block.

The envelope follower is the classic one-pole recursion
``y[n] = a*y[n-1] + (1-a)*x[n]``. Per block we pick attack vs release from
the block peak (one scalar comparison per *block*, never per sample) and
evaluate the recursion in closed form:

    y[n] = a^(n+1) * y0 + (1-a) * a^n * cumsum(x[k] / a^k)

which is exact, branch-free and pure NumPy. The coefficients derived from
the spec's attack/release times satisfy a >= 0.99 at audio sample rates, so
``a^-127`` stays ~e and the scaled cumulative sum is numerically safe.

All transcendental steps (exp for the coefficients, log10 for dB
conversion, pow for the makeup gain) run through the platform stack's math
backend — this node is the main nonlinearity that amplifies ulp-level
library differences into distinct fingerprints (cf. SNIPPETS.md #1).
"""
from __future__ import annotations

import numpy as np

from .node import AudioNode, mix_to_channels

_DB_FLOOR = 1e-12  # linear floor before dB conversion


class DynamicsCompressorNode(AudioNode):
    def __init__(self, context):
        super().__init__(context)
        p = context.config.compressor
        self.threshold = p.threshold_db
        self.knee = p.knee_db
        self.ratio = p.ratio
        self.attack = p.attack_s
        self.release = p.release_s
        self._makeup_exponent = p.makeup_exponent
        #: per-row envelope state — every batch row compresses independently
        self._envelope = np.zeros(context.batch_size, dtype=np.float64)
        self.reduction = 0.0  # dB, most recent block (informational, like the spec attr)

        math = context.config.math
        fs = context.sample_rate
        # one-pole coefficients; clamped so the closed-form scan stays stable
        self._attack_coef = float(np.clip(math.exp(np.array(-1.0 / (fs * max(self.attack, 1e-4)))), 0.9, 0.999999))
        self._release_coef = float(np.clip(math.exp(np.array(-1.0 / (fs * max(self.release, 1e-3)))), 0.9, 0.999999))
        # makeup gain: (1 / gain-at-0dBFS) ** exponent, as in the spec
        zero_gain_db = self._curve_db(np.array([0.0]), math)[0]
        lin = math.pow(10.0, np.array(zero_gain_db / 20.0))
        self._makeup = float(math.pow(1.0 / np.maximum(lin, _DB_FLOOR), np.array(self._makeup_exponent)))

    # -- static compression curve (dB in -> dB out), vectorized -------------
    def _curve_db(self, x_db: np.ndarray, math) -> np.ndarray:
        t, k, r = self.threshold, self.knee, self.ratio
        lo = t - k / 2.0
        hi = t + k / 2.0
        # below knee: identity; in knee: quadratic interpolation; above: ratio
        knee_term = x_db - lo
        in_knee = x_db + ((1.0 / r - 1.0) * knee_term * knee_term) / (2.0 * max(k, 1e-9))
        above = t + (x_db - t) / r
        return np.where(x_db < lo, x_db, np.where(x_db > hi, above, in_knee))

    @staticmethod
    def _one_pole_scan(x: np.ndarray, a: np.ndarray, y0: np.ndarray) -> np.ndarray:
        """Closed-form y[n] = a*y[n-1] + (1-a)*x[n], whole block at once.

        ``x`` is (B, n); ``a`` and ``y0`` are (B, 1) per-row coefficients and
        initial states. Every step is an elementwise ufunc or a last-axis
        cumsum, so each row equals the scalar-coefficient scan of that row.
        """
        n = x.shape[-1]
        k = np.arange(n, dtype=np.float64)
        apow = a ** k
        s = np.cumsum(x / apow, axis=-1)
        return (a * apow) * y0 + (1.0 - a) * apow * s

    def process_block(self, inputs, frame0, n):
        x = inputs[0]
        math = self.context.config.math

        level = np.abs(mix_to_channels(x, 1)[:, 0, :])       # (B, n)
        peak = level.max(axis=-1)                            # (B,)
        # attack vs release from the block peak: one comparison per row per
        # *block*, never per sample — exactly the scalar path, vectorized
        coef = np.where(peak > self._envelope,
                        self._attack_coef, self._release_coef)[:, None]
        env = self._one_pole_scan(level, coef, self._envelope[:, None])
        self._envelope = env[:, -1].copy()

        env_db = 20.0 * math.log10(np.maximum(env, _DB_FLOOR))
        gain_db = self._curve_db(env_db, math) - env_db
        reduction = gain_db.min(axis=-1)
        self.reduction = float(reduction[0]) if reduction.shape[0] == 1 else reduction
        gain_lin = math.pow(10.0, gain_db / 20.0) * self._makeup
        return x * gain_lin[:, None, :]
