"""DynamicsCompressorNode: spec-style soft-knee curve with attack/release
envelope smoothing — fully vectorized per 128-frame block.

The envelope follower is the classic one-pole recursion
``y[n] = a*y[n-1] + (1-a)*x[n]``. Per block we pick attack vs release from
the block peak (one scalar comparison per *block*, never per sample) and
evaluate the recursion in closed form:

    y[n] = a^(n+1) * y0 + (1-a) * a^n * cumsum(x[k] / a^k)

which is exact, branch-free and pure NumPy. The coefficients derived from
the spec's attack/release times satisfy a >= 0.99 at audio sample rates, so
``a^-127`` stays ~e and the scaled cumulative sum is numerically safe.

All transcendental steps (exp for the coefficients, log10 for dB
conversion, pow for the makeup gain) run through the platform stack's math
backend — this node is the main nonlinearity that amplifies ulp-level
library differences into distinct fingerprints (cf. SNIPPETS.md #1).
"""
from __future__ import annotations

import numpy as np

from . import RENDER_QUANTUM_FRAMES, jit
from .node import AudioNode, batch_uniform, mix_to_channels

_DB_FLOOR = 1e-12  # linear floor before dB conversion


class DynamicsCompressorNode(AudioNode):
    fusible = True

    def __init__(self, context):
        super().__init__(context)
        p = context.config.compressor
        self.threshold = p.threshold_db
        self.knee = p.knee_db
        self.ratio = p.ratio
        self.attack = p.attack_s
        self.release = p.release_s
        self._makeup_exponent = p.makeup_exponent
        #: per-row envelope state — every batch row compresses independently
        self._envelope = np.zeros(context.batch_size, dtype=np.float64)
        self.reduction = 0.0  # dB, most recent block (informational, like the spec attr)
        #: cached ``coef ** arange(n)`` tables, keyed (coef, n) — the scan
        #: rebuilds nothing per block (exact same floats, see _pow_table)
        self._pow_cache: dict[tuple[float, int], np.ndarray] = {}

        math = context.config.math
        fs = context.sample_rate
        # one-pole coefficients; clamped so the closed-form scan stays stable
        self._attack_coef = float(np.clip(math.exp(np.array(-1.0 / (fs * max(self.attack, 1e-4)))), 0.9, 0.999999))
        self._release_coef = float(np.clip(math.exp(np.array(-1.0 / (fs * max(self.release, 1e-3)))), 0.9, 0.999999))
        # makeup gain: (1 / gain-at-0dBFS) ** exponent, as in the spec
        zero_gain_db = self._curve_db(np.array([0.0]), math)[0]
        lin = math.pow(10.0, np.array(zero_gain_db / 20.0))
        self._makeup = float(math.pow(1.0 / np.maximum(lin, _DB_FLOOR), np.array(self._makeup_exponent)))

    # -- static compression curve (dB in -> dB out), vectorized -------------
    def _curve_db(self, x_db: np.ndarray, math) -> np.ndarray:
        t, k, r = self.threshold, self.knee, self.ratio
        lo = t - k / 2.0
        hi = t + k / 2.0
        # below knee: identity; in knee: quadratic interpolation; above: ratio
        knee_term = x_db - lo
        in_knee = x_db + ((1.0 / r - 1.0) * knee_term * knee_term) / (2.0 * max(k, 1e-9))
        above = t + (x_db - t) / r
        return np.where(x_db < lo, x_db, np.where(x_db > hi, above, in_knee))

    def _pow_table(self, coef: float, n: int) -> np.ndarray:
        """``coef ** arange(n)``, cached per (coef, n).

        ``np.power`` with a scalar base produces the exact same floats as
        the broadcast ``a ** k`` it replaces, so caching holds bit-identity
        while dropping the per-block arange + pow rebuild.
        """
        key = (coef, n)
        tab = self._pow_cache.get(key)
        if tab is None:
            tab = coef ** np.arange(n, dtype=np.float64)
            self._pow_cache[key] = tab
        return tab

    def _one_pole_scan(self, x: np.ndarray, a: np.ndarray, y0: np.ndarray) -> np.ndarray:
        """Closed-form y[n] = a*y[n-1] + (1-a)*x[n], whole block at once.

        ``x`` is (B, n); ``a`` and ``y0`` are (B, 1) per-row coefficients and
        initial states. ``a``'s entries are this node's attack/release
        coefficients (that is all ``process_block`` ever passes), so the
        power tables come from the per-coefficient cache. Every step is an
        elementwise ufunc or a last-axis cumsum, so each row equals the
        scalar-coefficient scan of that row.
        """
        n = x.shape[-1]
        apow = np.where(a == self._attack_coef,
                        self._pow_table(self._attack_coef, n),
                        self._pow_table(self._release_coef, n))
        s = np.cumsum(x / apow, axis=-1)
        return (a * apow) * y0 + (1.0 - a) * apow * s

    def _scan_block(self, level: np.ndarray, env: np.ndarray) -> np.ndarray:
        """One quantum envelope step: pick attack vs release from the block
        peak (one comparison per row per *block*, never per sample), then
        the closed-form scan. ``level`` is (B, n), ``env`` is (B,)."""
        peak = level.max(axis=-1)                            # (B,)
        coef = np.where(peak > env,
                        self._attack_coef, self._release_coef)[:, None]
        return self._one_pole_scan(level, coef, env[:, None])

    def _gain_pipeline(self, env: np.ndarray, math) -> tuple[np.ndarray, np.ndarray]:
        """level -> dB -> curve -> linear gain, all elementwise — identical
        whether fed one 128-frame block or the whole buffer."""
        env_db = 20.0 * math.log10(np.maximum(env, _DB_FLOOR))
        gain_db = self._curve_db(env_db, math) - env_db
        gain_lin = math.pow(10.0, gain_db / 20.0) * self._makeup
        return gain_db, gain_lin

    def _set_reduction(self, gain_db: np.ndarray) -> None:
        reduction = gain_db.min(axis=-1)
        self.reduction = float(reduction[0]) if reduction.shape[0] == 1 else reduction

    def process_block(self, inputs, frame0, n):
        x = inputs[0]
        math = self.context.config.math

        level = np.abs(mix_to_channels(x, 1)[:, 0, :])       # (B, n)
        env = self._scan_block(level, self._envelope)
        self._envelope = env[:, -1].copy()

        gain_db, gain_lin = self._gain_pipeline(env, math)
        self._set_reduction(gain_db)
        return x * gain_lin[:, None, :]

    def process_buffer(self, inputs, length):
        """Fused path: block-sequential envelope scan (the only genuinely
        sequential state), then ONE whole-buffer dB/curve/gain pipeline.

        The per-block scan consumes views of the whole-buffer level array
        and the cached power tables, so every envelope float equals the
        quantum loop's; the transcendental pipeline after it is elementwise
        and therefore blocking-invariant. On the JIT tier the envelope runs
        as a numba per-sample recurrence instead — deliberately different
        rounding, keyed as its own stack identity.

        When the input is row-uniform (a batch broadcast — jitter only
        bites at the analyser readout, so inside a render it always is)
        and the envelope state is too, the whole pipeline runs on the one
        distinct row and broadcasts: per-row arithmetic never mixes rows,
        so row 0's floats ARE every row's floats.
        """
        x = inputs[0]
        config = self.context.config
        math = config.math
        quantum = RENDER_QUANTUM_FRAMES
        batch = x.shape[0]
        uniform = (batch_uniform(x)
                   and bool(np.all(self._envelope == self._envelope[0])))
        work = x[:1] if uniform else x
        env0 = self._envelope[:1] if uniform else self._envelope

        level = np.abs(mix_to_channels(work, 1)[:, 0, :])    # (rows, length)
        if jit.jit_active(config):
            env = jit.envelope_scan(level, self._attack_coef,
                                    self._release_coef, env0)
            state = env[:, -1].copy()
        else:
            env = np.empty_like(level)
            state = env0
            for frame0 in range(0, length, quantum):
                n = min(quantum, length - frame0)
                block = self._scan_block(level[:, frame0:frame0 + n], state)
                state = block[:, -1].copy()
                env[:, frame0:frame0 + n] = block
        self._envelope = np.broadcast_to(state, (batch,)).copy() if uniform else state

        gain_db, gain_lin = self._gain_pipeline(env, math)
        # the spec-style reduction attr reflects the most recent block
        last_n = length - (length - 1) // quantum * quantum
        tail = gain_db[:, length - last_n:]
        if uniform:
            tail = np.broadcast_to(tail, (batch, last_n))
        self._set_reduction(tail)
        y = work * gain_lin[:, None, :]
        return np.broadcast_to(y, x.shape) if uniform else y
