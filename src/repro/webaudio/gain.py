"""GainNode: block multiply by an a-rate gain curve."""
from __future__ import annotations

import numpy as np

from .node import AudioNode, batch_uniform
from .param import AudioParam


class GainNode(AudioNode):
    fusible = True

    def __init__(self, context):
        super().__init__(context)
        self.gain = AudioParam(1.0)

    def process_block(self, inputs, frame0, n):
        g = self.gain.values(frame0, n, self.context.sample_rate)
        return inputs[0] * g  # (n,) broadcasts over (B, channels, n)

    def process_buffer(self, inputs, length):
        # automation-free, so the gain curve is the same constant array the
        # quantum loop sees per block — one whole-buffer multiply; a
        # row-uniform input stays row-uniform (multiply one row, broadcast)
        g = self.gain.values(0, length, self.context.sample_rate)
        x = inputs[0]
        if batch_uniform(x):
            return np.broadcast_to(x[:1] * g, x.shape)
        return x * g
