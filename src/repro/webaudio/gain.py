"""GainNode: block multiply by an a-rate gain curve."""
from __future__ import annotations

from .node import AudioNode
from .param import AudioParam


class GainNode(AudioNode):
    def __init__(self, context):
        super().__init__(context)
        self.gain = AudioParam(1.0)

    def process_block(self, inputs, frame0, n):
        g = self.gain.values(frame0, n, self.context.sample_rate)
        return inputs[0] * g  # (n,) broadcasts over (B, channels, n)
