"""AudioParam with a vectorized automation timeline.

Supported events: setValueAtTime, linearRampToValueAtTime,
exponentialRampToValueAtTime, setTargetAtTime. Evaluation returns a whole
block of values at once (a-rate); there is no per-sample Python loop —
the only Python iteration is over the (few) events intersecting a block.
"""
from __future__ import annotations

import numpy as np

_SET, _LINEAR, _EXPONENTIAL, _TARGET = "set", "linear", "exponential", "target"


class AudioParam:
    def __init__(self, default_value: float, min_value: float = -np.inf,
                 max_value: float = np.inf):
        self.default_value = float(default_value)
        self.value = float(default_value)
        self.min_value = min_value
        self.max_value = max_value
        self._events: list[tuple[float, str, float, float]] = []  # (time, kind, value, extra)

    # -- timeline API -------------------------------------------------------
    def set_value_at_time(self, value: float, time: float) -> "AudioParam":
        self._insert(time, _SET, value, 0.0)
        return self

    def linear_ramp_to_value_at_time(self, value: float, time: float) -> "AudioParam":
        self._insert(time, _LINEAR, value, 0.0)
        return self

    def exponential_ramp_to_value_at_time(self, value: float, time: float) -> "AudioParam":
        if value == 0.0:
            raise ValueError("exponential ramp target must be non-zero")
        self._insert(time, _EXPONENTIAL, value, 0.0)
        return self

    def set_target_at_time(self, target: float, time: float, time_constant: float) -> "AudioParam":
        self._insert(time, _TARGET, target, time_constant)
        return self

    def _insert(self, time: float, kind: str, value: float, extra: float) -> None:
        self._events.append((float(time), kind, float(value), float(extra)))
        self._events.sort(key=lambda e: e[0])

    # -- evaluation ---------------------------------------------------------
    def values(self, frame0: int, n: int, sample_rate: float) -> np.ndarray:
        """Vectorized values for frames [frame0, frame0+n)."""
        if not self._events:
            return np.full(n, self.value, dtype=np.float64)

        t = (frame0 + np.arange(n, dtype=np.float64)) / sample_rate
        out = np.full(n, self.value, dtype=np.float64)

        # Anchor value/time before each event, in timeline order.
        anchor_v, anchor_t = self.value, 0.0
        events = self._events
        for i, (et, kind, ev, extra) in enumerate(events):
            next_t = events[i + 1][0] if i + 1 < len(events) else np.inf
            if kind == _SET:
                mask = (t >= et) & (t < next_t)
                out[mask] = ev
                anchor_v, anchor_t = ev, et
            elif kind in (_LINEAR, _EXPONENTIAL):
                # ramp from anchor to (ev, et), hold after until next event
                span = max(et - anchor_t, 1e-12)
                mask = (t >= anchor_t) & (t < et)
                if mask.any():
                    frac = (t[mask] - anchor_t) / span
                    if kind == _LINEAR:
                        out[mask] = anchor_v + (ev - anchor_v) * frac
                    else:
                        base = ev / anchor_v if anchor_v != 0.0 else 1.0
                        out[mask] = anchor_v * np.power(base, frac)
                hold = (t >= et) & (t < next_t)
                out[hold] = ev
                anchor_v, anchor_t = ev, et
            elif kind == _TARGET:
                mask = (t >= et) & (t < next_t)
                if mask.any():
                    out[mask] = ev + (anchor_v - ev) * np.exp(-(t[mask] - et) / max(extra, 1e-12))
                # anchor for the next event: evaluated at next_t (if finite)
                if np.isfinite(next_t):
                    anchor_v = ev + (anchor_v - ev) * np.exp(-(next_t - et) / max(extra, 1e-12))
                    anchor_t = next_t
        return np.clip(out, self.min_value, self.max_value)
