"""AudioNode base class: connections and channel mixing.

All rendering is batched: blocks are ``(B, channels, frames)`` arrays,
where the batch axis carries independent renders of the *same* graph
(one row per equivalence class differing only in jitter path). Every
mixing helper operates on the trailing two axes, so per-row results are
bit-identical to a ``B == 1`` render of that row alone — elementwise
ufuncs and fixed-length reductions do not change their evaluation order
when a leading axis is added.
"""
from __future__ import annotations

import numpy as np


class AudioNode:
    number_of_inputs = 1
    number_of_outputs = 1
    #: nodes the fused whole-buffer path knows how to render; a node type
    #: without a ``process_buffer`` kernel forces the quantum-loop fallback
    fusible = False

    def __init__(self, context):
        self.context = context
        # _inputs[port] = list of source nodes feeding that input port
        self._inputs: list[list[AudioNode]] = [[] for _ in range(self.number_of_inputs)]
        context._register(self)

    def connect(self, destination: "AudioNode", output: int = 0, input: int = 0) -> "AudioNode":
        if destination.context is not self.context:
            raise ValueError("cannot connect nodes from different contexts")
        if not 0 <= input < destination.number_of_inputs:
            raise IndexError(f"input index {input} out of range for {type(destination).__name__}")
        destination._inputs[input].append(self)
        return destination

    def disconnect(self, destination: "AudioNode" | None = None) -> None:
        for node in self.context._nodes:
            for port in node._inputs:
                if destination is None or node is destination:
                    while self in port:
                        port.remove(self)

    def sources(self) -> list["AudioNode"]:
        return [s for port in self._inputs for s in port]

    # -- rendering ----------------------------------------------------------
    def process_block(self, inputs: list[np.ndarray], frame0: int, n: int) -> np.ndarray:
        """Produce this node's output for frames [frame0, frame0+n).

        ``inputs[port]`` is the already-mixed (B, channels, n) array for
        that input port. Must return a (B, channels, n) array and operate
        on whole blocks (no per-sample loops).
        """
        raise NotImplementedError

    def process_buffer(self, inputs: list[np.ndarray], length: int) -> np.ndarray:
        """Fused path: produce this node's output for the *entire* buffer.

        Same contract as ``process_block`` with ``frame0 == 0`` and
        ``n == length``, but implementations must reproduce the quantum
        loop's floating-point results bit for bit — nodes with
        block-granular state (oscillator phase wrap, compressor envelope)
        keep that state's block structure internally while hoisting every
        elementwise stage to one whole-buffer pass. Only defined for
        ``fusible`` node types on automation-free graphs (the
        segmentation pass checks both before dispatching here).
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no whole-buffer kernel")


def batch_uniform(block: np.ndarray) -> bool:
    """True when every batch row of a (B, c, n) block is the same memory
    (a zero-stride broadcast view). Inside a render the batch rows only
    diverge at the analyser *readout*, so fused kernels use this to
    compute one row and broadcast — bit-identical to the full batch
    because no render op ever mixes rows (elementwise / last-axis only,
    the invariant the batched engine is built on)."""
    return block.ndim == 3 and block.shape[0] > 1 and block.strides[0] == 0


def mix_sources_uniform(blocks: list[np.ndarray], batch: int, n: int) -> np.ndarray:
    """``mix_sources`` that keeps row-uniform inputs row-uniform: when every
    source block is a batch broadcast, mix the single distinct row and
    broadcast the sum instead of materializing (B, c, n)."""
    if blocks and all(batch_uniform(b) for b in blocks):
        first = mix_sources([b[:1] for b in blocks], 1, n)
        return np.broadcast_to(first, (batch,) + first.shape[1:])
    if not blocks:
        return np.broadcast_to(np.zeros((1, 1, n), dtype=np.float64),
                               (batch, 1, n))
    return mix_sources(blocks, batch, n)


def mix_sources(blocks: list[np.ndarray], batch: int, n: int) -> np.ndarray:
    """Sum source outputs with mono up-mix, vectorized over the batch."""
    if not blocks:
        return np.zeros((batch, 1, n), dtype=np.float64)
    channels = max(b.shape[-2] for b in blocks)
    out = np.zeros((batch, channels, n), dtype=np.float64)
    for b in blocks:
        if b.shape[-2] == channels:
            out += b
        elif b.shape[-2] == 1:
            out += b  # broadcast mono across all channels
        else:
            out[:, : b.shape[-2]] += b
    return out


def mix_to_channels(block: np.ndarray, channels: int) -> np.ndarray:
    """Up/down-mix a (B, c, n) block to exactly ``channels`` channels."""
    c = block.shape[-2]
    if c == channels:
        return block
    if c == 1:
        return np.repeat(block, channels, axis=-2)
    if channels == 1:
        return block.mean(axis=-2, keepdims=True)
    out = np.zeros((block.shape[0], channels, block.shape[-1]), dtype=np.float64)
    out[:, : min(c, channels)] = block[:, : min(c, channels)]
    return out
