"""ChannelMergerNode: each input port becomes one output channel."""
from __future__ import annotations

import numpy as np

from .node import AudioNode
from .node import mix_to_channels


class ChannelMergerNode(AudioNode):
    fusible = True

    def __init__(self, context, number_of_inputs: int = 6):
        if not 1 <= number_of_inputs <= 32:
            raise ValueError("number_of_inputs must be in [1, 32]")
        self.number_of_inputs = int(number_of_inputs)
        super().__init__(context)

    def process_block(self, inputs, frame0, n):
        out = np.zeros((self.context.batch_size, self.number_of_inputs, n),
                       dtype=np.float64)
        for port, block in enumerate(inputs):
            out[:, port] = mix_to_channels(block, 1)[:, 0]
        return out

    def process_buffer(self, inputs, length):
        # channel routing is stateless and elementwise in the frame axis:
        # the whole-buffer pass is the block pass with n == length
        return self.process_block(inputs, 0, length)
