"""OfflineAudioContext: render-path dispatch over two engines.

The renderer carries a batch axis end to end: every node produces
``(batch_size, channels, frames)`` blocks, so one graph build and one
render pass render ``batch_size`` independent equivalence classes at
once. All per-render interpreter overhead (the Python loop, the
topological dispatch, the mixing calls) is paid once per *batch* instead
of once per render — the NumPy kernels below it are elementwise or
fixed-axis reductions, so each batch row is bit-identical to rendering
that row alone with ``batch_size == 1`` (pinned by tests).

Two execution strategies produce that buffer (``config.render_path``):

- **fused** — the default for fusible graphs: ``plan_segments`` checks
  the graph is an automation-free linear chain of known nodes, then each
  node renders the *entire* buffer in one ``process_buffer`` call. The
  fused NumPy tier is bit-identical to the quantum loop by construction
  (elementwise stages are blocking-invariant; block-granular state keeps
  its block structure inside the kernels) and by test, so no
  ``ENGINE_VERSION`` bump and no cache invalidation.
- **quantum** — the 128-frame block loop, kept verbatim as the reference
  semantics and the fallback for graphs the fused path declines
  (automation, fan-in/fan-out, unknown node types).

``render_path_used`` records which strategy actually ran.
"""
from __future__ import annotations

import time

import numpy as np

from . import RENDER_QUANTUM_FRAMES
from ..obs.profiler import current_node_profiler
from .buffer import AudioBuffer
from .config import EngineConfig
from .graph import node_label, topological_order
from .node import AudioNode, mix_sources, mix_sources_uniform, mix_to_channels
from .segments import plan_segments


class DestinationNode(AudioNode):
    fusible = True

    def __init__(self, context, number_of_channels: int):
        self.channel_count = number_of_channels
        super().__init__(context)

    def process_block(self, inputs, frame0, n):
        return mix_to_channels(inputs[0], self.channel_count)

    def process_buffer(self, inputs, length):
        return mix_to_channels(inputs[0], self.channel_count)


class OfflineAudioContext:
    def __init__(self, number_of_channels: int, length: int, sample_rate: float,
                 config: EngineConfig | None = None, batch_size: int = 1):
        if length <= 0:
            raise ValueError("length must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.length = int(length)
        self.sample_rate = float(sample_rate)
        self.batch_size = int(batch_size)
        self.config = config if config is not None else EngineConfig.default()
        self._nodes: list[AudioNode] = []
        self._rendered: AudioBuffer | None = None
        self._rendered_batch: np.ndarray | None = None
        #: which strategy rendered this context: "fused" | "quantum" | None
        self.render_path_used: str | None = None
        self.destination = DestinationNode(self, int(number_of_channels))

    # -- node registry ------------------------------------------------------
    def _register(self, node: AudioNode) -> None:
        self._nodes.append(node)

    def create_oscillator(self):
        from .oscillator import OscillatorNode
        return OscillatorNode(self)

    def create_gain(self):
        from .gain import GainNode
        return GainNode(self)

    def create_channel_merger(self, number_of_inputs: int = 6):
        from .merger import ChannelMergerNode
        return ChannelMergerNode(self, number_of_inputs)

    def create_dynamics_compressor(self):
        from .compressor import DynamicsCompressorNode
        return DynamicsCompressorNode(self)

    def create_analyser(self):
        from .analyser import AnalyserNode
        return AnalyserNode(self)

    def create_script_processor(self, buffer_size: int = 256, script=None):
        from .script_processor import ScriptProcessorNode
        return ScriptProcessorNode(self, buffer_size, script)

    @staticmethod
    def create_periodic_wave(real, imag):
        from .oscillator import PeriodicWave
        return PeriodicWave(real, imag)

    @property
    def current_time(self) -> float:
        return self.length / self.sample_rate if self._rendered_batch is not None else 0.0

    # -- rendering ----------------------------------------------------------
    def start_rendering(self) -> AudioBuffer:
        """Render and return the (channels, length) buffer; batch size 1 only."""
        if self.batch_size != 1:
            raise ValueError(
                "start_rendering() requires batch_size == 1; "
                "use start_rendering_batch() for batched contexts")
        if self._rendered is None:
            self._rendered = AudioBuffer(self.start_rendering_batch()[0],
                                         self.sample_rate)
        return self._rendered

    def start_rendering_batch(self) -> np.ndarray:
        """Render all batch rows at once; returns (B, channels, length)."""
        if self._rendered_batch is not None:
            return self._rendered_batch
        plan = None
        if self.config.render_path in ("auto", "fused"):
            plan = plan_segments(self._nodes, self.destination)
        if plan is not None:
            self.render_path_used = "fused"
            self._rendered_batch = self._render_fused(plan)
        else:
            self.render_path_used = "quantum"
            self._rendered_batch = self._render_quantum()
        return self._rendered_batch

    def _render_fused(self, plan) -> np.ndarray:
        """One whole-buffer pass per node, in segment order.

        The per-block interpreter loop disappears entirely: the graph is
        walked once, each kernel sees the full (B, channels, length)
        signal, and the profiled variant attributes time per node (same
        labels as the quantum loop) plus per segment (``segment:`` labels).
        """
        batch = self.batch_size
        length = self.length
        buffer_out: dict[AudioNode, np.ndarray] = {}
        profiler = current_node_profiler()
        if profiler is None:
            for segment in plan.segments:
                for node in segment.nodes:
                    ins = [
                        mix_sources_uniform([buffer_out[s] for s in port],
                                            batch, length)
                        for port in node._inputs
                    ]
                    buffer_out[node] = node.process_buffer(ins, length)
        else:
            labels = {node: node_label(node) for node in plan.order}
            for segment in plan.segments:
                segment_start = time.perf_counter()
                for node in segment.nodes:
                    start = time.perf_counter()
                    ins = [
                        mix_sources_uniform([buffer_out[s] for s in port],
                                            batch, length)
                        for port in node._inputs
                    ]
                    buffer_out[node] = node.process_buffer(ins, length)
                    profiler.add(labels[node], time.perf_counter() - start)
                profiler.add(f"segment:{segment.label}",
                             time.perf_counter() - segment_start)
        # materialize (broadcast views stay read-only otherwise); values are
        # the exact floats the quantum loop writes into its output array
        return np.ascontiguousarray(buffer_out[self.destination],
                                    dtype=np.float64)

    def _render_quantum(self) -> np.ndarray:
        """The 128-frame-quantum block loop — the reference semantics."""
        order = topological_order(self._nodes)
        batch = self.batch_size
        channels = self.destination.channel_count
        out = np.zeros((batch, channels, self.length), dtype=np.float64)
        quantum = RENDER_QUANTUM_FRAMES
        block_out: dict[AudioNode, np.ndarray] = {}
        # Profiling duplicates the quantum loop rather than branching inside
        # it: the unprofiled path (the default) must stay exactly the hot
        # loop, and the numeric operations are identical either way.
        profiler = current_node_profiler()
        if profiler is None:
            for frame0 in range(0, self.length, quantum):
                n = min(quantum, self.length - frame0)
                block_out.clear()
                for node in order:
                    ins = [
                        mix_sources([block_out[s] for s in port], batch, n)
                        for port in node._inputs
                    ]
                    block_out[node] = node.process_block(ins, frame0, n)
                out[:, :, frame0:frame0 + n] = block_out[self.destination][..., :n]
        else:
            labels = {node: node_label(node) for node in order}
            for frame0 in range(0, self.length, quantum):
                n = min(quantum, self.length - frame0)
                block_out.clear()
                for node in order:
                    start = time.perf_counter()
                    ins = [
                        mix_sources([block_out[s] for s in port], batch, n)
                        for port in node._inputs
                    ]
                    block_out[node] = node.process_block(ins, frame0, n)
                    profiler.add(labels[node], time.perf_counter() - start)
                out[:, :, frame0:frame0 + n] = block_out[self.destination][..., :n]
        return out
