"""OfflineAudioContext: the 128-frame-quantum block renderer."""
from __future__ import annotations

import time

import numpy as np

from . import RENDER_QUANTUM_FRAMES
from ..obs.profiler import current_node_profiler
from .buffer import AudioBuffer
from .config import EngineConfig
from .graph import node_label, topological_order
from .node import AudioNode, mix_sources, mix_to_channels


class DestinationNode(AudioNode):
    def __init__(self, context, number_of_channels: int):
        self.channel_count = number_of_channels
        super().__init__(context)

    def process_block(self, inputs, frame0, n):
        return mix_to_channels(inputs[0], self.channel_count)


class OfflineAudioContext:
    def __init__(self, number_of_channels: int, length: int, sample_rate: float,
                 config: EngineConfig | None = None):
        if length <= 0:
            raise ValueError("length must be positive")
        self.length = int(length)
        self.sample_rate = float(sample_rate)
        self.config = config if config is not None else EngineConfig.default()
        self._nodes: list[AudioNode] = []
        self._rendered: AudioBuffer | None = None
        self.destination = DestinationNode(self, int(number_of_channels))

    # -- node registry ------------------------------------------------------
    def _register(self, node: AudioNode) -> None:
        self._nodes.append(node)

    def create_oscillator(self):
        from .oscillator import OscillatorNode
        return OscillatorNode(self)

    def create_gain(self):
        from .gain import GainNode
        return GainNode(self)

    def create_channel_merger(self, number_of_inputs: int = 6):
        from .merger import ChannelMergerNode
        return ChannelMergerNode(self, number_of_inputs)

    def create_dynamics_compressor(self):
        from .compressor import DynamicsCompressorNode
        return DynamicsCompressorNode(self)

    def create_analyser(self):
        from .analyser import AnalyserNode
        return AnalyserNode(self)

    @property
    def current_time(self) -> float:
        return self.length / self.sample_rate if self._rendered else 0.0

    # -- rendering ----------------------------------------------------------
    def start_rendering(self) -> AudioBuffer:
        if self._rendered is not None:
            return self._rendered
        order = topological_order(self._nodes)
        channels = self.destination.channel_count
        out = np.zeros((channels, self.length), dtype=np.float64)
        quantum = RENDER_QUANTUM_FRAMES
        block_out: dict[AudioNode, np.ndarray] = {}
        # Profiling duplicates the quantum loop rather than branching inside
        # it: the unprofiled path (the default) must stay exactly the seed's
        # hot loop, and the numeric operations are identical either way.
        profiler = current_node_profiler()
        if profiler is None:
            for frame0 in range(0, self.length, quantum):
                n = min(quantum, self.length - frame0)
                block_out.clear()
                for node in order:
                    ins = [
                        mix_sources([block_out[s] for s in port], n)
                        for port in node._inputs
                    ]
                    block_out[node] = node.process_block(ins, frame0, n)
                out[:, frame0:frame0 + n] = block_out[self.destination][:, :n]
        else:
            labels = {node: node_label(node) for node in order}
            for frame0 in range(0, self.length, quantum):
                n = min(quantum, self.length - frame0)
                block_out.clear()
                for node in order:
                    start = time.perf_counter()
                    ins = [
                        mix_sources([block_out[s] for s in port], n)
                        for port in node._inputs
                    ]
                    block_out[node] = node.process_block(ins, frame0, n)
                    profiler.add(labels[node], time.perf_counter() - start)
                out[:, frame0:frame0 + n] = block_out[self.destination][:, :n]
        self._rendered = AudioBuffer(out, self.sample_rate)
        return self._rendered
