"""OfflineAudioContext: the 128-frame-quantum block renderer.

The renderer carries a batch axis end to end: every node produces
``(batch_size, channels, frames)`` blocks, so one graph build and one
quantum-loop pass render ``batch_size`` independent equivalence classes
at once. All per-quantum interpreter overhead (the Python loop, the
topological dispatch, the mixing calls) is paid once per *batch* instead
of once per render — the NumPy kernels below it are elementwise or
fixed-axis reductions, so each batch row is bit-identical to rendering
that row alone with ``batch_size == 1`` (pinned by tests).
"""
from __future__ import annotations

import time

import numpy as np

from . import RENDER_QUANTUM_FRAMES
from ..obs.profiler import current_node_profiler
from .buffer import AudioBuffer
from .config import EngineConfig
from .graph import node_label, topological_order
from .node import AudioNode, mix_sources, mix_to_channels


class DestinationNode(AudioNode):
    def __init__(self, context, number_of_channels: int):
        self.channel_count = number_of_channels
        super().__init__(context)

    def process_block(self, inputs, frame0, n):
        return mix_to_channels(inputs[0], self.channel_count)


class OfflineAudioContext:
    def __init__(self, number_of_channels: int, length: int, sample_rate: float,
                 config: EngineConfig | None = None, batch_size: int = 1):
        if length <= 0:
            raise ValueError("length must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.length = int(length)
        self.sample_rate = float(sample_rate)
        self.batch_size = int(batch_size)
        self.config = config if config is not None else EngineConfig.default()
        self._nodes: list[AudioNode] = []
        self._rendered: AudioBuffer | None = None
        self._rendered_batch: np.ndarray | None = None
        self.destination = DestinationNode(self, int(number_of_channels))

    # -- node registry ------------------------------------------------------
    def _register(self, node: AudioNode) -> None:
        self._nodes.append(node)

    def create_oscillator(self):
        from .oscillator import OscillatorNode
        return OscillatorNode(self)

    def create_gain(self):
        from .gain import GainNode
        return GainNode(self)

    def create_channel_merger(self, number_of_inputs: int = 6):
        from .merger import ChannelMergerNode
        return ChannelMergerNode(self, number_of_inputs)

    def create_dynamics_compressor(self):
        from .compressor import DynamicsCompressorNode
        return DynamicsCompressorNode(self)

    def create_analyser(self):
        from .analyser import AnalyserNode
        return AnalyserNode(self)

    @property
    def current_time(self) -> float:
        return self.length / self.sample_rate if self._rendered_batch is not None else 0.0

    # -- rendering ----------------------------------------------------------
    def start_rendering(self) -> AudioBuffer:
        """Render and return the (channels, length) buffer; batch size 1 only."""
        if self.batch_size != 1:
            raise ValueError(
                "start_rendering() requires batch_size == 1; "
                "use start_rendering_batch() for batched contexts")
        if self._rendered is None:
            self._rendered = AudioBuffer(self.start_rendering_batch()[0],
                                         self.sample_rate)
        return self._rendered

    def start_rendering_batch(self) -> np.ndarray:
        """Render all batch rows at once; returns (B, channels, length)."""
        if self._rendered_batch is not None:
            return self._rendered_batch
        order = topological_order(self._nodes)
        batch = self.batch_size
        channels = self.destination.channel_count
        out = np.zeros((batch, channels, self.length), dtype=np.float64)
        quantum = RENDER_QUANTUM_FRAMES
        block_out: dict[AudioNode, np.ndarray] = {}
        # Profiling duplicates the quantum loop rather than branching inside
        # it: the unprofiled path (the default) must stay exactly the hot
        # loop, and the numeric operations are identical either way.
        profiler = current_node_profiler()
        if profiler is None:
            for frame0 in range(0, self.length, quantum):
                n = min(quantum, self.length - frame0)
                block_out.clear()
                for node in order:
                    ins = [
                        mix_sources([block_out[s] for s in port], batch, n)
                        for port in node._inputs
                    ]
                    block_out[node] = node.process_block(ins, frame0, n)
                out[:, :, frame0:frame0 + n] = block_out[self.destination][..., :n]
        else:
            labels = {node: node_label(node) for node in order}
            for frame0 in range(0, self.length, quantum):
                n = min(quantum, self.length - frame0)
                block_out.clear()
                for node in order:
                    start = time.perf_counter()
                    ins = [
                        mix_sources([block_out[s] for s in port], batch, n)
                        for port in node._inputs
                    ]
                    block_out[node] = node.process_block(ins, frame0, n)
                    profiler.add(labels[node], time.perf_counter() - start)
                out[:, :, frame0:frame0 + n] = block_out[self.destination][..., :n]
        self._rendered_batch = out
        return self._rendered_batch
