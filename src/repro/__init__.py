"""repro — reproduction of "Your Speaker or My Snooper?" (IMC 2022).

Top-level convenience surface; the layers live in:

  repro.webaudio    the offline Web Audio rendering engine
  repro.platform    platform stacks, math/FFT variants, jitter model
  repro.vectors     fingerprinting vectors (pure render functions)
  repro.population  sampler, equivalence-class render cache, study runner
  repro.analysis    fingerprint-graph collation + entropy/anonymity
                    analysis (the paper's §4 measurement layer)
  repro.obs         observability: span tracer, metrics, node profiler,
                    run reports (zero-dependency, off by default)
  repro.resilience  fault-tolerant supervised execution: retry/backoff,
                    batch bisection, checkpoint-resume, fault injection
"""

from .analysis import build_analysis_report, collate  # noqa: F401
from .analysis.shards import (build_shard_report,  # noqa: F401
                              merge_shard_reports)
from .obs import NullRecorder, Recorder  # noqa: F401
from .population import (RenderCache, ShardIntegrityError,  # noqa: F401
                         StudyDataset, run_study, run_study_sharded)
from .resilience import (FaultPlan, RetryBudget, RetryPolicy,  # noqa: F401
                         StudyExecutionError)
from .webaudio import OfflineAudioContext  # noqa: F401

__version__ = "0.1.0"

__all__ = ["run_study", "run_study_sharded", "RenderCache", "StudyDataset",
           "OfflineAudioContext",
           "collate", "build_analysis_report",
           "build_shard_report", "merge_shard_reports",
           "ShardIntegrityError",
           "Recorder", "NullRecorder",
           "StudyExecutionError", "RetryPolicy", "RetryBudget", "FaultPlan",
           "__version__"]
