"""Chrome trace-event export of the span tree + event log.

``python -m repro.obs.trace <report.json|events.jsonl>`` converts a run
report (``repro.obs.report``) and/or its JSONL event-log sidecar
(``repro.obs.events``) into the Chrome trace-event format — a
``{"traceEvents": [...]}`` document loadable in ``chrome://tracing`` and
Perfetto. Spans become ``"X"`` complete events (microsecond ``ts`` /
``dur``), log events become ``"i"`` instant events at their emitting
pid, and ``"M"`` metadata events name each process lane.

Clock domains: the parent's spans and events share the recorder epoch
(``time.perf_counter() - epoch``), so they land on one timeline
directly. Events shipped home from pool workers carry the worker's *raw*
``perf_counter`` clock (epoch 0 — a worker cannot know the parent's
epoch). The exporter rebases each foreign pid onto the anchor timeline:
the pid's first event is pinned to the timestamp of the nearest
preceding anchor-pid event in sequence order (the merge point bounds it
from above, the preceding emit bounds it from below), and later events
of that pid keep their true relative spacing. The anchor pid comes from
the report's ``events`` section when exporting a report, else from the
first event in the log (``study.start`` is always parent-side).
"""
from __future__ import annotations

import argparse
import json
import os
import sys

from .events import EVENT_KINDS, read_events

TRACE_PHASES = {"X", "i", "M"}


def _us(seconds: float) -> float:
    return round(float(seconds) * 1e6, 3)


def _rebase_offsets(events: list[dict], anchor_pid: int) -> dict[int, float]:
    """Per-pid offsets (seconds) mapping each foreign pid's raw clock onto
    the anchor timeline. Anchor events pass through with offset 0."""
    offsets: dict[int, float] = {anchor_pid: 0.0}
    anchor_ts = 0.0
    pinned_at: dict[int, float] = {}   # pid -> anchor_ts at first sighting
    min_raw: dict[int, float] = {}     # pid -> earliest raw clock seen
    for event in sorted(events, key=lambda e: e.get("seq", 0)):
        pid = event.get("pid", anchor_pid)
        t = float(event.get("t_mono_s", 0.0))
        if pid == anchor_pid:
            anchor_ts = t
        else:
            # the parent may absorb a worker's jobs out of emission order,
            # so the pid's earliest raw clock (not its first-by-seq event)
            # is what gets pinned — everything else lands after it
            if pid not in pinned_at:
                pinned_at[pid] = anchor_ts
            if pid not in min_raw or t < min_raw[pid]:
                min_raw[pid] = t
    for pid, raw in min_raw.items():
        offsets[pid] = pinned_at[pid] - raw
    return offsets


def _event_args(event: dict) -> dict:
    skip = {"schema", "seq", "kind", "t_wall_s", "t_mono_s", "pid"}
    return {k: v for k, v in event.items() if k not in skip}


def build_trace(spans: list[dict] | None = None,
                events: list[dict] | None = None,
                anchor_pid: int | None = None) -> dict:
    """Assemble a Chrome trace document from a span list (report shape)
    and/or an event list (sidecar shape)."""
    spans = spans or []
    events = events or []
    if anchor_pid is None:
        anchor_pid = events[0].get("pid", 0) if events else 0
    offsets = _rebase_offsets(events, anchor_pid)
    trace_events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": anchor_pid, "tid": 0,
         "args": {"name": "repro study (driver)"}},
    ]
    for pid in sorted(offsets):
        if pid != anchor_pid:
            trace_events.append(
                {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                 "args": {"name": f"repro render worker {pid}"}})
    for span in spans:
        entry = {
            "ph": "X",
            "name": span["name"],
            "pid": anchor_pid,
            "tid": 0,
            "ts": _us(span["start_s"]),
            "dur": _us(span["duration_s"]),
            "cat": "span",
        }
        if span.get("attrs"):
            entry["args"] = dict(span["attrs"])
        trace_events.append(entry)
    for event in sorted(events, key=lambda e: e.get("seq", 0)):
        pid = event.get("pid", anchor_pid)
        t = float(event.get("t_mono_s", 0.0)) + offsets.get(pid, 0.0)
        trace_events.append({
            "ph": "i",
            "name": event["kind"],
            "pid": pid,
            "tid": 0,
            "ts": _us(t),
            "s": "p",  # process-scoped instant marker
            "cat": "event",
            "args": _event_args(event),
        })
    return {"traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"exporter": "repro.obs.trace"}}


def validate_trace(payload) -> list[str]:
    """Return the list of schema problems (empty == valid Chrome trace)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["trace is not a JSON object"]
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["traceEvents must be an array"]
    for i, entry in enumerate(trace_events):
        if not isinstance(entry, dict):
            problems.append(f"traceEvents[{i}] is not an object")
            continue
        ph = entry.get("ph")
        if ph not in TRACE_PHASES:
            problems.append(f"traceEvents[{i}] has unsupported ph {ph!r}")
            continue
        if not isinstance(entry.get("name"), str):
            problems.append(f"traceEvents[{i}] missing string name")
        if not isinstance(entry.get("pid"), int):
            problems.append(f"traceEvents[{i}] missing integer pid")
        if ph in ("X", "i"):
            ts = entry.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                    or ts < 0:
                problems.append(f"traceEvents[{i}] needs non-negative ts")
        if ph == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                    or dur < 0:
                problems.append(f"traceEvents[{i}] needs non-negative dur")
        if ph == "i" and entry.get("name") not in EVENT_KINDS:
            problems.append(
                f"traceEvents[{i}] instant kind {entry.get('name')!r} "
                f"is not a known event kind")
    return problems


# -- input dispatch ------------------------------------------------------------

def _load_input(path: str):
    """Classify ``path`` as ('trace'|'report'|'events', payload).

    Reports and traces are JSON documents; an event log is JSONL (its
    first line parses as one event object, the whole file does not parse
    as one document)."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict):
        if "traceEvents" in payload:
            return "trace", payload
        if payload.get("kind") == "repro.obs.report":
            return "report", payload
        raise ValueError(f"{path} is JSON but neither a trace document nor "
                         f"a repro.obs.report")
    events, problems = read_events(path)
    hard = [p for p in problems if not p.startswith("torn tail")]
    if hard:
        raise ValueError(f"{path}: " + "; ".join(hard))
    return "events", events


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Export a run report and/or its event-log sidecar to "
                    "Chrome trace-event format (or --check an exported "
                    "trace).")
    parser.add_argument("path", help="run report JSON, events JSONL sidecar, "
                                     "or an exported trace (with --check)")
    parser.add_argument("--out", help="output path for the trace document "
                                      "(default: <input>.trace.json)")
    parser.add_argument("--check", action="store_true",
                        help="validate only; write nothing")
    args = parser.parse_args(argv)

    try:
        shape, payload = _load_input(args.path)
    except FileNotFoundError:
        print(f"error: no input at {args.path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if shape == "trace":
        trace = payload
    elif shape == "events":
        trace = build_trace(events=payload)
    else:  # report: spans from the document, events from its sidecar if any
        events: list[dict] = []
        anchor_pid = None
        section = payload.get("events")
        if isinstance(section, dict):
            anchor_pid = section.get("pid")
            sidecar = section.get("path")
            if isinstance(sidecar, str):
                resolved = sidecar if os.path.isabs(sidecar) else os.path.join(
                    os.path.dirname(os.path.abspath(args.path)), sidecar)
                try:
                    events, _problems = read_events(resolved)
                except FileNotFoundError:
                    print(f"warning: events sidecar missing at {resolved}; "
                          f"exporting spans only", file=sys.stderr)
        trace = build_trace(spans=payload.get("spans"), events=events,
                            anchor_pid=anchor_pid)

    problems = validate_trace(trace)
    if problems:
        print(f"error: {args.path} produced an invalid trace:",
              file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2
    if args.check:
        return 0
    out = args.out or (args.path + ".trace.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    print(f"wrote {len(trace['traceEvents'])} trace events -> {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via CLI tests
    sys.exit(main())
