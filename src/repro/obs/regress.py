"""The bench-regression sentinel: fresh benchmark runs vs committed baselines.

``python -m repro.obs.regress fresh1.json [fresh2.json ...]`` compares
each fresh benchmark document against the committed ``BENCH_*.json``
baseline it corresponds to (matched on the document's ``benchmark``
field) and exits non-zero naming every metric outside its tolerance
band. CI runs it after re-running the benchmarks at smoke scale, so a
perf regression fails the build with the offending metric and baseline
named instead of silently rotting until someone re-reads the numbers.

Tolerance policy (documented in DESIGN.md): every watched metric has a
*direction* and a *relative tolerance band*.

  higher-is-better  fresh >= baseline * (1 - tol)   (throughputs, speedups)
  lower-is-better   fresh <= baseline * (1 + tol)   (overhead ratios, latency)

Improvements never fail — the band is one-sided. Bands are deliberately
wide (benchmarks run at smoke scale on shared CI machines; the sentinel
exists to catch step-function regressions like a dead fast path, not 5%
noise), and ``--tolerance-scale`` widens them uniformly for noisier
environments. Scale-dependent metrics (cache hit rates, absolute wall
times at full scale) are not watched: only roughly scale-invariant
throughputs and dimensionless ratios are. A watched metric missing from
the baseline is skipped (older baseline, new metric); a watched metric
missing from the *fresh* run while present in the baseline fails — a
benchmark silently dropping a metric is exactly the rot this guards
against.
"""
from __future__ import annotations

import argparse
import json
import os
import sys

VERDICT_KIND = "repro.obs.regress"
VERDICT_FORMAT = 1

#: benchmark name (the document's ``benchmark`` field) -> committed baseline
BASELINES = {
    "bench_render_perf": "BENCH_render.json",
    "bench_collation": "BENCH_collation.json",
    "bench_obs_overhead": "BENCH_obs_overhead.json",
    "resilience": "BENCH_resilience.json",
    "bench_shard_scale": "BENCH_shard_scale.json",
    "bench_tables": "BENCH_tables.json",
    "bench_service": "BENCH_service.json",
}

#: watched metrics: benchmark -> [(dotted path, direction, rel tolerance)]
#: directions: "higher" = higher is better, "lower" = lower is better
SPECS = {
    "bench_render_perf": [
        ("batched.renders_per_s", "higher", 0.40),
        ("fused.renders_per_s", "higher", 0.40),
        ("baseline.renders_per_s", "higher", 0.40),
        ("batching_speedup", "higher", 0.40),
        ("fused.speedup_vs_batched", "higher", 0.40),
    ],
    "bench_collation": [
        ("collate_items_per_s", "higher", 0.60),
    ],
    "bench_obs_overhead": [
        ("study_wall_s.enabled_ratio", "lower", 0.50),
        ("study_wall_s.events_ratio", "lower", 0.50),
        ("micro_us_per_op.null.span_us", "lower", 2.00),
    ],
    "resilience": [
        ("runs.checkpoint.overhead_vs_clean", "lower", 0.50),
        ("runs.chaos.overhead_vs_clean", "lower", 1.50),
    ],
    # absolute RSS, wall times, and the sharded-vs-monolithic footprint
    # ratio are machine- or scale-dependent (the monolithic footprint
    # grows with user count); only the sustained throughput and the
    # dimensionless RSS growth rate are watched
    "bench_shard_scale": [
        ("gates.renders_per_s", "higher", 0.60),
        ("gates.sharded_vs_monolithic_throughput", "higher", 0.50),
        ("gates.rss_growth_per_user_growth", "lower", 1.00),
    ],
    # the Table 2-5 gates are dimensionless ratios/scores; they drift a
    # little with population size (CI reruns at smoke scale), so the
    # bands cover the full-vs-smoke spread plus headroom
    "bench_tables": [
        ("tables.users_per_s", "higher", 0.60),
        ("gates.comparator_over_audio_entropy", "higher", 0.35),
        ("gates.additive_min_delta_pct", "higher", 0.65),
        ("gates.match_score_min_s2", "higher", 0.05),
        ("gates.dc_over_mathjs_entropy", "higher", 0.25),
    ],
    # service latencies at smoke scale are microseconds-noisy; the
    # watched set is the sustained/replay throughputs plus the overload
    # p99 bound (wide band — it guards the "p99 exploded under load"
    # step function, not scheduler jitter)
    "bench_service": [
        ("sustained.ingest_visits_per_s", "higher", 0.60),
        ("sustained.lookups_per_s", "higher", 0.60),
        ("overload.lookup_p99_ms", "lower", 4.00),
        ("recovery.replay_visits_per_s", "higher", 0.60),
    ],
}


def _lookup(payload: dict, path: str):
    """Resolve a dotted path; returns None when any hop is missing or the
    leaf is not a plain number."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def compare(fresh: dict, baseline: dict, specs: list[tuple[str, str, float]],
            tolerance_scale: float = 1.0) -> list[dict]:
    """Compare one fresh benchmark document against its baseline.

    Returns one result dict per watched metric: ``status`` is ``"ok"``,
    ``"regression"``, ``"missing"`` (present in baseline, absent from
    fresh — a failure), or ``"skipped"`` (absent from baseline).
    """
    results = []
    for path, direction, tolerance in specs:
        tolerance = tolerance * tolerance_scale
        base = _lookup(baseline, path)
        have = _lookup(fresh, path)
        entry = {"metric": path, "direction": direction,
                 "tolerance": round(tolerance, 6),
                 "baseline": base, "fresh": have}
        if base is None:
            entry["status"] = "skipped"
        elif have is None:
            entry["status"] = "missing"
        else:
            if direction == "higher":
                bound = base * (1.0 - tolerance)
                ok = have >= bound
            else:
                bound = base * (1.0 + tolerance)
                ok = have <= bound
            entry["bound"] = round(bound, 6)
            entry["status"] = "ok" if ok else "regression"
        results.append(entry)
    return results


def build_verdict(runs: list[dict]) -> dict:
    """Wrap per-benchmark comparison runs into the machine-readable
    verdict document CI uploads as an artifact."""
    failures = [
        {"benchmark": run["benchmark"],
         "baseline_path": run["baseline_path"], **result}
        for run in runs for result in run["results"]
        if result["status"] in ("regression", "missing")
    ]
    return {
        "kind": VERDICT_KIND,
        "format": VERDICT_FORMAT,
        "ok": not failures,
        "checked": sum(len(r["results"]) for r in runs),
        "failures": failures,
        "runs": runs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Compare fresh benchmark JSON documents against the "
                    "committed BENCH_*.json baselines; exit non-zero on "
                    "any out-of-band metric.")
    parser.add_argument("fresh", nargs="+",
                        help="fresh benchmark JSON documents to judge")
    parser.add_argument("--baseline-dir", default="benchmarks",
                        help="directory holding the committed BENCH_*.json "
                             "baselines (default: benchmarks)")
    parser.add_argument("--tolerance-scale", type=float, default=1.0,
                        help="multiply every tolerance band by this factor "
                             "(>1 for noisy CI machines; default 1.0)")
    parser.add_argument("--out", help="also write the machine-readable "
                                      "verdict JSON here")
    args = parser.parse_args(argv)
    if args.tolerance_scale <= 0:
        print("error: --tolerance-scale must be positive", file=sys.stderr)
        return 2

    runs = []
    for path in args.fresh:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                fresh = json.load(fh)
        except FileNotFoundError:
            print(f"error: no fresh benchmark at {path}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
            return 2
        name = fresh.get("benchmark") if isinstance(fresh, dict) else None
        if name not in BASELINES:
            print(f"error: {path} names unknown benchmark {name!r} "
                  f"(known: {sorted(BASELINES)})", file=sys.stderr)
            return 2
        baseline_path = os.path.join(args.baseline_dir, BASELINES[name])
        try:
            with open(baseline_path, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print(f"error: no committed baseline at {baseline_path}",
                  file=sys.stderr)
            return 2
        results = compare(fresh, baseline, SPECS[name],
                          tolerance_scale=args.tolerance_scale)
        runs.append({"benchmark": name, "fresh_path": path,
                     "baseline_path": baseline_path, "results": results})

    verdict = build_verdict(runs)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(verdict, fh, indent=2)
            fh.write("\n")

    for run in runs:
        for result in run["results"]:
            status = result["status"]
            detail = (f"fresh={result['fresh']} baseline={result['baseline']}"
                      + (f" bound={result['bound']}" if "bound" in result
                         else ""))
            line = (f"[{status:>10}] {run['benchmark']}:{result['metric']} "
                    f"({result['direction']} is better, "
                    f"tol {result['tolerance']:.0%}) {detail}")
            print(line, file=sys.stderr if status in ("regression", "missing")
                  else sys.stdout)
    if not verdict["ok"]:
        names = ", ".join(f"{f['benchmark']}:{f['metric']} "
                          f"(baseline {f['baseline_path']})"
                          for f in verdict["failures"])
        print(f"error: regression sentinel failed: {names}", file=sys.stderr)
        return 1
    print(f"regression sentinel: {verdict['checked']} metrics within "
          f"tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via CLI tests
    sys.exit(main())
