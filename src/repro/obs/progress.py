"""Live study progress: an opt-in stderr heartbeat.

``run_study(progress=True)`` threads a ``ProgressMeter`` through the
supervisor's completion loop. Every completed render job offers an
update; the meter rate-limits itself to one line per ``interval_s`` so a
million-class run costs a clock read per job, not a terminal write. The
line carries what an operator actually watches during a long collection:

    [repro.study] classes 120/249  1034.2 renders/s  cache 34.2% hit  \
retries 0  eta 0.1s

Disabled (the default) the driver holds no meter at all — zero calls per
render, zero per job — preserving the NullRecorder fast-path contract.
The meter is recorder-independent on purpose: progress works with
observability off, and observability works headless.
"""
from __future__ import annotations

import sys
import time


class ProgressMeter:
    """Throttled progress reporter for the render phase."""

    def __init__(self, total_jobs: int, total_classes: int, stream=None,
                 interval_s: float = 0.5, clock=time.monotonic):
        self._total_jobs = total_jobs
        self._total_classes = total_classes
        self._stream = stream if stream is not None else sys.stderr
        self._interval_s = interval_s
        self._clock = clock
        self._start = clock()
        self._last_emit = float("-inf")
        self.lines_written = 0

    def _line(self, jobs_done: int, classes_done: int, retries: int,
              hit_rate: float | None, now: float) -> str:
        elapsed = max(now - self._start, 1e-9)
        rate = classes_done / elapsed
        parts = [f"classes {classes_done}/{self._total_classes}",
                 f"{rate:.1f} renders/s"]
        if hit_rate is not None:
            parts.append(f"cache {hit_rate * 100:.1f}% hit")
        parts.append(f"retries {retries}")
        remaining = self._total_classes - classes_done
        if rate > 0 and remaining >= 0:
            parts.append(f"eta {remaining / rate:.1f}s")
        return "[repro.study] " + "  ".join(parts)

    def update(self, jobs_done: int, classes_done: int, retries: int = 0,
               hit_rate: float | None = None) -> None:
        """Offer a progress sample; emits at most one line per interval
        (the final job always emits)."""
        now = self._clock()
        if jobs_done < self._total_jobs \
                and now - self._last_emit < self._interval_s:
            return
        self._last_emit = now
        self._stream.write(
            self._line(jobs_done, classes_done, retries, hit_rate, now) + "\n")
        self._stream.flush()
        self.lines_written += 1

    def finish(self, classes_done: int, retries: int = 0,
               hit_rate: float | None = None) -> None:
        """Final summary line (emitted even when nothing needed
        rendering, so an all-cached resume still reports itself)."""
        now = self._clock()
        wall = now - self._start
        line = self._line(self._total_jobs, classes_done, retries,
                          hit_rate, now)
        self._stream.write(f"{line}  done in {wall:.1f}s\n")
        self._stream.flush()
        self.lines_written += 1
