"""The machine-readable run report: build, validate, render, CLI.

A report is one JSON document describing where a study run spent its
time: top-level phase spans (plan/render/assemble), the full span list,
counters, per-vector latency histograms, cache statistics, the per-stack
hot-node profile, and pool utilization. ``run_study(report_path=...)``
writes one; CI schema-checks it with ``--check`` and uploads it as an
artifact; ``python -m repro.obs.report <path>`` renders it as tables.

The CLI dispatches on the document's ``kind``: run reports
(``repro.obs.report``) are handled here, analysis reports
(``repro.analysis.report``, written by ``python -m repro.analysis``) are
validated/rendered through ``repro.analysis.report`` — so one ``--check``
entry point gates every report artefact CI produces.
"""
from __future__ import annotations

import argparse
import json
import os
import sys

from .recorder import Histogram

REPORT_KIND = "repro.obs.report"
REPORT_FORMAT = 1

#: every study report must carry exactly these top-level phases
STUDY_PHASES = ("plan", "render", "assemble")


def build_report(recorder, workload: dict, cache_stats: dict | None = None,
                 pool: dict | None = None,
                 resilience: dict | None = None,
                 events_path: str | None = None) -> dict:
    """Assemble the report document from a recorder plus run context.

    ``resilience`` is the supervised-execution summary produced by
    ``run_study`` (``repro.resilience.SupervisedExecutor.summary()`` plus
    the checkpoint bookkeeping); its ``retry`` / ``degraded`` /
    ``checkpoint`` members become top-level report sections so dashboards
    and the CI schema check see recovery activity next to the latency
    data it perturbed.

    ``events_path`` names the JSONL event-log sidecar the run streamed
    its events to (see ``repro.obs.events``). The report embeds only the
    summary — count, per-kind tally, emitting pid — plus the sidecar
    path; ``--check`` re-reads the sidecar and refuses a report whose log
    lost events.
    """
    snapshot = recorder.snapshot()
    top_level = [s for s in snapshot["spans"] if s.get("parent") is None]
    top_level.sort(key=lambda s: s["start_s"])
    phases = [{"name": s["name"], "start_s": s["start_s"],
               "duration_s": s["duration_s"]} for s in top_level]
    resilience = resilience or {}
    events = None
    if snapshot.get("events"):
        kinds: dict[str, int] = {}
        for event in snapshot["events"]:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        events = {
            "path": events_path,
            "count": len(snapshot["events"]),
            "kinds": dict(sorted(kinds.items())),
            "pid": os.getpid(),
        }
    return {
        "kind": REPORT_KIND,
        "format": REPORT_FORMAT,
        "workload": dict(workload),
        "phases": phases,
        "spans": snapshot["spans"],
        "counters": snapshot["counters"],
        "histograms": snapshot["histograms"],
        "cache": dict(cache_stats) if cache_stats is not None else None,
        "node_profile": snapshot["node_profile"],
        "pool": dict(pool) if pool is not None else None,
        "retry": resilience.get("retry"),
        "degraded": resilience.get("degraded"),
        "checkpoint": resilience.get("checkpoint"),
        "events": events,
    }


# -- validation (the CI schema check) ----------------------------------------

def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_report(payload, base_dir: str | None = None) -> list[str]:
    """Return the list of schema problems (empty == valid).

    ``base_dir`` anchors relative sidecar paths (the events JSONL named
    by the ``events`` section); the CLI passes the report's directory.
    Without it, relative sidecar paths resolve against the working
    directory.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["report is not a JSON object"]
    if payload.get("kind") != REPORT_KIND:
        problems.append(f"kind must be {REPORT_KIND!r}, got {payload.get('kind')!r}")
    if payload.get("format") != REPORT_FORMAT:
        problems.append(f"format must be {REPORT_FORMAT}, got {payload.get('format')!r}")
    for key in ("workload", "counters", "histograms", "node_profile"):
        if not isinstance(payload.get(key), dict):
            problems.append(f"{key} must be an object")

    phases = payload.get("phases")
    if not isinstance(phases, list) or not phases:
        problems.append("phases must be a non-empty array")
    else:
        names = set()
        for i, phase in enumerate(phases):
            if not isinstance(phase, dict) or not isinstance(phase.get("name"), str) \
                    or not _is_number(phase.get("duration_s")):
                problems.append(f"phases[{i}] must have a string name and numeric duration_s")
                continue
            names.add(phase["name"])
        missing = [p for p in STUDY_PHASES if p not in names]
        if missing:
            problems.append(f"phases missing {missing} (need all of {list(STUDY_PHASES)})")

    spans = payload.get("spans")
    if not isinstance(spans, list):
        problems.append("spans must be an array")

    if isinstance(payload.get("counters"), dict):
        for name, value in payload["counters"].items():
            if not _is_number(value):
                problems.append(f"counter {name!r} is not numeric")

    if isinstance(payload.get("histograms"), dict):
        for name, hist in payload["histograms"].items():
            if not isinstance(hist, dict) or not {"count", "sum", "buckets"} <= hist.keys():
                problems.append(f"histogram {name!r} missing count/sum/buckets")
            elif isinstance(hist["buckets"], dict):
                if sum(hist["buckets"].values()) != hist["count"]:
                    problems.append(f"histogram {name!r} bucket counts do not sum to count")
            else:
                problems.append(f"histogram {name!r} buckets must be an object")

    cache = payload.get("cache")
    if cache is not None:
        if not isinstance(cache, dict) or not {"hits", "misses"} <= cache.keys():
            problems.append("cache must be null or an object with hits/misses")

    # resilience contract: the supervised executor writes its summary both
    # as counters and as the retry/degraded/checkpoint sections — the two
    # views must agree, and recovery activity implies the sections exist
    counters = payload.get("counters")
    counters = counters if isinstance(counters, dict) else {}

    retry = payload.get("retry")
    if retry is None:
        if counters.get("retry.attempts"):
            problems.append("retry.* counters present but retry section missing")
    elif not isinstance(retry, dict):
        problems.append("retry must be null or an object")
    else:
        for field in ("attempts", "retries", "timeouts", "crashes",
                      "worker_errors", "corrupt_returns", "bisections"):
            if not _is_number(retry.get(field)):
                problems.append(f"retry.{field} must be numeric")
        quarantined = retry.get("quarantined")
        if not isinstance(quarantined, list) \
                or not all(isinstance(k, str) for k in quarantined):
            problems.append("retry.quarantined must be an array of class keys")
        elif len(quarantined) != counters.get("retry.quarantined", 0):
            problems.append("retry.quarantined length does not match "
                            "counter retry.quarantined")
        budget = retry.get("budget")
        if not isinstance(budget, dict) or not _is_number(budget.get("limit")) \
                or not _is_number(budget.get("spent")):
            problems.append("retry.budget must have numeric limit/spent")
        for field, counter in (("attempts", "retry.attempts"),
                               ("retries", "retry.retries"),
                               ("timeouts", "retry.timeouts"),
                               ("crashes", "retry.crashes"),
                               ("corrupt_returns", "retry.corrupt_returns"),
                               ("bisections", "retry.bisections")):
            if _is_number(retry.get(field)) \
                    and retry[field] != counters.get(counter, 0):
                problems.append(f"retry.{field} does not match counter {counter}")

    degraded = payload.get("degraded")
    if degraded is not None:
        if not isinstance(degraded, dict) \
                or not _is_number(degraded.get("pool_rebuilds")) \
                or not isinstance(degraded.get("inline_fallback"), bool):
            problems.append("degraded must have numeric pool_rebuilds and "
                            "boolean inline_fallback")
        elif degraded["pool_rebuilds"] != counters.get("degraded.pool_rebuilds", 0):
            problems.append("degraded.pool_rebuilds does not match counter "
                            "degraded.pool_rebuilds")

    checkpoint = payload.get("checkpoint")
    if checkpoint is not None:
        if not isinstance(checkpoint, dict) \
                or not isinstance(checkpoint.get("enabled"), bool):
            problems.append("checkpoint must have a boolean enabled flag")
        else:
            for field, counter in (("writes", "checkpoint.writes"),
                                   ("torn_writes", "checkpoint.torn_writes"),
                                   ("resumed_classes", "checkpoint.resumed_classes"),
                                   ("corrupt_recoveries", "checkpoint.corrupt")):
                if not _is_number(checkpoint.get(field)):
                    problems.append(f"checkpoint.{field} must be numeric")
                elif checkpoint[field] != counters.get(counter, 0):
                    problems.append(
                        f"checkpoint.{field} does not match counter {counter}")

    # events contract: the report's event summary and the JSONL sidecar
    # it points at must agree — a sidecar holding fewer events than the
    # report recorded means the log was truncated after the fact
    events = payload.get("events")
    if events is not None:
        if not isinstance(events, dict) or not _is_number(events.get("count")) \
                or not isinstance(events.get("kinds"), dict):
            problems.append("events must be null or an object with numeric "
                            "count and a kinds tally")
        else:
            if sum(events["kinds"].values()) != events["count"]:
                problems.append("events.kinds tally does not sum to "
                                "events.count")
            path = events.get("path")
            if isinstance(path, str):
                resolved = path if os.path.isabs(path) \
                    else os.path.join(base_dir or ".", path)
                # deferred import: reports without sidecars never pay it
                from .events import read_events
                try:
                    sidecar, side_problems = read_events(resolved)
                except FileNotFoundError:
                    sidecar, side_problems = None, []
                    problems.append(f"events sidecar missing at {resolved}")
                if sidecar is not None:
                    for problem in side_problems:
                        problems.append(f"events sidecar: {problem}")
                    if len(sidecar) < events["count"]:
                        problems.append(
                            f"events sidecar truncated: holds "
                            f"{len(sidecar)} of {events['count']} events")

    # batched-render contract: any run that counted batches must also have
    # recorded the batch-size histogram, and its observations must account
    # for every batch (the per-batch latency attribution rides on it)
    if isinstance(payload.get("counters"), dict) \
            and isinstance(payload.get("histograms"), dict):
        batches = payload["counters"].get("render.batches")
        if batches:
            batch_hist = payload["histograms"].get("render.batch_size")
            if not isinstance(batch_hist, dict):
                problems.append(
                    "render.batches counted but render.batch_size histogram missing")
            elif batch_hist.get("count") != batches:
                problems.append(
                    "render.batch_size histogram count does not equal render.batches")
            renders = payload["counters"].get("render.renders")
            if isinstance(batch_hist, dict) and _is_number(batch_hist.get("sum")) \
                    and _is_number(renders) and batch_hist["sum"] != renders:
                problems.append(
                    "render.batch_size histogram sum does not equal render.renders")

    if isinstance(payload.get("node_profile"), dict):
        for stack, nodes in payload["node_profile"].items():
            if not isinstance(nodes, dict):
                problems.append(f"node_profile[{stack!r}] must be an object")
                continue
            for label, entry in nodes.items():
                if not isinstance(entry, dict) or not _is_number(entry.get("seconds")) \
                        or not isinstance(entry.get("calls"), int):
                    problems.append(
                        f"node_profile[{stack!r}][{label!r}] must have numeric "
                        "seconds and integer calls")
    return problems


# -- human-readable rendering -------------------------------------------------

def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def render_report(payload: dict) -> str:
    """Render a report dict as human-readable tables."""
    out: list[str] = []
    workload = payload.get("workload", {})
    out.append("== run report ==")
    out.append("workload: " + ", ".join(f"{k}={v}" for k, v in workload.items()))

    phases = payload.get("phases", [])
    total = sum(p["duration_s"] for p in phases) or 1.0
    out.append("")
    out.append("phases:")
    out.append(_table(
        ["phase", "wall_ms", "share"],
        [[p["name"], _ms(p["duration_s"]), f"{100 * p['duration_s'] / total:5.1f}%"]
         for p in phases]))

    cache = payload.get("cache")
    if cache:
        out.append("")
        out.append("cache: " + ", ".join(
            f"{k}={cache[k]}" for k in
            ("hits", "misses", "hit_rate", "entries", "evictions", "disk_loads")
            if k in cache))

    histograms = payload.get("histograms", {})
    if histograms:
        out.append("")
        out.append("latency histograms:")
        rows = []
        for name in sorted(histograms):
            hist = Histogram.from_dict(histograms[name])
            rows.append([name, str(hist.count), _ms(hist.mean),
                         _ms(hist.approx_quantile(0.5)),
                         _ms(hist.approx_quantile(0.95)),
                         _ms(hist.max or 0.0)])
        out.append(_table(["histogram", "n", "mean_ms", "p50_ms", "p95_ms",
                           "max_ms"], rows))

    counters = payload.get("counters", {})
    if counters:
        out.append("")
        out.append("counters:")
        out.append(_table(["counter", "value"],
                          [[k, f"{v:g}"] for k, v in sorted(counters.items())]))

    node_profile = payload.get("node_profile", {})
    if node_profile:
        out.append("")
        out.append("hot nodes (per profiled stack):")
        for stack in sorted(node_profile):
            nodes = node_profile[stack]
            stack_total = sum(e["seconds"] for e in nodes.values()) or 1.0
            out.append(f"  stack {stack}")
            rows = [[label, _ms(entry["seconds"]), str(entry["calls"]),
                     f"{100 * entry['seconds'] / stack_total:5.1f}%"]
                    for label, entry in
                    sorted(nodes.items(), key=lambda kv: -kv[1]["seconds"])]
            table = _table(["node", "wall_ms", "calls", "share"], rows)
            out.extend("  " + line for line in table.splitlines())

    pool = payload.get("pool")
    if pool:
        out.append("")
        out.append("pool: " + ", ".join(f"{k}={v}" for k, v in pool.items()))

    events = payload.get("events")
    if events:
        out.append("")
        out.append(f"events: {events['count']} recorded"
                   + (f" -> {events['path']}" if events.get("path") else ""))
        out.append("  " + ", ".join(f"{kind}={n}"
                                    for kind, n in events["kinds"].items()))

    retry = payload.get("retry")
    if retry:
        out.append("")
        parts = [f"{k}={retry[k]}"
                 for k in ("attempts", "retries", "timeouts", "crashes",
                           "worker_errors", "corrupt_returns", "bisections")
                 if k in retry]
        budget = retry.get("budget") or {}
        parts.append(f"budget={budget.get('spent', 0)}/{budget.get('limit', 0)}")
        out.append("retry: " + ", ".join(parts))
        if retry.get("quarantined"):
            out.append("  quarantined: " + ", ".join(retry["quarantined"]))
    degraded = payload.get("degraded")
    if degraded:
        out.append("degraded: " + ", ".join(f"{k}={v}"
                                            for k, v in degraded.items()))
    checkpoint = payload.get("checkpoint")
    if checkpoint and checkpoint.get("enabled"):
        out.append("checkpoint: " + ", ".join(f"{k}={v}"
                                              for k, v in checkpoint.items()))
    out.append("")
    return "\n".join(out)


# -- CLI ----------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Validate and pretty-print a repro report (run reports "
                    "and repro.analysis reports, dispatched on 'kind').")
    parser.add_argument("path", help="path to a report JSON file")
    parser.add_argument("--check", action="store_true",
                        help="schema-check only; print nothing on success")
    args = parser.parse_args(argv)

    try:
        with open(args.path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        print(f"error: no report at {args.path}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.path} is not valid JSON: {exc}", file=sys.stderr)
        return 2

    if isinstance(payload, dict) \
            and payload.get("kind") == "repro.analysis.report":
        # deferred import: obs stays analysis-free unless a report needs it
        from ..analysis.report import (render_analysis_report,
                                       validate_analysis_report)
        problems = validate_analysis_report(payload)
        if problems:
            print(f"error: {args.path} failed schema check:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 2
        if not args.check:
            try:
                print(render_analysis_report(payload))
            except BrokenPipeError:  # e.g. piped into `head`
                sys.stderr.close()
        return 0

    if isinstance(payload, dict) \
            and payload.get("kind") == "repro.analysis.tables":
        from ..analysis.tables import (render_tables_report,
                                       validate_tables_report)
        problems = validate_tables_report(payload)
        if problems:
            print(f"error: {args.path} failed schema check:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 2
        if not args.check:
            try:
                print(render_tables_report(payload))
            except BrokenPipeError:  # e.g. piped into `head`
                sys.stderr.close()
        return 0

    if isinstance(payload, dict) \
            and payload.get("kind") == "repro.analysis.shard_report":
        from ..analysis.shards import (render_shard_report,
                                       validate_shard_report)
        problems = validate_shard_report(payload)
        if problems:
            print(f"error: {args.path} failed schema check:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 2
        if not args.check:
            try:
                print(render_shard_report(payload))
            except BrokenPipeError:  # e.g. piped into `head`
                sys.stderr.close()
        return 0

    problems = validate_report(payload,
                               base_dir=os.path.dirname(os.path.abspath(args.path)))
    if problems:
        print(f"error: {args.path} failed schema check:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2
    if not args.check:
        try:
            print(render_report(payload))
        except BrokenPipeError:  # e.g. piped into `head`
            sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via CLI tests
    sys.exit(main())
