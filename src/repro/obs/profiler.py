"""Opt-in per-node render profiling, wired through a contextvar.

The webaudio engine is the hot path: ~40 render quanta x ~6 nodes per
eFP, at hundreds of thousands of eFPs per study. Rather than thread a
profiler argument through every vector -> context -> node call chain,
the engine asks ``current_node_profiler()`` once per render and only
takes its instrumented loop when a profiler is active — when none is,
the render path is byte-for-byte the uninstrumented one.

Activation is scoped: ``with profile_nodes() as prof:`` installs a fresh
accumulator for the dynamic extent of the block (contextvars keep this
correct inside pool workers and any future async drivers). The
accumulator is two plain dicts so it pickles across the process-pool
boundary for free.
"""
from __future__ import annotations

import contextvars
from contextlib import contextmanager


class NodeProfiler:
    """Accumulates wall-clock seconds and call counts per node label."""

    __slots__ = ("seconds", "calls")

    def __init__(self):
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, label: str, elapsed_s: float) -> None:
        self.seconds[label] = self.seconds.get(label, 0.0) + elapsed_s
        self.calls[label] = self.calls.get(label, 0) + 1


_ACTIVE: contextvars.ContextVar[NodeProfiler | None] = contextvars.ContextVar(
    "repro_obs_node_profiler", default=None)


def current_node_profiler() -> NodeProfiler | None:
    """The profiler active in this context, or None (profiling off)."""
    return _ACTIVE.get()


@contextmanager
def profile_nodes():
    """Activate per-node profiling for the block; yields the accumulator."""
    profiler = NodeProfiler()
    token = _ACTIVE.set(profiler)
    try:
        yield profiler
    finally:
        _ACTIVE.reset(token)
