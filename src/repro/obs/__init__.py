"""repro.obs — zero-dependency observability for the render pipeline.

Three layers, all stdlib-only so every other package may import this one
(and nothing here imports any other repro package):

  recorder   span tracer (context-manager API, monotonic clocks, nesting),
             counters, and mergeable exponential histograms, behind a
             ``Recorder`` / ``NullRecorder`` null-object pair — disabled
             observability costs a constant handful of no-op calls per
             study, never per render.
  profiler   opt-in per-node timing for the webaudio engine, activated via
             a contextvar so the engine's hot loop stays untouched when
             profiling is off.
  events     the crash-safe append-only JSONL event log: the *sequence* of
             retries, rebuilds, checkpoint writes, and cache quarantines
             that aggregates throw away (see ``repro.obs.events``).
  progress   the opt-in stderr heartbeat for long runs (``ProgressMeter``).
  report     the machine-readable run report: build/validate/render, plus
             the ``python -m repro.obs.report`` CLI.
  trace      Chrome trace-event export of the span tree + event log
             (``python -m repro.obs.trace``), loadable in Perfetto.
  regress    the bench-regression sentinel comparing fresh benchmark runs
             against the committed BENCH_*.json baselines
             (``python -m repro.obs.regress``).

Metrics cross the ProcessPoolExecutor boundary as plain dicts: each pool
worker returns a serializable per-render metrics snapshot next to its eFP
and the parent merges them into its own ``Recorder`` (see
``population.study``), so aggregate counters are identical at any worker
count.
"""

from .events import (EVENT_KINDS, EVENT_SCHEMA, EventLog,  # noqa: F401
                     canonical_events, make_event, normalize_events,
                     read_events)
from .recorder import Histogram, NullRecorder, NULL_RECORDER, Recorder  # noqa: F401
from .profiler import NodeProfiler, current_node_profiler, profile_nodes  # noqa: F401
from .progress import ProgressMeter  # noqa: F401

_REPORT_EXPORTS = ("build_report", "validate_report", "render_report")


def __getattr__(name):
    # Lazy so `python -m repro.obs.report` doesn't import the module twice
    # (once here, once as __main__ — runpy warns about that).
    if name in _REPORT_EXPORTS:
        from . import report
        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Histogram",
    "NodeProfiler",
    "profile_nodes",
    "current_node_profiler",
    "build_report",
    "validate_report",
    "render_report",
    "EventLog",
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "make_event",
    "read_events",
    "normalize_events",
    "canonical_events",
    "ProgressMeter",
]
