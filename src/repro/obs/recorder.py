"""Recorder: spans, counters, histograms — and its null object.

The Recorder is the single mutable sink for everything the pipeline wants
to measure. Spans use monotonic ``time.perf_counter`` timestamps relative
to the recorder's epoch, nest through an explicit stack (so exports carry
parent ids), and are recorded on close. Counters are plain float sums.
Histograms are sparse base-2 exponential buckets anchored at 1 µs, which
makes them mergeable by addition — the property the process-pool merge
protocol relies on.

``NullRecorder`` is the off switch: every method is a no-op and ``span``
returns one shared, preallocated handle, so a disabled study performs a
constant number of cheap calls per run and zero allocations per render.
"""
from __future__ import annotations

import math
import time

from .events import make_event


class Histogram:
    """Sparse exponential histogram: bucket ``i`` holds values in
    ``(BASE_S * 2**(i-1), BASE_S * 2**i]`` (bucket 0 is ``<= BASE_S``)."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    BASE_S = 1e-6
    MAX_BUCKET = 63  # BASE_S * 2**63 ≈ 292k years; everything clamps below

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}

    @classmethod
    def bucket_index(cls, value: float) -> int:
        if value <= cls.BASE_S:
            return 0
        return min(cls.MAX_BUCKET, math.ceil(math.log2(value / cls.BASE_S)))

    @classmethod
    def bucket_upper_bound(cls, index: int) -> float:
        return cls.BASE_S * (2.0 ** index)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = self.bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def approx_quantile(self, q: float) -> float:
        """Quantile estimate, exact for min/max (q<=0 / q>=1).

        Interior quantiles interpolate to the *geometric midpoint* of the
        winning bucket's bounds — ``sqrt(lower * upper)``, i.e. half an
        octave below the upper bound — instead of pessimistically
        reporting the bound itself, then clamp into ``[min, max]``. For
        exponential buckets the midpoint halves the worst-case relative
        error (from 2x to sqrt(2)x) without biasing one direction. The
        boundary ranks stay exact too: rank 1 *is* the tracked min and
        rank ``count`` *is* the tracked max, so e.g. q=0.99 over ten
        observations returns the max itself, not a bucket estimate.
        """
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.min or 0.0
        if q >= 1.0:
            return self.max or 0.0
        rank = math.ceil(q * self.count)
        if rank <= 1:
            return self.min or 0.0
        if rank >= self.count:
            return self.max or 0.0
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                midpoint = self.bucket_upper_bound(index) / math.sqrt(2.0)
                low = self.min if self.min is not None else 0.0
                high = self.max if self.max is not None else midpoint
                return min(max(midpoint, low), high)
        return self.max or 0.0

    def merge(self, other: "Histogram | dict") -> None:
        if isinstance(other, dict):
            other = Histogram.from_dict(other)
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        if self.min is None or (other.min is not None and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None and other.max > self.max):
            self.max = other.max
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        hist = cls()
        hist.count = int(payload["count"])
        hist.total = float(payload["sum"])
        hist.min = payload["min"]
        hist.max = payload["max"]
        hist.buckets = {int(i): int(n) for i, n in payload["buckets"].items()}
        return hist


class _SpanHandle:
    """One ``with recorder.span(...)`` activation; records itself on exit."""

    __slots__ = ("_recorder", "name", "attrs", "id", "parent_id",
                 "_start", "duration_s")

    def __init__(self, recorder: "Recorder", name: str, attrs: dict):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.id = -1
        self.parent_id: int | None = None
        self._start = 0.0
        self.duration_s = 0.0

    def set(self, **attrs) -> "_SpanHandle":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        rec = self._recorder
        self.id = rec._next_span_id
        rec._next_span_id += 1
        self.parent_id = rec._open_spans[-1] if rec._open_spans else None
        rec._open_spans.append(self.id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        rec = self._recorder
        rec._open_spans.pop()
        self.duration_s = end - self._start
        record = {
            "id": self.id,
            "name": self.name,
            "parent": self.parent_id,
            "start_s": self._start - rec._epoch,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        rec.spans.append(record)
        return False


class _NullSpan:
    """Shared no-op span handle: entering/exiting allocates nothing."""

    __slots__ = ()
    duration_s = 0.0

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """The live metrics sink. See module docstring for the data model."""

    enabled = True

    def __init__(self):
        self._epoch = time.perf_counter()
        self.spans: list[dict] = []
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        #: node_profile[stack_key][node_label] = {"seconds": s, "calls": n}
        self.node_profile: dict[str, dict[str, dict]] = {}
        #: the ordered event sequence (see repro.obs.events); each entry
        #: also streams to the attached EventLog the moment it lands
        self.events: list[dict] = []
        self._event_log = None
        self._open_spans: list[int] = []
        self._next_span_id = 0

    # -- spans --------------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanHandle:
        return _SpanHandle(self, name, attrs)

    # -- events --------------------------------------------------------------
    def event(self, kind: str, **fields) -> None:
        """Record one event (monotonic stamp rebased to this recorder's
        epoch, so events and spans share a clock)."""
        self._append_event(make_event(kind, epoch=self._epoch, **fields))

    def merge_event(self, event: dict) -> None:
        """Fold in an event made elsewhere (a pool worker's, shipped home
        inside a metrics dict): it keeps its own pid and clock stamps but
        takes the next local ``seq``."""
        self._append_event(dict(event))

    def _append_event(self, event: dict) -> None:
        event["seq"] = len(self.events)
        self.events.append(event)
        if self._event_log is not None:
            self._event_log.emit(event)

    def attach_event_log(self, log) -> None:
        """Stream every subsequent event to ``log`` (an
        ``repro.obs.events.EventLog``) as well as the in-memory list."""
        self._event_log = log

    def detach_event_log(self):
        log = self._event_log
        self._event_log = None
        return log

    # -- counters / histograms ----------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- per-node profiles ---------------------------------------------------
    def record_node_profile(self, stack_key: str, seconds: dict,
                            calls: dict | None = None) -> None:
        per_stack = self.node_profile.setdefault(stack_key, {})
        for label, spent in seconds.items():
            entry = per_stack.setdefault(label, {"seconds": 0.0, "calls": 0})
            entry["seconds"] += float(spent)
            entry["calls"] += int(calls[label]) if calls else 1

    # -- (de)serialization / merge -------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-serializable copy of everything recorded so far."""
        return {
            "enabled": True,
            "spans": [dict(s) for s in self.spans],
            "events": [dict(e) for e in self.events],
            "counters": dict(self.counters),
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
            "node_profile": {
                stack: {label: dict(entry) for label, entry in nodes.items()}
                for stack, nodes in self.node_profile.items()
            },
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a worker snapshot in: counters/histograms/profiles add;
        foreign spans are appended as-is (their clocks are not rebased)."""
        for name, value in snap.get("counters", {}).items():
            self.count(name, value)
        for name, payload in snap.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge(payload)
        for stack, nodes in snap.get("node_profile", {}).items():
            self.record_node_profile(
                stack,
                {label: entry["seconds"] for label, entry in nodes.items()},
                {label: entry["calls"] for label, entry in nodes.items()},
            )
        self.spans.extend(dict(s) for s in snap.get("spans", []))
        for event in snap.get("events", []):
            self.merge_event(event)


class NullRecorder:
    """Null object standing in for Recorder when observability is off.

    Every method is a no-op; ``span`` hands back one preallocated handle.
    ``enabled`` is the switch callers branch on to skip per-render work
    entirely (see ``population.study``).
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, kind: str, **fields) -> None:
        pass

    def merge_event(self, event: dict) -> None:
        pass

    def attach_event_log(self, log) -> None:
        pass

    def detach_event_log(self):
        return None

    def count(self, name: str, value: float = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def record_node_profile(self, stack_key: str, seconds: dict,
                            calls: dict | None = None) -> None:
        pass

    def snapshot(self) -> dict:
        return {"enabled": False, "spans": [], "events": [], "counters": {},
                "histograms": {}, "node_profile": {}}

    def merge_snapshot(self, snap: dict) -> None:
        pass


NULL_RECORDER = NullRecorder()
