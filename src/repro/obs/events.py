"""repro.obs.events — the crash-safe, append-only study event log.

Where the recorder keeps *aggregates* (spans, counters, histograms), the
event log keeps the *sequence*: every retry, pool rebuild, checkpoint
write, cache quarantine and batch render lands as one JSONL line the
moment it happens. That ordering is exactly what aggregate metrics throw
away — and exactly what debugging a sharded million-user run (or proving
the measurement infrastructure did not perturb the fingerprints it
measured) requires.

Data model
----------
One event is one flat JSON object:

    {"schema": 1, "seq": 12, "kind": "checkpoint.write",
     "t_wall_s": 1754650000.12, "t_mono_s": 3.5041, "pid": 4242, ...}

``schema`` versions the record shape, ``kind`` is drawn from the closed
``EVENT_KINDS`` registry (an unknown kind is a bug, caught at emit *and*
at validation), ``seq`` is the recorder-assigned append index,
``t_mono_s`` is monotonic time relative to the recorder epoch (the same
clock spans use, so traces line up), ``t_wall_s`` is wall time, ``pid``
identifies the emitting process. Everything else is the event's payload.

Crash safety
------------
``EventLog`` appends one line per event and flushes it, so a SIGKILL can
tear at most the final line. Opening a log repairs that torn tail the
way checkpoints are repaired: the fragment is quarantined to
``<path>.corrupt`` and appending resumes on a clean line boundary.
``read_events`` tolerates a torn tail (the events before it are intact)
but reports it, so ``repro.obs.report --check`` can refuse a report
whose sidecar lost events.

Determinism
-----------
Inline runs (workers=0) emit events in plan order, so two identical runs
produce byte-identical logs after ``normalize_events`` strips the
volatile fields (timestamps, pid, measured walls). Pooled runs complete
jobs in scheduler order; ``canonical_events`` additionally drops ``seq``
and sorts by content, giving the order-free form that is byte-identical
at any worker count.

Workers cannot append to the parent's log; their events ride home inside
the metrics dict next to the eFPs (see ``population.study``) and are
merged seq-ordered by the parent — the same boundary-crossing protocol
metrics snapshots use.
"""
from __future__ import annotations

import json
import os
import time

EVENT_SCHEMA = 1

#: the closed registry of event kinds (schema-versioned: extending it is
#: an EVENT_SCHEMA-visible change)
EVENT_KINDS = frozenset({
    # study lifecycle
    "study.start", "study.end",
    "phase.start", "phase.end",
    # render cache
    "cache.miss", "cache.disk_load", "cache.corrupt_quarantine",
    "cache.stale_prune",
    # checkpointing
    "checkpoint.write", "checkpoint.torn_write", "checkpoint.resume",
    "checkpoint.corrupt_quarantine",
    # supervised execution
    "job.failed", "job.retry", "job.bisected", "job.quarantined",
    "pool.rebuild", "pool.inline_fallback",
    # render workers (shipped across the pool boundary)
    "render.batch", "render.class",
    # sharded studies
    "shard.start", "shard.end", "shard.resume", "shard.quarantine",
    # online matching service (repro.service)
    "service.start", "service.stop",
    "ingest.batch", "ingest.shed",
    "lookup.deadline_miss", "lookup.degraded",
    "breaker.open", "breaker.half_open", "breaker.close",
    "wal.torn_tail", "snapshot.write", "snapshot.corrupt_quarantine",
    "replay.start", "replay.end",
})

#: reserved top-level record fields a payload may not shadow
RESERVED_FIELDS = frozenset({"schema", "seq", "kind", "t_wall_s",
                             "t_mono_s", "pid"})

#: fields stripped by ``normalize_events``: process identity, clocks, and
#: measured durations — everything that legitimately varies between two
#: runs of the same seeded study
VOLATILE_FIELDS = frozenset({"t_wall_s", "t_mono_s", "pid",
                             "wall_s", "delay_s"})


def make_event(kind: str, *, epoch: float = 0.0, **fields) -> dict:
    """Build one event record (no ``seq`` — the recorder assigns that on
    append). ``epoch`` rebases the monotonic stamp; pool workers pass 0
    (their clock is not synchronized with the parent's and is rebased at
    trace-export time instead)."""
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown event kind {kind!r} "
                         f"(EVENT_SCHEMA {EVENT_SCHEMA} kinds: "
                         f"{sorted(EVENT_KINDS)})")
    if not RESERVED_FIELDS.isdisjoint(fields):
        clash = sorted(RESERVED_FIELDS & set(fields))
        raise ValueError(f"event payload may not shadow reserved "
                         f"field(s) {clash}")
    event = {
        "schema": EVENT_SCHEMA,
        "kind": kind,
        "t_wall_s": time.time(),
        "t_mono_s": time.perf_counter() - epoch,
        "pid": os.getpid(),
    }
    event.update(fields)
    return event


class EventLog:
    """Append-only JSONL sink. One ``write + flush`` per event: after a
    SIGKILL the OS page cache still holds every flushed line, so at most
    the in-flight line is torn — and opening the log quarantines that
    fragment to ``<path>.corrupt`` before appending anything new."""

    def __init__(self, path: str):
        self.path = path
        self.torn_tail_repaired = False
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._repair_torn_tail()
        self._fh = open(path, "a", encoding="utf-8")

    def _repair_torn_tail(self) -> None:
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return
        if not data:
            return
        # keep the longest prefix of intact JSON lines; everything after
        # it (a line cut mid-write, or bytes with no trailing newline) is
        # the torn tail a crash left behind
        good_end = 0
        start = 0
        while start < len(data):
            newline = data.find(b"\n", start)
            if newline < 0:
                break
            line = data[start:newline]
            try:
                json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break
            good_end = newline + 1
            start = newline + 1
        if good_end == len(data):
            return
        with open(self.path + ".corrupt", "ab") as fh:
            fh.write(data[good_end:])
        with open(self.path, "r+b") as fh:
            fh.truncate(good_end)
        self.torn_tail_repaired = True

    def emit(self, event: dict) -> None:
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_events(path: str) -> tuple[list[dict], list[str]]:
    """Parse an event-log file; return ``(events, problems)``.

    A torn final line (no trailing newline, or unparseable last line of a
    file that was being appended when the process died) is *tolerated* —
    the events before it are returned — but reported as a problem so
    validators can decide whether torn is acceptable. Any other
    unparseable line, an unknown ``kind``, or a foreign ``schema`` is a
    hard problem.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    events: list[dict] = []
    problems: list[str] = []
    raw_lines = data.split(b"\n")
    # a file ending in "\n" splits to a trailing empty chunk; drop it
    if raw_lines and raw_lines[-1] == b"":
        raw_lines.pop()
    last = len(raw_lines) - 1
    for i, raw in enumerate(raw_lines):
        torn_candidate = (i == last)
        try:
            event = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            if torn_candidate:
                problems.append(f"torn tail at line {i + 1} "
                                f"({len(raw)} bytes, unparseable)")
            else:
                problems.append(f"corrupt event at line {i + 1}")
            continue
        if not isinstance(event, dict):
            problems.append(f"event at line {i + 1} is not an object")
            continue
        if event.get("schema") != EVENT_SCHEMA:
            problems.append(f"event at line {i + 1} has schema "
                            f"{event.get('schema')!r} "
                            f"(expected {EVENT_SCHEMA})")
            continue
        if event.get("kind") not in EVENT_KINDS:
            problems.append(f"event at line {i + 1} has unknown kind "
                            f"{event.get('kind')!r}")
            continue
        events.append(event)
    return events, problems


def normalize_events(events: list[dict]) -> list[dict]:
    """Strip the volatile fields (clocks, pid, measured walls), keeping
    ``seq`` and order — the deterministic view of an inline run."""
    return [{k: v for k, v in event.items() if k not in VOLATILE_FIELDS}
            for event in events]


def canonical_events(events: list[dict]) -> list[dict]:
    """Order-free deterministic view: normalized, ``seq`` dropped, sorted
    by content. Two pooled runs of the same seeded study agree on this
    form at any worker count — scheduling only permutes completion
    order, never the set of events."""
    stripped = [{k: v for k, v in event.items()
                 if k not in VOLATILE_FIELDS and k != "seq"}
                for event in events]
    return sorted(stripped,
                  key=lambda e: (e.get("kind", ""),
                                 json.dumps(e, sort_keys=True)))
