"""Crash-safe JSON/text writes shared across the repo.

Every artefact this codebase persists — render-cache files, study
datasets, run reports, analysis reports — is a single JSON document that
some later stage trusts completely. A bare ``open(path, "w")`` can leave
a torn file if the process dies mid-dump; the reader then sees invalid
JSON (best case) or a silently truncated payload (worst case).

``atomic_write_text`` is the one writer: it dumps to a same-directory
temp file, flushes and fsyncs it, renames it over the target with
``os.replace``, then fsyncs the *containing directory*. Readers observe
either the complete old file or the complete new one, never a partial
write — even across a crash at any point of the sequence. The temp file
is unlinked on failure, so an aborted write leaves no stray ``*.tmp``
behind either.

The directory fsync closes the classic rename durability gap: fsyncing
the temp file makes its *contents* durable, but the rename itself lives
in the directory entry — until the directory is synced, a power loss can
resurface the old file (or, for a first write, no file at all) even
though ``os.replace`` returned. Every writer here pays that one extra
fsync; ``fsync_dir`` is exported for append-style writers (WALs, event
logs) that need their newly created file's *existence* to be durable.
"""
from __future__ import annotations

import errno
import json
import os
import tempfile


def fsync_dir(directory: str) -> None:
    """fsync a directory so renames/creations inside it are durable.

    A directory that cannot be opened (platforms without directory file
    descriptors, e.g. Windows) or whose filesystem rejects directory
    fsync (EINVAL/ENOTSUP on some network mounts) is skipped — there is
    nothing stronger available there. Any *real* fsync failure (EIO, …)
    propagates: returning normally would claim a durability the kernel
    just refused to provide.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return  # no directory fds on this platform; nothing to sync
    try:
        os.fsync(fd)
    except OSError as exc:
        if exc.errno not in (errno.EINVAL, errno.ENOTSUP):
            raise
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text`` (creating directories)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        try:
            fh = os.fdopen(fd, "w", encoding=encoding)
        except BaseException:
            os.close(fd)  # fdopen never took ownership of the descriptor
            raise
        with fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(directory)
    except BaseException:
        # best-effort cleanup: never mask the original failure — a torn
        # write that ALSO cannot unlink its temp file must still raise
        # the write error, not the unlink error
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_chunks(path: str, chunks, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with the concatenation of ``chunks``.

    Same crash-safety contract as ``atomic_write_text`` — readers observe
    the complete old file or the complete new one — but the content
    arrives as an iterable of string chunks written straight to the temp
    file, so the full document never has to exist in memory. This is how
    large streamed artefacts (study datasets, shard record files) keep
    their peak RSS at one-record size instead of one-file size.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        try:
            fh = os.fdopen(fd, "w", encoding=encoding)
        except BaseException:
            os.close(fd)  # fdopen never took ownership of the descriptor
            raise
        with fh:
            for chunk in chunks:
                fh.write(chunk)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, payload, *, indent: int | None = None,
                      sort_keys: bool = False) -> None:
    """Atomically write ``payload`` as JSON (newline-terminated).

    Serialization happens *before* any file is touched, so a payload that
    fails to encode cannot clobber an existing file — the target keeps
    its previous complete contents.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_text(path, text)
