"""Paper Tables 2–5: the cross-vector comparison battery.

Where ``repro.analysis.report`` measures each vector in isolation, this
module reproduces the paper's *comparative* results:

  Table 2  diversity of the audio vectors and their combined tuple.
  Table 3  diversity of the comparator vectors (canvas, fonts,
           useragent, mathjs) and the all-vector combination.
  additive value — how much entropy audio adds on top of each
           comparator (the paper's Canvas+Audio ≈ +9.6%,
           UA+Audio ≈ +9.7% headline).
  match scores — re-identification consistency when a user returns:
           train on the first ``s`` iterations, test on the next ``s``
           (the paper reports ≥ ~0.98 for s >= 2).
  Table 4  the 528-user follow-up: Math-JS diversity vs DC diversity
           (the math library explains only part of the audio signal).
  Table 5  the same attribution per platform: distinct DC vs distinct
           Math-JS fingerprints within each OS.

Same determinism contract as the analysis report: the document is a
pure function of the dataset, every float is rounded to
``FLOAT_DECIMALS``, serialization is sorted — the same dataset always
produces byte-identical table reports.
"""
from __future__ import annotations

import json

import numpy as np

from ..obs import NULL_RECORDER
from ..vectors.registry import get_vector
from .collation import UnionFind, collate, combined_user_ids, series_edges
from .entropy import FLOAT_DECIMALS, distribution, shannon_entropy

__all__ = [
    "TABLES_KIND", "TABLES_FORMAT", "MATCH_SPLITS", "classify_vectors",
    "match_score", "build_tables_report", "dumps_tables_report",
    "validate_tables_report", "render_tables_report",
]

TABLES_KIND = "repro.analysis.tables"
TABLES_FORMAT = 1

#: the revisit depths the match-score table sweeps (paper's s axis)
MATCH_SPLITS = (1, 2, 3, 5)


def _round(value: float) -> float:
    return round(float(value), FLOAT_DECIMALS)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def classify_vectors(names) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Split vector names into (audio, comparator) battery halves.

    Raises ``UnknownVectorError`` on any name the registry has never
    seen — the tables CLI surfaces that as a named error, not a
    traceback.
    """
    audio, comparator = [], []
    for name in names:
        vector = get_vector(name)
        if vector.kind == "comparator":
            comparator.append(name)
        else:
            audio.append(name)
    return tuple(audio), tuple(comparator)


def match_score(codes: np.ndarray, s: int) -> float | None:
    """Fraction of users whose revisit fingerprints stay linkable.

    Train on each user's first ``s`` iterations (collating co-observed
    eFPs into components, exactly like the full-study collation), then
    test on the next ``s``: a user *matches* iff at least one test eFP
    was already seen in training and every previously-seen test eFP
    resolves to the user's own training component. Returns None when the
    series is too short to split (needs ``2 s`` iterations).
    """
    users, iterations = codes.shape
    if users == 0 or iterations < 2 * s:
        return None
    train = codes[:, :s]
    test = codes[:, s:2 * s]
    uf = UnionFind(int(codes.max()) + 1)
    uf.union_edges(series_edges(train))
    roots = uf.roots()
    seen = np.zeros(roots.shape[0], dtype=bool)
    seen[train.ravel()] = True
    own = roots[train[:, 0]]
    matched = 0
    for u in range(users):
        revisits = [e for e in test[u].tolist() if seen[e]]
        if revisits and all(int(roots[e]) == int(own[u]) for e in revisits):
            matched += 1
    return matched / users


def _battery_section(collations, names) -> dict:
    """One diversity table: per-vector collated distributions plus the
    combined per-user tuple row."""
    section = {
        "vectors": {name: distribution(
            collations[name].user_components.tolist()) for name in names},
    }
    section["combined"] = distribution(combined_user_ids(collations, names)) \
        if names else None
    return section


def _additive_value(collations, audio_names, comparator_names):
    """Entropy each comparator gains when paired with the combined audio
    fingerprint (the paper's additive-value analysis)."""
    if not audio_names or not comparator_names:
        return None
    audio_ids = combined_user_ids(collations, audio_names)
    pairs = []
    for base in comparator_names:
        base_ids = collations[base].user_components.tolist()
        base_bits = shannon_entropy(base_ids)
        pair_bits = shannon_entropy(
            [(b, a) for b, a in zip(base_ids, audio_ids)])
        pairs.append({
            "base": base,
            "base_entropy_bits": _round(base_bits),
            "with_audio_entropy_bits": _round(pair_bits),
            "delta_bits": _round(pair_bits - base_bits),
            "delta_pct": (_round(100.0 * (pair_bits - base_bits) / base_bits)
                          if base_bits > 0 else None),
        })
    return {"audio_vectors": list(audio_names), "pairs": pairs}


def _match_scores(collations, audio_names, iterations):
    """The revisit-consistency sweep over ``MATCH_SPLITS``; only splits
    the series actually covers (2 s <= iterations) are emitted."""
    splits = [s for s in MATCH_SPLITS if 2 * s <= iterations]
    if not audio_names or not splits:
        return None
    scores = {}
    for name in audio_names:
        codes = collations[name].codes
        scores[name] = {str(s): _round(match_score(codes, s))
                        for s in splits}
    return {"splits": splits, "scores": scores}


def _table4(collations):
    """Math-JS vs DC diversity (the 528-user follow-up's attribution)."""
    if "dc" not in collations or "mathjs" not in collations:
        return None
    dc = distribution(collations["dc"].user_components.tolist())
    mathjs = distribution(collations["mathjs"].user_components.tolist())
    ratio = (dc["entropy_bits"] / mathjs["entropy_bits"]
             if mathjs["entropy_bits"] > 0 else None)
    return {
        "dc": dc,
        "mathjs": mathjs,
        "dc_over_mathjs_entropy": _round(ratio) if ratio is not None else None,
    }


def _table5(dataset, collations):
    """Per-platform distinct DC vs distinct Math-JS fingerprints."""
    if "dc" not in collations or "mathjs" not in collations:
        return None
    dc = collations["dc"]
    mathjs = collations["mathjs"]
    os_of = {user["id"]: user.get("os", "unknown") for user in dataset.users}
    groups: dict[str, list[int]] = {}
    for index, user_id in enumerate(dc.user_ids):
        groups.setdefault(os_of.get(user_id, "unknown"), []).append(index)
    rows = []
    for platform in sorted(groups):
        indexes = np.array(groups[platform], dtype=np.int64)
        rows.append({
            "platform": platform,
            "users": int(indexes.shape[0]),
            "dc_distinct": int(
                np.unique(dc.user_components[indexes]).shape[0]),
            "mathjs_distinct": int(
                np.unique(mathjs.user_components[indexes]).shape[0]),
        })
    return rows


def build_tables_report(dataset, collations=None,
                        recorder=NULL_RECORDER) -> dict:
    """Collate (unless pre-collated) and assemble the tables document."""
    audio_names, comparator_names = classify_vectors(dataset.vectors)
    if collations is None:
        collations = collate(dataset, recorder=recorder)
    with recorder.span("tables"):
        all_names = audio_names + comparator_names
        return {
            "kind": TABLES_KIND,
            "format": TABLES_FORMAT,
            "dataset": {
                "seed": dataset.seed,
                "user_count": dataset.user_count,
                "iterations": dataset.iterations,
                "vectors": list(dataset.vectors),
            },
            "audio_vectors": list(audio_names),
            "comparator_vectors": list(comparator_names),
            "table2_audio": _battery_section(collations, audio_names),
            "table3_comparators": _battery_section(collations,
                                                   comparator_names),
            "combined_all": (distribution(
                combined_user_ids(collations, all_names))
                if all_names else None),
            "additive_value": _additive_value(collations, audio_names,
                                              comparator_names),
            "match_scores": _match_scores(collations, audio_names,
                                          dataset.iterations),
            "table4_mathjs": _table4(collations),
            "table5_platforms": _table5(dataset, collations),
        }


def dumps_tables_report(report: dict) -> str:
    """The canonical byte encoding (what the CLI writes and CI diffs)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


# -- validation (the CI schema check) ----------------------------------------

def validate_tables_report(payload) -> list[str]:
    """Return the list of schema/integrity problems (empty == valid)."""
    from .report import _check_distribution

    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["tables report is not a JSON object"]
    if payload.get("kind") != TABLES_KIND:
        problems.append(
            f"kind must be {TABLES_KIND!r}, got {payload.get('kind')!r}")
    if payload.get("format") != TABLES_FORMAT:
        problems.append(
            f"format must be {TABLES_FORMAT}, got {payload.get('format')!r}")

    dataset = payload.get("dataset")
    if not isinstance(dataset, dict):
        problems.append("dataset must be an object")
        dataset = {}
    for key in ("seed", "user_count", "iterations"):
        if not _is_number(dataset.get(key)):
            problems.append(f"dataset.{key} must be numeric")

    audio = payload.get("audio_vectors")
    comparator = payload.get("comparator_vectors")
    if not isinstance(audio, list) or not audio:
        problems.append("audio_vectors must be a non-empty array")
        audio = []
    if not isinstance(comparator, list):
        problems.append("comparator_vectors must be an array")
        comparator = []
    if set(audio) & set(comparator):
        problems.append("audio_vectors and comparator_vectors overlap")
    declared = dataset.get("vectors")
    if isinstance(declared, list) \
            and sorted(declared) != sorted(audio + comparator):
        problems.append("audio+comparator vectors do not cover "
                        "dataset.vectors")

    for section_key, names in (("table2_audio", audio),
                               ("table3_comparators", comparator)):
        section = payload.get(section_key)
        if not isinstance(section, dict):
            problems.append(f"{section_key} must be an object")
            continue
        vectors = section.get("vectors")
        if not isinstance(vectors, dict) or sorted(vectors) != sorted(names):
            problems.append(
                f"{section_key}.vectors keys must match the declared names")
            vectors = {}
        for name, dist in vectors.items():
            _check_distribution(problems, f"{section_key}.vectors[{name!r}]",
                                dist)
        combined = section.get("combined")
        if names and combined is None:
            problems.append(f"{section_key}.combined missing")
        elif combined is not None:
            _check_distribution(problems, f"{section_key}.combined", combined)
            # combining vectors can only refine the partition
            for name, dist in vectors.items():
                if isinstance(dist, dict) \
                        and _is_number(dist.get("entropy_bits")) \
                        and _is_number(combined.get("entropy_bits")) \
                        and combined["entropy_bits"] \
                        < dist["entropy_bits"] - 1e-9:
                    problems.append(
                        f"{section_key}.combined entropy below component "
                        f"{name!r} (refinement invariant violated)")

    combined_all = payload.get("combined_all")
    if combined_all is not None:
        _check_distribution(problems, "combined_all", combined_all)

    additive = payload.get("additive_value")
    if additive is not None:
        pairs = additive.get("pairs") if isinstance(additive, dict) else None
        if not isinstance(pairs, list) or not pairs:
            problems.append("additive_value.pairs must be a non-empty array")
            pairs = []
        for entry in pairs:
            if not isinstance(entry, dict) \
                    or not isinstance(entry.get("base"), str) \
                    or not _is_number(entry.get("base_entropy_bits")) \
                    or not _is_number(entry.get("with_audio_entropy_bits")):
                problems.append("additive_value.pairs entry malformed")
                continue
            if entry["with_audio_entropy_bits"] \
                    < entry["base_entropy_bits"] - 1e-9:
                problems.append(
                    f"additive_value[{entry['base']!r}]: pairing with audio "
                    "lowered entropy (monotonicity violated)")

    scores = payload.get("match_scores")
    if scores is not None:
        table = scores.get("scores") if isinstance(scores, dict) else None
        if not isinstance(table, dict) or not table:
            problems.append("match_scores.scores must be a non-empty object")
            table = {}
        for name, per_split in table.items():
            if not isinstance(per_split, dict):
                problems.append(f"match_scores.scores[{name!r}] must be "
                                "an object")
                continue
            for split, value in per_split.items():
                if not _is_number(value) or not 0.0 <= value <= 1.0:
                    problems.append(
                        f"match_scores.scores[{name!r}][{split}] out of "
                        "[0, 1]")

    table4 = payload.get("table4_mathjs")
    if table4 is not None:
        if not isinstance(table4, dict):
            problems.append("table4_mathjs must be an object")
        else:
            _check_distribution(problems, "table4_mathjs.dc",
                                table4.get("dc"))
            _check_distribution(problems, "table4_mathjs.mathjs",
                                table4.get("mathjs"))

    table5 = payload.get("table5_platforms")
    if table5 is not None:
        if not isinstance(table5, list) or not table5:
            problems.append("table5_platforms must be a non-empty array")
            table5 = []
        for row in table5:
            if not isinstance(row, dict) \
                    or not isinstance(row.get("platform"), str) \
                    or not all(isinstance(row.get(k), int)
                               and not isinstance(row.get(k), bool)
                               and row.get(k) >= 0
                               for k in ("users", "dc_distinct",
                                         "mathjs_distinct")):
                problems.append("table5_platforms row malformed")
                continue
            for key in ("dc_distinct", "mathjs_distinct"):
                if row[key] > row["users"]:
                    problems.append(
                        f"table5_platforms[{row['platform']!r}].{key} "
                        "exceeds the platform's user count")
    return problems


# -- human-readable rendering -------------------------------------------------

def render_tables_report(payload: dict) -> str:
    """Render the tables report as the paper-style comparison tables."""
    from ..obs.report import _table  # deferred, same reason as report.py

    out: list[str] = []
    dataset = payload.get("dataset", {})
    out.append("== tables report (paper Tables 2-5) ==")
    out.append("dataset: " + ", ".join(f"{k}={v}" for k, v in dataset.items()))

    for title, key in (("table 2 — audio vectors", "table2_audio"),
                       ("table 3 — comparator vectors",
                        "table3_comparators")):
        section = payload.get(key) or {}
        rows = []
        for name, dist in (section.get("vectors") or {}).items():
            rows.append([name, str(dist["distinct"]),
                         f"{dist['entropy_bits']:.4f}",
                         f"{dist['normalized_entropy']:.4f}",
                         f"{dist['unique_fraction']:.4f}"])
        combined = section.get("combined")
        if combined:
            rows.append(["combined", str(combined["distinct"]),
                         f"{combined['entropy_bits']:.4f}",
                         f"{combined['normalized_entropy']:.4f}",
                         f"{combined['unique_fraction']:.4f}"])
        out.append("")
        out.append(title + ":")
        out.append(_table(["vector", "distinct", "H_bits", "e_norm",
                           "unique_frac"], rows))

    additive = payload.get("additive_value")
    if additive:
        out.append("")
        out.append("additive value of audio over each comparator:")
        rows = [[entry["base"], f"{entry['base_entropy_bits']:.4f}",
                 f"{entry['with_audio_entropy_bits']:.4f}",
                 f"{entry['delta_bits']:.4f}",
                 ("-" if entry.get("delta_pct") is None
                  else f"{entry['delta_pct']:+.2f}%")]
                for entry in additive["pairs"]]
        out.append(_table(["base", "H_base", "H_base+audio", "delta_bits",
                           "delta_pct"], rows))

    scores = payload.get("match_scores")
    if scores:
        out.append("")
        out.append("match scores (train s iterations, test next s):")
        splits = [str(s) for s in scores["splits"]]
        rows = [[name] + [f"{per_split[s]:.4f}" for s in splits]
                for name, per_split in scores["scores"].items()]
        out.append(_table(["vector"] + [f"s={s}" for s in splits], rows))

    table4 = payload.get("table4_mathjs")
    if table4:
        out.append("")
        out.append("table 4 — math library vs DC attribution:")
        rows = [["dc", str(table4["dc"]["distinct"]),
                 f"{table4['dc']['entropy_bits']:.4f}"],
                ["mathjs", str(table4["mathjs"]["distinct"]),
                 f"{table4['mathjs']['entropy_bits']:.4f}"]]
        out.append(_table(["vector", "distinct", "H_bits"], rows))

    table5 = payload.get("table5_platforms")
    if table5:
        out.append("")
        out.append("table 5 — per-platform DC vs Math-JS distinct counts:")
        rows = [[row["platform"], str(row["users"]),
                 str(row["dc_distinct"]), str(row["mathjs_distinct"])]
                for row in table5]
        out.append(_table(["platform", "users", "dc", "mathjs"], rows))
    out.append("")
    return "\n".join(out)
