"""repro.analysis — fingerprint collation + entropy analysis (paper §4).

Turns a rendered ``StudyDataset`` into the paper's measurement results:

  collation   the fingerprint graph (nodes = distinct eFPs, edges =
              co-observation within one user's series) collapsed into
              stable collated fingerprint ids via a vectorized,
              iterative union-find.
  entropy     Shannon/normalized entropy, anonymity-set distributions
              and raw-vs-collated stability, per vector and combined.
  report      a deterministic, schema-versioned JSON report; validated
              by ``python -m repro.obs.report --check`` and rendered as
              the paper-style tables.

CLI: ``python -m repro.analysis dataset.json --out report.json``.
"""

from .collation import (UnionFind, VectorCollation, collate,  # noqa: F401
                        collate_vector, combined_user_ids, series_edges)
from .entropy import (distribution, normalized_entropy,  # noqa: F401
                      shannon_entropy, stability, vector_metrics)
from .report import (ANALYSIS_FORMAT, ANALYSIS_KIND,  # noqa: F401
                     build_analysis_report, dumps_analysis_report,
                     render_analysis_report, validate_analysis_report)
from .shards import (SHARD_REPORT_FORMAT, SHARD_REPORT_KIND,  # noqa: F401
                     build_shard_report, dumps_shard_or_merged,
                     merge_shard_reports, render_shard_report,
                     validate_shard_report)
from .tables import (MATCH_SPLITS, TABLES_FORMAT, TABLES_KIND,  # noqa: F401
                     build_tables_report, classify_vectors,
                     dumps_tables_report, match_score,
                     render_tables_report, validate_tables_report)

__all__ = [
    "UnionFind", "VectorCollation", "collate", "collate_vector",
    "combined_user_ids", "series_edges",
    "distribution", "normalized_entropy", "shannon_entropy", "stability",
    "vector_metrics",
    "ANALYSIS_FORMAT", "ANALYSIS_KIND", "build_analysis_report",
    "dumps_analysis_report", "render_analysis_report",
    "validate_analysis_report",
    "SHARD_REPORT_FORMAT", "SHARD_REPORT_KIND", "build_shard_report",
    "dumps_shard_or_merged", "merge_shard_reports", "render_shard_report",
    "validate_shard_report",
    "MATCH_SPLITS", "TABLES_FORMAT", "TABLES_KIND", "build_tables_report",
    "classify_vectors", "dumps_tables_report", "match_score",
    "render_tables_report", "validate_tables_report",
]
