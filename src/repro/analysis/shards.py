"""Shard-mergeable analysis: external-memory collation at million-user scale.

The monolithic pipeline (``build_analysis_report``) needs the whole
``StudyDataset`` in memory. At the north star's scale that is exactly
the thing we cannot have — so this module splits the analysis into a
*mergeable* form built on one observation: every quantity in the
analysis report is a label-free function of **count multisets** (per-eFP
observation counts, per-component user counts, per-tuple user counts)
plus a handful of per-user scalars that sum. Nothing in the report needs
per-user rows once those counts exist.

A *shard report* is therefore O(distinct eFPs + distinct tuples), not
O(users). Per vector it carries:

  labels         the shard's distinct eFPs (shard-local interning order)
  observations   per-label total occurrence counts
  first          per-label first-observation (one per user) counts
  edges          the shard's deduplicated co-observation star edges, as
                 label-index pairs
  stability      summed/maxed per-user scalars (fickleness, collapse)

plus one cross-vector ``combined.tuples`` counter (per-user tuples of
first-observed eFPs, as label indices).

``merge_shard_reports`` re-interns labels globally, sums the count
vectors, unions the edge sets (unordered label pairs dedupe exactly the
way the monolithic ``np.unique`` pass does), runs the same array-backed
union-find over the union, and re-assembles a **byte-identical**
monolithic analysis report:

- counts are integers, so sums are exact and associative;
- every float in a report is ``_round``-ed from a count multiset that
  matches the monolithic one element-for-element, and ``_sorted_counts``
  sorts before reducing, so the IEEE-754 partial sums agree too;
- per-user scalars (``raw_mean_distinct_efps`` etc.) merge as exact
  integer sums divided once at the end — the same float64 division
  ``np.mean`` performs.

Merge order therefore cannot matter (pinned by tests), and
``python -m repro.analysis --merge shard_report_*.json`` of a full
partition produces the same bytes as analysing the monolithic dataset.
"""
from __future__ import annotations

import json
from collections import Counter

import numpy as np

from .collation import UnionFind, series_edges
from .entropy import _round, distribution
from .report import ANALYSIS_FORMAT, ANALYSIS_KIND

SHARD_REPORT_KIND = "repro.analysis.shard_report"
SHARD_REPORT_FORMAT = 1


def _is_count(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0


# -- building one shard's report ----------------------------------------------

def build_shard_report(dataset, manifest: dict) -> dict:
    """Reduce one shard's (shard-sized) dataset to its mergeable report.

    ``dataset`` holds only this shard's users (see
    ``population.shards.dataset_from_records``); ``manifest`` supplies
    the global study fingerprint and the shard range.
    """
    study = manifest["study"]
    shard = manifest["shard"]
    if dataset.user_count != shard["users"]:
        raise ValueError(
            f"dataset holds {dataset.user_count} users but the shard "
            f"manifest covers {shard['users']}")
    vectors = tuple(study["vectors"])
    sections = {}
    first_codes = []
    for name in vectors:
        codes, labels, _user_ids = dataset.intern(name)
        edges = series_edges(codes)
        # local collation: the stability collapse is *computed* per shard
        # (never assumed), exactly like the monolithic path — a user's
        # own series connects all their eFPs, so local and global
        # components agree on every per-user collapse scalar
        uf = UnionFind(len(labels))
        uf.union_edges(edges)
        roots = uf.roots()
        if len(labels):
            _, comp = np.unique(roots, return_inverse=True)
        else:
            comp = np.empty(0, dtype=np.int64)
        s = np.sort(codes, axis=1)
        raw_distinct = 1 + (s[:, 1:] != s[:, :-1]).sum(axis=1)
        cs = np.sort(comp[codes], axis=1) if codes.size \
            else np.empty_like(codes)
        coll_distinct = 1 + (cs[:, 1:] != cs[:, :-1]).sum(axis=1)
        fickle = raw_distinct > 1
        users = int(raw_distinct.shape[0])
        sections[name] = {
            "labels": labels,
            "observations": np.bincount(
                codes.ravel(), minlength=len(labels)).tolist(),
            "first": np.bincount(
                codes[:, 0], minlength=len(labels)).tolist(),
            "edges": edges.tolist(),
            "stability": {
                "users": users,
                "raw_fickle_users": int(fickle.sum()),
                "raw_distinct_sum": int(raw_distinct.sum()),
                "raw_max_distinct_efps": int(raw_distinct.max())
                if users else 0,
                "fickle_users_collapsed": int(
                    (coll_distinct[fickle] == 1).sum()),
                "collated_stable_users": int((coll_distinct == 1).sum()),
                "collated_max_ids_per_user": int(coll_distinct.max())
                if users else 0,
            },
        }
        first_codes.append(codes[:, 0])
    stacked = np.stack(first_codes, axis=1)
    tuple_counts = Counter(tuple(row) for row in stacked.tolist())
    tuples = sorted([list(key), int(count)]
                    for key, count in tuple_counts.items())
    return {
        "kind": SHARD_REPORT_KIND,
        "format": SHARD_REPORT_FORMAT,
        "study": dict(study),
        "shard": dict(shard),
        "engine_version": manifest["engine_version"],
        "vectors": sections,
        "combined": {"tuples": tuples},
    }


def dumps_shard_or_merged(report: dict) -> str:
    """The canonical byte encoding for shard reports *and* merged
    analysis reports — the same formula ``dumps_analysis_report`` uses,
    so a merged report is diffable byte-for-byte against the monolithic
    CLI's output."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


# -- validation ---------------------------------------------------------------

def validate_shard_report(payload) -> list[str]:
    """Return the list of schema/integrity problems (empty == valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["shard report is not a JSON object"]
    if payload.get("kind") != SHARD_REPORT_KIND:
        problems.append(f"kind must be {SHARD_REPORT_KIND!r}, "
                        f"got {payload.get('kind')!r}")
    if payload.get("format") != SHARD_REPORT_FORMAT:
        problems.append(f"format must be {SHARD_REPORT_FORMAT}, "
                        f"got {payload.get('format')!r}")

    study = payload.get("study")
    if not isinstance(study, dict):
        problems.append("study must be an object")
        study = {}
    for key in ("seed", "user_count", "iterations"):
        value = study.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"study.{key} must be an integer")
    declared = study.get("vectors")
    if not isinstance(declared, list) or not declared \
            or not all(isinstance(v, str) for v in declared):
        problems.append("study.vectors must be a non-empty array of strings")
        declared = []

    shard = payload.get("shard")
    if not isinstance(shard, dict):
        problems.append("shard must be an object")
        shard = {}
    users = None
    if all(_is_count(shard.get(k)) for k in ("start", "stop", "users")) \
            and shard["start"] < shard["stop"] \
            and shard["users"] == shard["stop"] - shard["start"]:
        users = shard["users"]
        if isinstance(study.get("user_count"), int) \
                and shard["stop"] > study["user_count"]:
            problems.append("shard range exceeds study.user_count")
    else:
        problems.append("shard must carry integer start/stop/users with "
                        "stop > start and users == stop - start")

    iterations = study.get("iterations")
    vectors = payload.get("vectors")
    if not isinstance(vectors, dict):
        problems.append("vectors must be an object")
        vectors = {}
    if declared and sorted(vectors) != sorted(declared):
        problems.append("vectors keys do not match study.vectors")

    for name, sec in vectors.items():
        where = f"vectors[{name!r}]"
        if not isinstance(sec, dict):
            problems.append(f"{where} must be an object")
            continue
        labels = sec.get("labels")
        if not isinstance(labels, list) \
                or not all(isinstance(l, str) for l in labels):
            problems.append(f"{where}.labels must be an array of strings")
            continue
        if len(set(labels)) != len(labels):
            problems.append(f"{where}.labels contains duplicates")
        n = len(labels)
        for key in ("observations", "first"):
            counts = sec.get(key)
            if not isinstance(counts, list) or len(counts) != n \
                    or not all(_is_count(c) for c in counts):
                problems.append(f"{where}.{key} must be {n} non-negative "
                                "integers (one per label)")
                counts = None
            elif users is not None:
                total = sum(counts)
                if key == "first" and total != users:
                    problems.append(
                        f"{where}.first sums to {total}, expected one "
                        f"first observation per user ({users})")
                if key == "observations" and isinstance(iterations, int) \
                        and total != users * iterations:
                    problems.append(
                        f"{where}.observations sums to {total}, expected "
                        f"users x iterations ({users * iterations})")
        edges = sec.get("edges")
        if not isinstance(edges, list) or not all(
                isinstance(e, list) and len(e) == 2
                and all(_is_count(i) and i < n for i in e) and e[0] != e[1]
                for e in edges):
            problems.append(f"{where}.edges must be pairs of distinct "
                            "label indices")
        stab = sec.get("stability")
        if not isinstance(stab, dict):
            problems.append(f"{where}.stability must be an object")
            continue
        for key in ("users", "raw_fickle_users", "raw_distinct_sum",
                    "raw_max_distinct_efps", "fickle_users_collapsed",
                    "collated_stable_users", "collated_max_ids_per_user"):
            if not _is_count(stab.get(key)):
                problems.append(f"{where}.stability.{key} must be a "
                                "non-negative integer")
        if users is not None and _is_count(stab.get("users")) \
                and stab["users"] != users:
            problems.append(f"{where}.stability.users is {stab['users']}, "
                            f"shard covers {users}")

    combined = payload.get("combined")
    if not isinstance(combined, dict) \
            or not isinstance(combined.get("tuples"), list):
        problems.append("combined.tuples must be an array")
        return problems
    widths = [len(vectors[name]["labels"])
              if isinstance(vectors.get(name), dict)
              and isinstance(vectors[name].get("labels"), list) else 0
              for name in declared]
    total = 0
    seen_keys = set()
    for i, entry in enumerate(combined["tuples"]):
        if not (isinstance(entry, list) and len(entry) == 2
                and isinstance(entry[0], list)
                and len(entry[0]) == len(declared)
                and all(_is_count(v) for v in entry[0])
                and isinstance(entry[1], int) and entry[1] > 0):
            problems.append(f"combined.tuples[{i}] must be "
                            "[[index per vector], positive count]")
            continue
        if declared and not all(v < w for v, w in zip(entry[0], widths)):
            problems.append(f"combined.tuples[{i}] indexes past a "
                            "vector's label table")
        key = tuple(entry[0])
        if key in seen_keys:
            problems.append(f"combined.tuples[{i}] duplicates key {key}")
        seen_keys.add(key)
        total += entry[1]
    if users is not None and total != users:
        problems.append(f"combined.tuples counts sum to {total}, "
                        f"expected one tuple per user ({users})")
    return problems


# -- merging ------------------------------------------------------------------

def _check_same_study(reports: list[dict]) -> dict:
    study = reports[0]["study"]
    for report in reports[1:]:
        theirs = report["study"]
        for key in ("seed", "user_count", "iterations", "vectors"):
            if theirs.get(key) != study.get(key):
                raise ValueError(
                    f"shard reports mix studies: {key} is "
                    f"{theirs.get(key)!r} in one report and "
                    f"{study.get(key)!r} in another")
        if report.get("engine_version") != reports[0].get("engine_version"):
            raise ValueError(
                f"shard reports mix engine versions "
                f"({report.get('engine_version')!r} vs "
                f"{reports[0].get('engine_version')!r})")
    return study


def _check_partition(ordered: list[dict], user_count: int) -> None:
    expect = 0
    for report in ordered:
        shard = report["shard"]
        if shard["start"] != expect:
            if shard["start"] < expect:
                raise ValueError(
                    f"shard reports overlap: [{shard['start']}, "
                    f"{shard['stop']}) begins before {expect}")
            raise ValueError(
                f"shard reports do not form a partition: gap before "
                f"user {shard['start']} (coverage reached {expect})")
        expect = shard["stop"]
    if expect != user_count:
        raise ValueError(
            f"shard reports cover [0, {expect}) but the study has "
            f"{user_count} users")


def merge_shard_reports(reports: list[dict]) -> dict:
    """Merge a full partition of shard reports into THE analysis report.

    The output is byte-identical (through ``dumps_shard_or_merged`` /
    ``dumps_analysis_report``) to ``build_analysis_report`` over the
    monolithic dataset, and invariant under the order reports are given
    in — they are canonically re-sorted by shard start, and every metric
    is a function of count multisets that sum associatively.
    """
    if not reports:
        raise ValueError("no shard reports to merge")
    for report in reports:
        problems = validate_shard_report(report)
        if problems:
            raise ValueError("invalid shard report: " + "; ".join(problems))
    study = _check_same_study(reports)
    ordered = sorted(reports, key=lambda r: r["shard"]["start"])
    _check_partition(ordered, study["user_count"])

    vectors = tuple(study["vectors"])
    sections = {}
    label_gid: dict[str, dict[str, int]] = {}
    efp_comp: dict[str, np.ndarray] = {}
    for name in vectors:
        gid: dict[str, int] = {}
        obs_counts: list[int] = []
        first_counts: list[int] = []
        edge_set: set[tuple[int, int]] = set()
        stab_sum = Counter()
        stab_max = Counter()
        for report in ordered:
            sec = report["vectors"][name]
            local = []
            for i, label in enumerate(sec["labels"]):
                g = gid.get(label)
                if g is None:
                    g = gid[label] = len(gid)
                    obs_counts.append(0)
                    first_counts.append(0)
                local.append(g)
                obs_counts[g] += sec["observations"][i]
                first_counts[g] += sec["first"][i]
            for a, b in sec["edges"]:
                ga, gb = local[a], local[b]
                edge_set.add((ga, gb) if ga < gb else (gb, ga))
            stab = sec["stability"]
            for key in ("users", "raw_fickle_users", "raw_distinct_sum",
                        "fickle_users_collapsed", "collated_stable_users"):
                stab_sum[key] += stab[key]
            for key in ("raw_max_distinct_efps",
                        "collated_max_ids_per_user"):
                stab_max[key] = max(stab_max[key], stab[key])

        uf = UnionFind(len(gid))
        if edge_set:
            uf.union_edges(np.array(sorted(edge_set), dtype=np.int64))
        roots = uf.roots()
        if len(gid):
            _, comp = np.unique(roots, return_inverse=True)
        else:
            comp = np.empty(0, dtype=np.int64)
        comp_counts = Counter()
        for g, count in enumerate(first_counts):
            comp_counts[int(comp[g])] += count

        users = stab_sum["users"]
        fickle = stab_sum["raw_fickle_users"]
        coll_stable = stab_sum["collated_stable_users"]
        sections[name] = {
            "graph": {
                "efps": len(gid),
                "edges": len(edge_set),
                "components": int(comp.max()) + 1 if comp.size else 0,
            },
            "raw": {
                "observations": distribution(
                    Counter(dict(enumerate(obs_counts)))),
                "first_observation": distribution(
                    Counter(dict(enumerate(first_counts)))),
            },
            "collated": {"per_user": distribution(comp_counts)},
            "stability": {
                "users": users,
                "raw_stable_users": users - fickle,
                "raw_fickle_users": fickle,
                "raw_stable_fraction": _round(
                    (users - fickle) / users if users else 0.0),
                "raw_mean_distinct_efps": _round(
                    stab_sum["raw_distinct_sum"] / users if users else 0.0),
                "raw_max_distinct_efps": stab_max["raw_max_distinct_efps"],
                "fickle_users_collapsed": stab_sum["fickle_users_collapsed"],
                "collated_stable_users": coll_stable,
                "collated_stable_fraction": _round(
                    coll_stable / users if users else 0.0),
                "collated_max_ids_per_user":
                    stab_max["collated_max_ids_per_user"],
            },
        }
        label_gid[name] = gid
        efp_comp[name] = comp

    raw_tuples = Counter()
    coll_tuples = Counter()
    for report in ordered:
        label_lists = [report["vectors"][name]["labels"] for name in vectors]
        for idxs, count in report["combined"]["tuples"]:
            key = tuple(label_lists[v][i] for v, i in enumerate(idxs))
            raw_tuples[key] += count
            coll_key = tuple(
                int(efp_comp[name][label_gid[name][label]])
                for name, label in zip(vectors, key))
            coll_tuples[coll_key] += count

    return {
        "kind": ANALYSIS_KIND,
        "format": ANALYSIS_FORMAT,
        "dataset": {
            "seed": study["seed"],
            "user_count": study["user_count"],
            "iterations": study["iterations"],
            "vectors": list(vectors),
        },
        "vectors": sections,
        "combined": {
            "vectors": list(vectors),
            "raw_first_observation": distribution(raw_tuples),
            "collated": distribution(coll_tuples),
        },
    }


# -- human-readable rendering -------------------------------------------------

def render_shard_report(payload: dict) -> str:
    """Render a shard report as a compact summary table."""
    from ..obs.report import _table  # deferred, mirrors report.py

    shard = payload.get("shard", {})
    study = payload.get("study", {})
    out = ["== shard report =="]
    out.append(f"shard: [{shard.get('start')}, {shard.get('stop')}) "
               f"({shard.get('users')} users) of study "
               + ", ".join(f"{k}={v}" for k, v in study.items()
                           if k != "vectors"))
    rows = []
    for name, sec in payload.get("vectors", {}).items():
        stab = sec["stability"]
        rows.append([name, str(len(sec["labels"])), str(len(sec["edges"])),
                     str(stab["users"]), str(stab["raw_fickle_users"]),
                     str(stab["collated_stable_users"])])
    out.append("")
    out.append(_table(["vector", "efps", "edges", "users", "fickle",
                       "coll_stable"], rows))
    out.append(f"combined tuples: "
               f"{len(payload.get('combined', {}).get('tuples', []))}")
    out.append("")
    return "\n".join(out)
