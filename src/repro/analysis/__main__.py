"""``python -m repro.analysis`` — dataset in, metrics report out.

Three modes, one deterministic contract:

  default   consume a ``StudyDataset`` JSON (as written by
            ``StudyDataset.save``, validated on load), collate every
            vector, and emit the analysis report.
  --shard   consume one *shard manifest* (written by
            ``run_study_sharded``), verify the shard's bytes against it,
            and emit the shard's mergeable report — O(distinct eFPs),
            not O(users).
  --merge   consume shard reports (``shard_report_*.json``) covering a
            full partition of the study and emit the merged analysis
            report — byte-identical to what the default mode produces
            from the monolithic dataset, in any merge order.

Output goes to ``--out`` via the crash-safe atomic writer, or to stdout.
The same inputs always produce byte-identical report files.

``--timings`` runs the pipeline under a live ``repro.obs`` recorder and
prints phase spans (load/collate/entropy/combine) and collation counters
to stderr — timings never enter the report itself, which must stay a
pure function of its inputs.
"""
from __future__ import annotations

import argparse
import json
import sys

from ..io import atomic_write_text
from ..obs import NULL_RECORDER, Recorder
from ..population.dataset import StudyDataset
from .report import (build_analysis_report, dumps_analysis_report,
                     render_analysis_report, validate_analysis_report)


def _print_timings(recorder: Recorder) -> None:
    for span in recorder.spans:
        attrs = span.get("attrs", {})
        label = span["name"] + (
            f"[{attrs['vector']}]" if "vector" in attrs else "")
        print(f"  span {label:<24} {span['duration_s'] * 1e3:9.3f} ms",
              file=sys.stderr)
    for name, value in sorted(recorder.counters.items()):
        print(f"  counter {name:<21} {value:g}", file=sys.stderr)


def _emit(args, report: dict, text: str, render) -> int:
    if args.out:
        atomic_write_text(args.out, text)
        print(f"wrote {args.out}", file=sys.stderr)
    elif args.render:
        print(render(report))
    elif not args.check:
        sys.stdout.write(text)
    return 0


def _run_shard_mode(args, recorder) -> int:
    from ..population.shards import (ShardIntegrityError,
                                     dataset_from_records, load_shard)
    from .shards import (build_shard_report, dumps_shard_or_merged,
                         render_shard_report, validate_shard_report)
    if len(args.paths) != 1:
        print("error: --shard takes exactly one shard manifest path",
              file=sys.stderr)
        return 2
    manifest_path = args.paths[0]
    try:
        with recorder.span("load"):
            manifest, records = load_shard(manifest_path)
            dataset = dataset_from_records(manifest, records)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ShardIntegrityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with recorder.span("collate"):
        report = build_shard_report(dataset, manifest)
    problems = validate_shard_report(report)
    if problems:
        print("error: built shard report failed its own schema check:",
              file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2
    return _emit(args, report, dumps_shard_or_merged(report),
                 render_shard_report)


def _run_merge_mode(args, recorder) -> int:
    from .shards import dumps_shard_or_merged, merge_shard_reports
    reports = []
    for path in args.paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                reports.append(json.load(fh))
        except FileNotFoundError:
            print(f"error: no shard report at {path}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
            return 2
    try:
        with recorder.span("merge"):
            merged = merge_shard_reports(reports)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = validate_analysis_report(merged)
    if problems:
        print("error: merged report failed the analysis schema check:",
              file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2
    return _emit(args, merged, dumps_shard_or_merged(merged),
                 render_analysis_report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Collate fingerprint data and emit the deterministic "
                    "entropy/anonymity analysis report (monolithic "
                    "dataset, single shard, or merged shard reports).")
    parser.add_argument("paths", nargs="+",
                        help="a StudyDataset JSON (default), one shard "
                             "manifest (--shard), or shard report JSONs "
                             "(--merge)")
    parser.add_argument("--shard", action="store_true",
                        help="treat the path as a shard manifest and emit "
                             "that shard's mergeable report")
    parser.add_argument("--merge", action="store_true",
                        help="merge shard reports covering the full study "
                             "into the monolithic analysis report")
    parser.add_argument("--tables", action="store_true",
                        help="emit the paper Tables 2-5 comparison report "
                             "(audio vs comparator diversity, additive "
                             "value, match scores, math-lib attribution)")
    parser.add_argument("--out", help="write the report here (atomic write); "
                                      "default: print JSON to stdout")
    parser.add_argument("--check", action="store_true",
                        help="build and validate only; print nothing on "
                             "success unless --out is also given")
    parser.add_argument("--render", action="store_true",
                        help="print the human-readable tables instead of JSON")
    parser.add_argument("--timings", action="store_true",
                        help="print repro.obs spans/counters to stderr")
    args = parser.parse_args(argv)
    if args.shard and args.merge:
        parser.error("--shard and --merge are mutually exclusive")
    if args.tables and (args.shard or args.merge):
        parser.error("--tables works on a monolithic dataset only")

    recorder = Recorder() if args.timings else NULL_RECORDER
    if args.shard:
        code = _run_shard_mode(args, recorder)
    elif args.merge:
        code = _run_merge_mode(args, recorder)
    else:
        code = _run_dataset_mode(args, parser, recorder)
    if args.timings and code == 0:
        _print_timings(recorder)
    return code


def _run_dataset_mode(args, parser, recorder) -> int:
    if len(args.paths) != 1:
        parser.error("exactly one dataset path expected "
                     "(use --merge for multiple shard reports)")
    path = args.paths[0]
    try:
        with recorder.span("load"):
            dataset = StudyDataset.load(path)
    except FileNotFoundError:
        print(f"error: no dataset at {path}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}",
              file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(f"error: {path} is not a valid StudyDataset: {exc}",
              file=sys.stderr)
        return 2

    if args.tables:
        return _run_tables_mode(args, dataset, recorder)
    report = build_analysis_report(dataset, recorder=recorder)
    problems = validate_analysis_report(report)
    if problems:
        print("error: built report failed its own schema check:",
              file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2
    return _emit(args, report, dumps_analysis_report(report),
                 render_analysis_report)


def _run_tables_mode(args, dataset, recorder) -> int:
    from ..vectors.registry import UnknownVectorError
    from .tables import (build_tables_report, dumps_tables_report,
                         render_tables_report, validate_tables_report)
    try:
        report = build_tables_report(dataset, recorder=recorder)
    except UnknownVectorError as exc:
        # a dataset naming a vector this build has never heard of is a
        # user-facing input problem, not a crash
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = validate_tables_report(report)
    if problems:
        print("error: built tables report failed its own schema check:",
              file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2
    return _emit(args, report, dumps_tables_report(report),
                 render_tables_report)


if __name__ == "__main__":  # pragma: no cover — exercised via CLI tests
    sys.exit(main())
