"""``python -m repro.analysis`` — dataset in, metrics report out.

Consumes a ``StudyDataset`` JSON (as written by ``StudyDataset.save``,
validated on load), collates every vector, and emits the deterministic
analysis report: to ``--out`` via the crash-safe atomic writer, or to
stdout. The same dataset always produces byte-identical report files.

``--timings`` runs the pipeline under a live ``repro.obs`` recorder and
prints phase spans (load/collate/entropy/combine) and collation counters
to stderr — timings never enter the report itself, which must stay a
pure function of the dataset.
"""
from __future__ import annotations

import argparse
import json
import sys

from ..io import atomic_write_text
from ..obs import NULL_RECORDER, Recorder
from ..population.dataset import StudyDataset
from .report import (build_analysis_report, dumps_analysis_report,
                     render_analysis_report, validate_analysis_report)


def _print_timings(recorder: Recorder) -> None:
    for span in recorder.spans:
        attrs = span.get("attrs", {})
        label = span["name"] + (
            f"[{attrs['vector']}]" if "vector" in attrs else "")
        print(f"  span {label:<24} {span['duration_s'] * 1e3:9.3f} ms",
              file=sys.stderr)
    for name, value in sorted(recorder.counters.items()):
        print(f"  counter {name:<21} {value:g}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Collate a StudyDataset and emit the entropy/anonymity "
                    "analysis report (deterministic JSON).")
    parser.add_argument("dataset", help="path to a StudyDataset JSON file")
    parser.add_argument("--out", help="write the report here (atomic write); "
                                      "default: print JSON to stdout")
    parser.add_argument("--check", action="store_true",
                        help="build and validate only; print nothing on "
                             "success unless --out is also given")
    parser.add_argument("--render", action="store_true",
                        help="print the human-readable tables instead of JSON")
    parser.add_argument("--timings", action="store_true",
                        help="print repro.obs spans/counters to stderr")
    args = parser.parse_args(argv)

    recorder = Recorder() if args.timings else NULL_RECORDER
    try:
        with recorder.span("load"):
            dataset = StudyDataset.load(args.dataset)
    except FileNotFoundError:
        print(f"error: no dataset at {args.dataset}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.dataset} is not valid JSON: {exc}",
              file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(f"error: {args.dataset} is not a valid StudyDataset: {exc}",
              file=sys.stderr)
        return 2

    report = build_analysis_report(dataset, recorder=recorder)
    problems = validate_analysis_report(report)
    if problems:
        print("error: built report failed its own schema check:",
              file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2

    if args.out:
        atomic_write_text(args.out, dumps_analysis_report(report))
        print(f"wrote {args.out}", file=sys.stderr)
    elif args.render:
        print(render_analysis_report(report))
    elif not args.check:
        sys.stdout.write(dumps_analysis_report(report))
    if args.timings:
        _print_timings(recorder)
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via CLI tests
    sys.exit(main())
