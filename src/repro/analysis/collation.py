"""Fingerprint-graph collation (paper §4).

The paper's measurement contribution: raw per-iteration audio
fingerprints (eFPs) are *fickle* — one browser leaves several distinct
hashes across 30 iterations — yet they are still linkable, because the
same machine keeps revisiting the same eFPs. Collation makes that
linkability explicit with a graph:

  nodes  the distinct eFPs observed for one vector, and
  edges  link two eFPs that were co-observed inside a single user's
         iteration series (a browser emitted both, so they belong to
         the same underlying device state).

Connected components of this graph are the *collated fingerprints*: a
user's entire series — however fickle — lands in exactly one component,
and two users share a component exactly when their eFP sets overlap
(directly or transitively through other users). Components therefore
both stabilize fickle series and define the anonymity sets the entropy
analysis measures.

Implementation notes (scales past the paper's 2093 x 30 x 7 grid):

- eFPs are integer-interned once (``StudyDataset.intern``), so the
  whole computation runs on an ``(users, iterations)`` int64 grid.
- Per-series edges are built vectorized as a star from each row's first
  eFP to every other eFP in the row — connectivity-equivalent to the
  full per-series clique at O(iterations) instead of O(iterations²)
  edges — then deduplicated grid-wide with one ``np.unique``.
- Components come from an iterative array-backed union-find (path
  halving, no recursion) over the deduplicated edges, plus one
  vectorized pointer-jumping pass to resolve every node's root. Work is
  linear in the grid size up to near-constant inverse-Ackermann /
  log-depth factors.
- Roots are canonicalized to the *minimum interned eFP id* in each
  component, so component identity is independent of edge order, and
  dense component labels follow interning (first-appearance) order —
  the same dataset always collates to byte-identical labels.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import NULL_RECORDER


class UnionFind:
    """Array-backed disjoint-set union: iterative finds with path
    halving, roots canonicalized to the smallest member id."""

    __slots__ = ("parent",)

    def __init__(self, size: int):
        self.parent = np.arange(size, dtype=np.int64)

    def find(self, i: int) -> int:
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]  # path halving
            i = int(parent[i])
        return int(i)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; the smaller root wins, so a
        component's representative is its minimum id regardless of the
        order edges arrive in. Returns True if a merge happened."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if rb < ra:
            ra, rb = rb, ra
        self.parent[rb] = ra
        return True

    def union_edges(self, edges: np.ndarray) -> int:
        """Apply an ``(n, 2)`` edge array; returns the number of merges."""
        merged = 0
        for a, b in edges.tolist():
            merged += self.union(a, b)
        return merged

    def roots(self) -> np.ndarray:
        """Every element's root, resolved by vectorized pointer jumping
        (O(log depth) full-array passes, no recursion)."""
        parent = self.parent
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                return grand
            parent = grand


def series_edges(codes: np.ndarray) -> np.ndarray:
    """Deduplicated co-observation edges for an interned series grid.

    Each row contributes a star from its first eFP to every later eFP —
    enough for connectivity, linear in the row length. Self-loops are
    dropped; undirected duplicates collapse via (lo, hi) normalization.
    """
    if codes.shape[1] < 2:
        return np.empty((0, 2), dtype=np.int64)
    first = np.broadcast_to(codes[:, :1], (codes.shape[0], codes.shape[1] - 1))
    u = first.ravel()
    v = codes[:, 1:].ravel()
    mask = u != v
    if not mask.any():
        return np.empty((0, 2), dtype=np.int64)
    u, v = u[mask], v[mask]
    pairs = np.stack([np.minimum(u, v), np.maximum(u, v)], axis=1)
    return np.unique(pairs, axis=0)


@dataclass(frozen=True, eq=False)
class VectorCollation:
    """One vector's collated fingerprint graph, fully resolved.

    All arrays follow the dataset's canonical orders: ``codes`` rows and
    ``user_components`` follow ``user_ids``; ``efp_components`` follows
    the interned eFP ids behind ``labels``. Component labels are dense
    ints in first-appearance order of each component's smallest eFP.
    """

    vector: str
    user_ids: list[str] = field(repr=False)
    labels: list[str] = field(repr=False)
    codes: np.ndarray = field(repr=False)            # (users, iterations)
    efp_components: np.ndarray = field(repr=False)   # (n_efps,)
    user_components: np.ndarray = field(repr=False)  # (users,)
    edge_count: int = 0

    @property
    def efp_count(self) -> int:
        return len(self.labels)

    @property
    def component_count(self) -> int:
        return int(self.efp_components.max()) + 1 if self.efp_count else 0

    def user_component_ids(self) -> dict[str, int]:
        """``user_id -> collated fingerprint id`` (exactly one per user)."""
        return {uid: int(c)
                for uid, c in zip(self.user_ids, self.user_components)}

    def raw_distinct_per_user(self) -> np.ndarray:
        """Distinct raw eFPs per user row (Table 1's quantity), vectorized."""
        s = np.sort(self.codes, axis=1)
        return 1 + (s[:, 1:] != s[:, :-1]).sum(axis=1)

    def collated_distinct_per_user(self) -> np.ndarray:
        """Distinct collated ids per user row — 1 for every user, by
        construction; computed (not assumed) so tests and the report
        validator can verify the collapse actually happened."""
        comp = self.efp_components[self.codes]
        s = np.sort(comp, axis=1)
        return 1 + (s[:, 1:] != s[:, :-1]).sum(axis=1)


def collate_vector(dataset, vector: str, recorder=NULL_RECORDER) -> VectorCollation:
    """Collate one vector's series grid into stable fingerprint ids."""
    with recorder.span("collate", vector=vector):
        codes, labels, user_ids = dataset.intern(vector)
        uf = UnionFind(len(labels))
        edges = series_edges(codes)
        uf.union_edges(edges)
        roots = uf.roots()
        # roots are already canonical (min eFP id per component); densify
        # to 0..C-1 in ascending-root order == first-appearance order
        _, efp_components = np.unique(roots, return_inverse=True)
        user_components = (efp_components[codes[:, 0]] if codes.size
                           else np.empty(len(user_ids), dtype=np.int64))
        recorder.count("collation.efps", len(labels))
        recorder.count("collation.edges", int(edges.shape[0]))
        recorder.count("collation.components",
                       int(efp_components.max()) + 1 if len(labels) else 0)
    return VectorCollation(
        vector=vector,
        user_ids=user_ids,
        labels=labels,
        codes=codes,
        efp_components=efp_components,
        user_components=user_components,
        edge_count=int(edges.shape[0]),
    )


def collate(dataset, vectors=None, recorder=NULL_RECORDER) -> dict[str, VectorCollation]:
    """Collate every requested vector; returns ``{vector: collation}``."""
    names = tuple(vectors) if vectors is not None else tuple(dataset.vectors)
    return {name: collate_vector(dataset, name, recorder=recorder)
            for name in names}


def combined_user_ids(collations: dict[str, VectorCollation],
                      vectors=None) -> list[tuple[int, ...]]:
    """Per-user cross-vector collated id tuples (the "Combined" row).

    Rows follow the shared canonical user order; every collation must
    come from the same dataset.
    """
    names = tuple(vectors) if vectors is not None else tuple(collations)
    cols = [collations[name] for name in names]
    base = cols[0].user_ids
    for col in cols[1:]:
        if col.user_ids != base:
            raise ValueError(
                f"collation for {col.vector!r} has a different user order")
    stacked = np.stack([col.user_components for col in cols], axis=1)
    return [tuple(row) for row in stacked.tolist()]
