"""The analysis report: build, validate, render.

One deterministic JSON document per dataset: for every vector the
fingerprint-graph shape, raw diversity (per observation and per first
observation), collated diversity, and the stability collapse — plus the
cross-vector "Combined" section. ``python -m repro.analysis`` writes it;
``python -m repro.obs.report <path> --check`` schema-checks it (the obs
CLI dispatches on ``kind``); CI gates on both.

Determinism contract: the report is a pure function of the dataset.
Serialized with ``sort_keys`` and fixed float rounding, the same dataset
always produces byte-identical report files — across runs, across
worker counts used to *render* the dataset, across user orderings for
every entropy/anonymity value (see ``entropy`` module).
"""
from __future__ import annotations

import json

from ..obs import NULL_RECORDER
from .collation import collate
from .entropy import combined_metrics, vector_metrics


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)

ANALYSIS_KIND = "repro.analysis.report"
ANALYSIS_FORMAT = 1


def build_analysis_report(dataset, collations=None,
                          recorder=NULL_RECORDER) -> dict:
    """Collate (unless pre-collated) and assemble the report document."""
    if collations is None:
        collations = collate(dataset, recorder=recorder)
    vectors = {}
    for name in dataset.vectors:
        with recorder.span("entropy", vector=name):
            vectors[name] = vector_metrics(collations[name])
    with recorder.span("combine"):
        combined = combined_metrics(collations, dataset.vectors)
    return {
        "kind": ANALYSIS_KIND,
        "format": ANALYSIS_FORMAT,
        "dataset": {
            "seed": dataset.seed,
            "user_count": dataset.user_count,
            "iterations": dataset.iterations,
            "vectors": list(dataset.vectors),
        },
        "vectors": vectors,
        "combined": combined,
    }


def dumps_analysis_report(report: dict) -> str:
    """The canonical byte encoding (what the CLI writes and CI diffs)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


# -- validation (the CI schema check) ----------------------------------------

def _check_distribution(problems: list[str], where: str, dist) -> None:
    if not isinstance(dist, dict):
        problems.append(f"{where} must be an object")
        return
    for key in ("count", "distinct", "unique_ids"):
        value = dist.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{where}.{key} must be a non-negative integer")
    for key in ("entropy_bits", "normalized_entropy", "unique_fraction"):
        if not _is_number(dist.get(key)):
            problems.append(f"{where}.{key} must be numeric")
    if _is_number(dist.get("normalized_entropy")) \
            and not 0.0 <= dist["normalized_entropy"] <= 1.0 + 1e-9:
        problems.append(f"{where}.normalized_entropy out of [0, 1]")
    sets = dist.get("anonymity_sets")
    if not isinstance(sets, dict) or not isinstance(sets.get("sizes"), dict):
        problems.append(f"{where}.anonymity_sets.sizes must be an object")
        return
    users = 0
    groups = 0
    for size, n in sets["sizes"].items():
        if not (isinstance(size, str) and size.isdigit()
                and isinstance(n, int) and n > 0):
            problems.append(
                f"{where}.anonymity_sets.sizes has a malformed entry "
                f"({size!r}: {n!r})")
            return
        users += int(size) * n
        groups += n
    if isinstance(dist.get("count"), int) and users != dist["count"]:
        problems.append(
            f"{where}.anonymity_sets sizes cover {users} users, "
            f"count says {dist['count']}")
    if isinstance(dist.get("distinct"), int) and groups != dist["distinct"]:
        problems.append(
            f"{where}.anonymity_sets has {groups} sets, distinct says "
            f"{dist['distinct']}")


def validate_analysis_report(payload) -> list[str]:
    """Return the list of schema/integrity problems (empty == valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["analysis report is not a JSON object"]
    if payload.get("kind") != ANALYSIS_KIND:
        problems.append(
            f"kind must be {ANALYSIS_KIND!r}, got {payload.get('kind')!r}")
    if payload.get("format") != ANALYSIS_FORMAT:
        problems.append(
            f"format must be {ANALYSIS_FORMAT}, got {payload.get('format')!r}")

    dataset = payload.get("dataset")
    if not isinstance(dataset, dict):
        problems.append("dataset must be an object")
        dataset = {}
    for key in ("seed", "user_count", "iterations"):
        if not _is_number(dataset.get(key)):
            problems.append(f"dataset.{key} must be numeric")
    declared = dataset.get("vectors")
    if not isinstance(declared, list) or not declared:
        problems.append("dataset.vectors must be a non-empty array")
        declared = []

    vectors = payload.get("vectors")
    if not isinstance(vectors, dict) or not vectors:
        problems.append("vectors must be a non-empty object")
        vectors = {}
    if declared and vectors and sorted(vectors) != sorted(declared):
        problems.append("vectors keys do not match dataset.vectors")

    for name, section in vectors.items():
        where = f"vectors[{name!r}]"
        if not isinstance(section, dict):
            problems.append(f"{where} must be an object")
            continue
        graph = section.get("graph")
        if not isinstance(graph, dict) or not all(
                isinstance(graph.get(k), int) and graph.get(k) >= 0
                for k in ("efps", "edges", "components")):
            problems.append(
                f"{where}.graph must carry integer efps/edges/components")
        raw = section.get("raw", {})
        if not isinstance(raw, dict):
            problems.append(f"{where}.raw must be an object")
        else:
            _check_distribution(problems, f"{where}.raw.observations",
                                raw.get("observations"))
            _check_distribution(problems, f"{where}.raw.first_observation",
                                raw.get("first_observation"))
        collated = section.get("collated", {})
        if not isinstance(collated, dict):
            problems.append(f"{where}.collated must be an object")
        else:
            _check_distribution(problems, f"{where}.collated.per_user",
                                collated.get("per_user"))
        stab = section.get("stability")
        if not isinstance(stab, dict):
            problems.append(f"{where}.stability must be an object")
            continue
        for key in ("users", "raw_stable_users", "raw_fickle_users",
                    "fickle_users_collapsed", "collated_stable_users",
                    "collated_max_ids_per_user"):
            value = stab.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(f"{where}.stability.{key} must be a "
                                "non-negative integer")
        if all(isinstance(stab.get(k), int) for k in
               ("users", "raw_stable_users", "raw_fickle_users")) \
                and stab["raw_stable_users"] + stab["raw_fickle_users"] \
                != stab["users"]:
            problems.append(f"{where}.stability raw stable+fickle != users")
        # the collation invariant the paper's scheme guarantees: every
        # user — fickle or not — collapses to exactly one collated id
        if isinstance(stab.get("users"), int):
            if stab.get("collated_stable_users") != stab["users"]:
                problems.append(
                    f"{where}.stability: collated ids are not stable for "
                    "every user (collation invariant violated)")
            if stab.get("fickle_users_collapsed") != stab.get("raw_fickle_users"):
                problems.append(
                    f"{where}.stability: not every fickle user collapsed "
                    "to one collated id")

    combined = payload.get("combined")
    if not isinstance(combined, dict):
        problems.append("combined must be an object")
    else:
        if declared and combined.get("vectors") != declared:
            problems.append("combined.vectors does not match dataset.vectors")
        _check_distribution(problems, "combined.raw_first_observation",
                            combined.get("raw_first_observation"))
        _check_distribution(problems, "combined.collated",
                            combined.get("collated"))
    return problems


# -- human-readable rendering -------------------------------------------------

def render_analysis_report(payload: dict) -> str:
    """Render an analysis report as the paper-style diversity tables."""
    # deferred: importing obs.report at module scope would pre-load it
    # under `python -m repro.obs.report` and trip runpy's double-import
    # warning (obs/__init__ keeps it lazy for the same reason)
    from ..obs.report import _table

    out: list[str] = []
    dataset = payload.get("dataset", {})
    out.append("== analysis report ==")
    out.append("dataset: " + ", ".join(f"{k}={v}" for k, v in dataset.items()))

    rows = []
    sections = list(payload.get("vectors", {}).items())
    combined = payload.get("combined")
    for name, section in sections:
        graph = section["graph"]
        collated = section["collated"]["per_user"]
        raw = section["raw"]["first_observation"]
        rows.append([
            name, str(graph["efps"]), str(graph["edges"]),
            str(graph["components"]),
            f"{raw['entropy_bits']:.4f}",
            f"{collated['entropy_bits']:.4f}",
            f"{collated['normalized_entropy']:.4f}",
            str(collated["unique_ids"]),
            str(collated["anonymity_sets"]["max"]),
        ])
    if combined:
        rows.append([
            "combined", "-", "-",
            str(combined["collated"]["distinct"]),
            f"{combined['raw_first_observation']['entropy_bits']:.4f}",
            f"{combined['collated']['entropy_bits']:.4f}",
            f"{combined['collated']['normalized_entropy']:.4f}",
            str(combined["collated"]["unique_ids"]),
            str(combined["collated"]["anonymity_sets"]["max"]),
        ])
    out.append("")
    out.append("diversity (entropy in bits; raw = first observation):")
    out.append(_table(
        ["vector", "efps", "edges", "collated", "H_raw", "H_coll",
         "e_norm", "unique", "max_set"], rows))

    out.append("")
    out.append("stability (raw fickleness vs collated collapse):")
    stab_rows = []
    for name, section in sections:
        stab = section["stability"]
        stab_rows.append([
            name, str(stab["users"]), str(stab["raw_fickle_users"]),
            f"{stab['raw_mean_distinct_efps']:.3f}",
            str(stab["raw_max_distinct_efps"]),
            str(stab["fickle_users_collapsed"]),
            f"{stab['collated_stable_fraction']:.3f}",
        ])
    out.append(_table(
        ["vector", "users", "fickle", "mean_efps", "max_efps",
         "collapsed", "coll_stable"], stab_rows))
    out.append("")
    return "\n".join(out)
