"""Entropy, anonymity-set and stability metrics (paper §4 tables).

All metrics are computed from *count multisets*, and every float path
sorts its inputs before reducing, so results are exactly — not just
approximately — invariant under user reordering: permuting the users of
a dataset permutes ids, which leaves the sorted count vector unchanged,
which leaves every IEEE-754 partial sum unchanged.

Conventions (matching the paper and its precursor study):

  Shannon entropy      H = -sum p_i log2 p_i, in bits, over id counts.
  normalized entropy   H / log2(N) with N the number of observations —
                       1.0 means all-distinct, 0.0 means one big set.
  anonymity set        the group of users sharing one fingerprint id;
                       a user is *unique* iff their set has size 1.
"""
from __future__ import annotations

from collections import Counter

import numpy as np

#: decimal places kept for every float emitted into reports — enough to
#: be exact for these magnitudes while keeping the JSON stable to read
FLOAT_DECIMALS = 12


def _round(value: float) -> float:
    return round(float(value), FLOAT_DECIMALS)


def _sorted_counts(values) -> np.ndarray:
    """Multiset of per-id counts as an ascending int64 array."""
    if isinstance(values, Counter):
        counter = values
    else:
        counter = Counter(values)
    counts = np.fromiter(counter.values(), dtype=np.int64, count=len(counter))
    counts = counts[counts > 0]
    counts.sort()
    return counts


def shannon_entropy(values) -> float:
    """Shannon entropy in bits of the id distribution ``values`` (an
    iterable of hashable ids, or a Counter of counts)."""
    counts = _sorted_counts(values)
    total = counts.sum()
    if total <= 0 or len(counts) <= 1:
        return 0.0
    p = counts / total
    return float(-(p * np.log2(p)).sum())


def normalized_entropy(values) -> float:
    """Entropy normalized by the maximum for the observation count:
    ``H / log2(N)`` — the paper's cross-population comparison scale."""
    counts = _sorted_counts(values)
    total = int(counts.sum())
    if total <= 1:
        return 0.0
    return shannon_entropy(Counter(dict(enumerate(counts.tolist())))) \
        / float(np.log2(total))


def distribution(values) -> dict:
    """The full per-id metrics block used throughout analysis reports.

    ``values`` is one id per observation (e.g. one collated id per
    user). Returns counts, entropy, normalized entropy, uniqueness, and
    the anonymity-set size distribution — all permutation-invariant.
    """
    counts = _sorted_counts(values)
    total = int(counts.sum())
    distinct = int(len(counts))
    entropy = shannon_entropy(Counter(dict(enumerate(counts.tolist()))))
    unique = int((counts == 1).sum())
    sizes = Counter(counts.tolist())
    return {
        "count": total,
        "distinct": distinct,
        "entropy_bits": _round(entropy),
        "normalized_entropy": _round(entropy / float(np.log2(total))
                                     if total > 1 else 0.0),
        "unique_ids": unique,
        "unique_fraction": _round(unique / total if total else 0.0),
        "anonymity_sets": {
            "min": int(counts.min()) if distinct else 0,
            "max": int(counts.max()) if distinct else 0,
            "mean": _round(total / distinct if distinct else 0.0),
            "sizes": {str(size): int(n) for size, n in sorted(sizes.items())},
        },
    }


def stability(collation) -> dict:
    """Raw-vs-collated stability for one vector (the collapse the paper
    demonstrates): how many users were fickle raw, and whether every one
    of them collapsed to a single collated id."""
    raw_distinct = collation.raw_distinct_per_user()
    collated_distinct = collation.collated_distinct_per_user()
    users = int(raw_distinct.shape[0])
    fickle = raw_distinct > 1
    fickle_users = int(fickle.sum())
    collapsed = int((collated_distinct[fickle] == 1).sum())
    return {
        "users": users,
        "raw_stable_users": users - fickle_users,
        "raw_fickle_users": fickle_users,
        "raw_stable_fraction": _round((users - fickle_users) / users
                                      if users else 0.0),
        "raw_mean_distinct_efps": _round(raw_distinct.mean() if users else 0.0),
        "raw_max_distinct_efps": int(raw_distinct.max()) if users else 0,
        "fickle_users_collapsed": collapsed,
        "collated_stable_users": int((collated_distinct == 1).sum()),
        "collated_stable_fraction": _round(
            (collated_distinct == 1).mean() if users else 0.0),
        "collated_max_ids_per_user": int(collated_distinct.max()) if users else 0,
    }


def vector_metrics(collation) -> dict:
    """The per-vector analysis report section: graph shape, raw
    diversity (per observation and per first observation), collated
    diversity, and the stability collapse."""
    codes = collation.codes
    first_raw = codes[:, 0] if codes.size else np.empty(0, dtype=np.int64)
    return {
        "graph": {
            "efps": collation.efp_count,
            "edges": collation.edge_count,
            "components": collation.component_count,
        },
        "raw": {
            "observations": distribution(codes.ravel().tolist()),
            "first_observation": distribution(first_raw.tolist()),
        },
        "collated": {
            "per_user": distribution(collation.user_components.tolist()),
        },
        "stability": stability(collation),
    }


def combined_metrics(collations: dict, vectors) -> dict:
    """The cross-vector "Combined" section: per-user tuples of collated
    ids, and of raw first-observation eFPs, across all vectors."""
    from .collation import combined_user_ids  # local: avoid import cycle

    names = tuple(vectors)
    collated = combined_user_ids(collations, names)
    raw_first = np.stack(
        [collations[name].codes[:, 0] for name in names], axis=1)
    raw = [tuple(row) for row in raw_first.tolist()]
    return {
        "vectors": list(names),
        "raw_first_observation": distribution(raw),
        "collated": distribution(collated),
    }
