"""Incremental fingerprint collation: the online twin of
``repro.analysis.collation``.

The batch collator rebuilds the full fingerprint graph per run — fine
for a study, unusable for a service where visits arrive one at a time.
``IncrementalCollator`` maintains the same graph *incrementally*: each
arriving (user, eFP) observation interns the eFP (ids in arrival order),
and unions it with the user's first eFP — amortized near-O(α) per
arrival, no rebuild, ever.

Equivalence to the batch path is exact, not approximate:

* **Same edges.** The batch collator builds a star from each user row's
  first eFP to every later one; observing a series incrementally unions
  each new eFP with that user's first eFP — the identical edge set.
* **Same canonical roots.** Unions keep the minimum member id as the
  root (as batch ``UnionFind.union`` does), so a component's
  representative is its minimum interned eFP id regardless of arrival
  order — this is the *live* identity the service serves, stable under
  any interleaving of the same visits.
* **Same dense labels.** ``user_component_ids`` densifies resolved
  roots in ascending order, exactly ``np.unique(roots)`` in the batch
  path. Feed the collator a dataset's visits in canonical order (user
  by user, iteration by iteration) and the final assignment is
  byte-identical to ``collate_vector`` on that dataset — pinned by
  test.

State is serializable and *canonical*: ``state_dict`` resolves every
parent to its root before dumping, so the bytes are a pure function of
the observation stream — independent of find-history (path halving
mutates parents lazily) and therefore byte-stable across
snapshot/replay cycles.
"""
from __future__ import annotations


class IncrementalCollator:
    """One vector's online fingerprint graph.

    Not thread-safe; the service serializes all mutations through its
    single consumer task.
    """

    __slots__ = ("vector", "_ids", "_labels", "_parent", "_user_first",
                 "_user_order", "_root_users")

    def __init__(self, vector: str):
        self.vector = vector
        self._ids: dict[str, int] = {}      # eFP string -> interned id
        self._labels: list[str] = []        # interned id -> eFP string
        self._parent: list[int] = []        # union-find forest
        self._user_first: dict[str, int] = {}   # user -> first eFP id
        self._user_order: list[str] = []        # users in arrival order
        self._root_users: dict[int, int] = {}   # root -> distinct users

    # -- union-find core -----------------------------------------------------
    def _find(self, i: int) -> int:
        parent = self._parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]  # path halving
            i = parent[i]
        return i

    def _union(self, a: int, b: int) -> None:
        """Merge with the *minimum* id as root (the batch collator's
        canonicalization), folding the loser's user count into the
        winner's."""
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        if rb < ra:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._root_users[ra] = (self._root_users.get(ra, 0)
                                + self._root_users.pop(rb, 0))

    def _intern(self, efp: str) -> int:
        code = self._ids.get(efp)
        if code is None:
            code = self._ids[efp] = len(self._labels)
            self._labels.append(efp)
            self._parent.append(code)
        return code

    # -- the online surface --------------------------------------------------
    def observe(self, user: str, efp: str) -> int:
        """Fold one observation in; returns the user's current canonical
        identity (their component's minimum interned eFP id)."""
        code = self._intern(efp)
        first = self._user_first.get(user)
        if first is None:
            self._user_first[user] = code
            self._user_order.append(user)
            root = self._find(code)
            self._root_users[root] = self._root_users.get(root, 0) + 1
            return root
        self._union(first, code)
        return self._find(first)

    def identity(self, user: str) -> int | None:
        """The user's canonical collated identity, or None if unseen."""
        first = self._user_first.get(user)
        return None if first is None else self._find(first)

    def anonymity_set_size(self, user: str) -> int:
        """Distinct users sharing this user's identity (0 if unseen)."""
        first = self._user_first.get(user)
        if first is None:
            return 0
        return self._root_users[self._find(first)]

    # -- shape ---------------------------------------------------------------
    @property
    def user_count(self) -> int:
        return len(self._user_order)

    @property
    def efp_count(self) -> int:
        return len(self._labels)

    @property
    def component_count(self) -> int:
        return len(self._root_users)

    def users(self) -> list[str]:
        return list(self._user_order)

    # -- batch-equivalent views ----------------------------------------------
    def _dense_labels(self) -> dict[int, int]:
        """root -> dense component label, ascending-root order — the
        exact densification ``np.unique(roots, return_inverse=True)``
        applies in the batch path."""
        roots = sorted({self._find(i) for i in range(len(self._parent))})
        return {root: label for label, root in enumerate(roots)}

    def user_component_ids(self) -> dict[str, int]:
        """``user -> dense collated id`` — comparable field-for-field
        (and, JSON-dumped, byte-for-byte) with the batch
        ``VectorCollation.user_component_ids()`` when the stream arrived
        in the dataset's canonical order."""
        dense = self._dense_labels()
        return {user: dense[self._find(self._user_first[user])]
                for user in self._user_order}

    def efp_component_ids(self) -> list[int]:
        """Dense component label per interned eFP id — the batch
        ``efp_components`` array as a list."""
        dense = self._dense_labels()
        return [dense[self._find(i)] for i in range(len(self._parent))]

    # -- canonical serialization ---------------------------------------------
    def state_dict(self) -> dict:
        """Deterministic snapshot: labels in intern order, parents fully
        resolved to roots (find-history erased), users in arrival order.
        A pure function of the observation stream."""
        return {
            "vector": self.vector,
            "labels": list(self._labels),
            "roots": [self._find(i) for i in range(len(self._parent))],
            "users": [[user, self._user_first[user]]
                      for user in self._user_order],
        }

    @classmethod
    def from_state(cls, state: dict) -> "IncrementalCollator":
        collator = cls(state["vector"])
        for code, label in enumerate(state["labels"]):
            collator._ids[label] = code
            collator._labels.append(label)
        collator._parent = [int(r) for r in state["roots"]]
        for user, first in state["users"]:
            first = int(first)
            collator._user_first[user] = first
            collator._user_order.append(user)
            root = collator._find(first)
            collator._root_users[root] = collator._root_users.get(root, 0) + 1
        return collator
