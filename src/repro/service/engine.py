"""The asyncio fingerprint-matching engine: ingest, lookup, survive.

One consumer task owns all state mutation; everything around it is the
robustness envelope the service promises its callers:

* **Admission control** — the ingest queue is bounded. A full queue
  sheds *at the front door* with a typed ``IngestShed(queue_full)``
  response instead of queueing unboundedly or silently dropping.
* **Deadlines** — every request carries a monotonic-clock deadline
  (``time.monotonic`` by default, injectable for tests — never wall
  time, so an NTP step cannot fire deadlines early). Queued visits
  whose deadline passes before the consumer reaches them are answered
  ``IngestShed(deadline_exceeded)``, unlogged and unapplied.
* **Circuit breaker + degradation** — lookup deadline misses feed a
  sliding window; sustained misses trip the breaker and lookups are
  answered from the last snapshot's precomputed view, flagged
  ``degraded=True`` with ``stale_by_visits`` staleness — answered, not
  errored. A half-open probe closes the breaker when latency recovers.
* **Durability** — visits are WAL-appended and fsync'd *before* they
  mutate state or are acked (see ``wal``); periodic snapshots bound
  replay. ``recover()`` rebuilds state through the same ``apply`` path
  as live ingest, so a SIGKILL'd service replays to byte-identical
  state (``state_bytes()`` is the comparison surface).

Fault hooks (``repro.resilience.faults``): ``torn_wal`` kills the
service mid-append exactly as a SIGKILL would, ``crashed_snapshot``
tears a snapshot write, ``slow_consumer`` stalls the consumer to force
backpressure — all seed-deterministic via the shared fault-plan ledger.
"""
from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from dataclasses import dataclass

from ..obs import NULL_RECORDER
from ..resilience import faults
from ..vectors import get_vector
from .errors import (SHED_DEADLINE, SHED_QUEUE_FULL, SHED_STOPPING,
                     IngestAccepted, IngestShed, LookupResult,
                     MalformedVisitError, ServiceCrashed, ServiceStopped)
from .state import ServiceState
from .wal import SNAPSHOT_NAME, WAL_NAME, SnapshotStore, WriteAheadLog, read_wal

_HEX_DIGITS = frozenset("0123456789abcdef")


@dataclass(frozen=True)
class ServiceConfig:
    """Service tuning knobs; every field validated at construction."""

    queue_limit: int = 256          # bounded ingest queue (admission control)
    batch_max: int = 32             # visits per consumer wakeup (group commit)
    ingest_deadline_s: float = 2.0
    lookup_deadline_s: float = 0.25
    breaker_window: int = 32        # sliding window of lookup outcomes
    breaker_min_samples: int = 8    # don't trip on thin evidence
    breaker_threshold: float = 0.5  # miss fraction that trips
    breaker_cooldown_s: float = 0.5
    snapshot_every: int = 256       # applied visits between snapshots
    sync_every: int = 1             # WAL fsync cadence (acks always sync)

    def __post_init__(self):
        for name in ("queue_limit", "batch_max", "breaker_window",
                     "breaker_min_samples", "snapshot_every", "sync_every"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError(
                    f"{name} must be a positive integer, got {value!r}")
        for name in ("ingest_deadline_s", "lookup_deadline_s",
                     "breaker_cooldown_s"):
            value = getattr(self, name)
            if not value > 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if not 0 < self.breaker_threshold <= 1:
            raise ValueError(f"breaker_threshold must lie in (0, 1], got "
                             f"{self.breaker_threshold!r}")


class CircuitBreaker:
    """Classic three-state breaker over a sliding window of outcomes.

    closed --(miss fraction >= threshold over >= min_samples)--> open
    open --(cooldown elapses; next request probes)--> half_open
    half_open --(probe hits)--> closed / --(probe misses)--> open

    All timing via the injected monotonic clock.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, *, window: int, min_samples: int, threshold: float,
                 cooldown_s: float, clock=time.monotonic, on_transition=None):
        self.state = self.CLOSED
        self.trips = 0
        self._misses: deque = deque(maxlen=window)
        self._min_samples = min_samples
        self._threshold = threshold
        self._cooldown_s = cooldown_s
        self._clock = clock
        self._on_transition = on_transition
        self._open_until = 0.0
        self._probe_inflight = False

    def allow_live(self) -> bool:
        """May this request be served from live state? False = degrade."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() < self._open_until:
                return False
            self._transition(self.HALF_OPEN)
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record(self, miss: bool) -> None:
        """Fold one live-request outcome in (degraded answers don't count)."""
        if self.state == self.HALF_OPEN:
            self._probe_inflight = False
            if miss:
                self._trip()
            else:
                self._misses.clear()
                self._transition(self.CLOSED)
            return
        if self.state == self.OPEN:
            return  # a live request that raced the trip; already decided
        self._misses.append(bool(miss))
        if len(self._misses) >= self._min_samples \
                and sum(self._misses) / len(self._misses) >= self._threshold:
            self._trip()

    def _trip(self) -> None:
        self.trips += 1
        self._misses.clear()
        self._open_until = self._clock() + self._cooldown_s
        self._transition(self.OPEN)

    def _transition(self, to: str) -> None:
        if to != self.state:
            self.state = to
            if self._on_transition is not None:
                self._on_transition(to)


_BREAKER_EVENTS = {CircuitBreaker.OPEN: "breaker.open",
                   CircuitBreaker.HALF_OPEN: "breaker.half_open",
                   CircuitBreaker.CLOSED: "breaker.close"}


class FingerprintService:
    """The online matching service over one directory of durable state."""

    def __init__(self, directory: str, vectors=("dc", "fft"), *,
                 config: ServiceConfig | None = None,
                 recorder=NULL_RECORDER, clock=time.monotonic):
        vectors = tuple(vectors)
        if not vectors:
            raise ValueError("service must serve at least one vector")
        if len(set(vectors)) != len(vectors):
            raise ValueError(f"duplicate vector in {vectors}")
        for vector in vectors:
            get_vector(vector)  # unknown name -> UnknownVectorError
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.vectors = vectors
        self._served = frozenset(vectors)
        self.config = config if config is not None else ServiceConfig()
        self._recorder = recorder
        self._measuring = bool(getattr(recorder, "enabled", False))
        self._clock = clock
        self.state = ServiceState(vectors)
        self.wal: WriteAheadLog | None = None
        self.snapshots = SnapshotStore(os.path.join(directory, SNAPSHOT_NAME))
        self.breaker = CircuitBreaker(
            window=self.config.breaker_window,
            min_samples=self.config.breaker_min_samples,
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            clock=clock, on_transition=self._on_breaker)
        self.counts = {
            "ingested": 0, "duplicates": 0,
            "shed_queue_full": 0, "shed_deadline": 0, "shed_stopping": 0,
            "lookups": 0, "lookups_degraded": 0, "lookup_deadline_misses": 0,
            "snapshot_writes": 0, "snapshot_torn": 0,
        }
        self.recovery: dict = {}
        self.crashed: ServiceCrashed | None = None
        self._phase = "new"          # new -> running -> stopping -> stopped
        self._queue: asyncio.Queue | None = None
        self._consumer: asyncio.Task | None = None
        self._applied_at_snapshot = 0
        self._stale_view: dict = {}  # last-snapshot lookup answers
        self._stale_applied = 0

    @property
    def wal_path(self) -> str:
        return os.path.join(self.directory, WAL_NAME)

    # -- recovery --------------------------------------------------------------
    def recover(self) -> dict:
        """Rebuild state from snapshot + WAL replay (the same ``apply``
        path live ingest uses). Synchronous and side-effect-free on the
        WAL file — usable standalone (``--replay``) as well as from
        ``start()``. Returns a recovery summary dict."""
        if self._phase != "new":
            raise RuntimeError(
                f"recover() on a {self._phase} service would clobber "
                "live state; construct a fresh instance")
        self._recorder.event("replay.start")
        info = {"resumed_from_snapshot": False, "snapshot_problem": None,
                "wal_offset": 0, "replayed": 0, "wal_torn_tail": False,
                "wal_problems": []}
        snapshot, offset, problem = self.snapshots.load()
        state = None
        if snapshot is not None:
            try:
                state = ServiceState.from_state(snapshot)
            except (KeyError, TypeError, ValueError) as exc:
                self.snapshots.quarantine()
                problem = f"snapshot state rejected ({exc})"
        if state is not None and tuple(state.vectors) != self.vectors:
            raise ValueError(
                f"snapshot in {self.directory!r} serves vectors "
                f"{tuple(state.vectors)}, service configured for "
                f"{self.vectors}")
        if problem is not None:
            info["snapshot_problem"] = problem
            self._recorder.event("snapshot.corrupt_quarantine",
                                 problem=problem)
        if state is None:
            state = ServiceState(self.vectors)
            offset = 0  # no (usable) snapshot: replay the whole WAL
        else:
            info["resumed_from_snapshot"] = True
            info["wal_offset"] = offset
        records, torn, problems = read_wal(self.wal_path, offset)
        for record in records:
            state.apply(record)
        info["replayed"] = len(records)
        info["wal_torn_tail"] = torn
        info["wal_problems"] = problems
        if torn:
            self._recorder.event("wal.torn_tail")
        self.state = state
        self._applied_at_snapshot = state.applied
        self._rebuild_stale_view()
        self._recorder.event(
            "replay.end", replayed=len(records),
            resumed_from_snapshot=info["resumed_from_snapshot"])
        self.recovery = info
        return info

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        if self._phase != "new":
            raise RuntimeError(
                f"service in phase {self._phase!r} cannot start "
                "(construct a fresh instance per run)")
        self.recover()
        self.wal = WriteAheadLog(self.wal_path,
                                 sync_every=self.config.sync_every)
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._consumer = asyncio.create_task(self._consume())
        self._phase = "running"
        self._recorder.event("service.start", vectors=list(self.vectors),
                             applied=self.state.applied)

    async def stop(self) -> None:
        """Drain the queue (every accepted visit is answered), write a
        final snapshot, close the WAL."""
        if self._phase != "running":
            return
        self._phase = "stopping"
        if not self._consumer.done():
            await self._queue.put(None)  # sentinel: nothing follows it
        try:
            await self._consumer
        finally:
            self._phase = "stopped"
        if self.crashed is not None:
            # died mid-append (injected): leave the disk exactly as the
            # kill left it — recovery is the next instance's job
            return
        self.wal.close()
        self._write_snapshot()
        self._recorder.event("service.stop", applied=self.state.applied)

    # -- front door ------------------------------------------------------------
    def _validate(self, visit) -> dict:
        """Reject malformed payloads by name before they touch the
        queue, the WAL, or any state (mirrors ``run_study``'s
        validation posture)."""
        record = visit.to_record() if hasattr(visit, "to_record") \
            else dict(visit)
        for field_name in ("visit_id", "user", "os", "browser"):
            value = record.get(field_name)
            if not isinstance(value, str) or not value:
                raise MalformedVisitError(field_name,
                                          "must be a non-empty string")
        efps = record.get("efps")
        if not isinstance(efps, dict) or not efps:
            raise MalformedVisitError(
                "efps", "must be a non-empty object of vector -> eFP")
        for vector, efp in efps.items():
            if vector not in self._served:
                get_vector(vector)  # unknown name -> UnknownVectorError
                raise MalformedVisitError(
                    "efps", f"vector {vector!r} is registered but not served "
                    f"here (serving {sorted(self._served)})")
            if not (isinstance(efp, str) and len(efp) == 32
                    and set(efp) <= _HEX_DIGITS):
                raise MalformedVisitError(
                    "efps", f"{vector!r} value must be a 32-char lowercase "
                    "hex digest")
        return {"visit_id": record["visit_id"], "user": record["user"],
                "os": record["os"], "browser": record["browser"],
                "efps": dict(efps)}

    async def ingest(self, visit, *, deadline_s: float | None = None):
        """Submit one visit; resolves to ``IngestAccepted`` (durable,
        collated) or ``IngestShed`` (typed refusal). Raises only on
        caller bugs (malformed payload, stopped service)."""
        if self.crashed is not None:
            raise self.crashed
        if self._phase == "stopping":
            record = self._validate(visit)
            self.counts["shed_stopping"] += 1
            if self._measuring:
                self._recorder.count("service.shed.stopping")
                self._recorder.event("ingest.shed", reason=SHED_STOPPING,
                                     visit_id=record["visit_id"])
            return IngestShed(record["visit_id"], SHED_STOPPING)
        if self._phase != "running":
            raise ServiceStopped(f"ingest on a {self._phase} service")
        record = self._validate(visit)
        if self._queue.full():
            self.counts["shed_queue_full"] += 1
            if self._measuring:
                self._recorder.count("service.shed.queue_full")
                self._recorder.event("ingest.shed", reason=SHED_QUEUE_FULL,
                                     visit_id=record["visit_id"])
            return IngestShed(record["visit_id"], SHED_QUEUE_FULL)
        start = self._clock()
        deadline = start + (self.config.ingest_deadline_s
                            if deadline_s is None else deadline_s)
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((record, future, deadline, start))
        return await future

    async def lookup(self, user: str, *,
                     deadline_s: float | None = None) -> LookupResult:
        """Which identity is ``user``, with what anonymity set? Always
        answers: live when healthy, last-snapshot ``degraded=True``
        otherwise."""
        if self.crashed is not None:
            raise self.crashed
        if self._phase not in ("running", "stopping"):
            raise ServiceStopped(f"lookup on a {self._phase} service")
        if not isinstance(user, str) or not user:
            raise MalformedVisitError("user", "must be a non-empty string")
        self.counts["lookups"] += 1
        start = self._clock()
        deadline = start + (self.config.lookup_deadline_s
                            if deadline_s is None else deadline_s)
        if not self.breaker.allow_live():
            self.counts["lookups_degraded"] += 1
            if self._measuring:
                self._recorder.count("service.lookup.degraded")
                self._recorder.event("lookup.degraded", user=user)
            return self._stale_lookup(user, deadline_missed=False)
        found, identities, anonymity = self.state.lookup(user)
        end = self._clock()
        miss = end > deadline
        self.breaker.record(miss)
        if self._measuring:
            self._recorder.observe("service.lookup_latency_s", end - start)
        if miss:
            self.counts["lookup_deadline_misses"] += 1
            if self._measuring:
                self._recorder.count("service.lookup.deadline_miss")
                self._recorder.event("lookup.deadline_miss", user=user)
            return self._stale_lookup(user, deadline_missed=True)
        return LookupResult(user=user, found=found, identities=identities,
                            anonymity_sets=anonymity)

    # -- the consumer (sole state mutator) ------------------------------------
    async def _consume(self) -> None:
        stopping = False
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.config.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            stall = faults.slow_consumer()
            if stall:
                await asyncio.sleep(stall)
            entries = [e for e in batch if e is not None]
            stopping = stopping or len(entries) != len(batch)
            try:
                self._process(entries)
            except ServiceCrashed as exc:
                self.crashed = exc
                self._fail_queued(exc)
                return  # every awaiter got the error; nothing to re-raise
            if stopping:
                return  # the sentinel is the queue's last item by protocol

    def _process(self, entries) -> None:
        now = self._clock()
        to_apply = []
        crashed = None
        for record, future, deadline, start in entries:
            if future.done():
                continue  # awaiter went away (cancelled)
            if now > deadline:
                self.counts["shed_deadline"] += 1
                if self._measuring:
                    self._recorder.count("service.shed.deadline")
                    self._recorder.event("ingest.shed", reason=SHED_DEADLINE,
                                         visit_id=record["visit_id"])
                future.set_result(IngestShed(record["visit_id"],
                                             SHED_DEADLINE))
                continue
            if record["visit_id"] in self.state.seen:
                identities, anonymity, _, _ = self.state.apply(record)
                self.counts["duplicates"] += 1
                future.set_result(IngestAccepted(
                    record["visit_id"], record["user"], duplicate=True,
                    identities=identities, anonymity_sets=anonymity))
                continue
            try:
                self.wal.append(record)
            except ServiceCrashed as exc:
                future.set_exception(exc)
                crashed = exc
                break
            to_apply.append((record, future, start))
        if crashed is not None:
            for _, future, _, _ in entries:
                if not future.done():
                    future.set_exception(crashed)
            raise crashed
        self.wal.sync()
        # commit point: every record below is durable before it is acked
        applied = 0
        for record, future, start in to_apply:
            identities, anonymity, detections, duplicate = \
                self.state.apply(record)
            self.counts["duplicates" if duplicate else "ingested"] += 1
            applied += 1
            future.set_result(IngestAccepted(
                record["visit_id"], record["user"], duplicate=duplicate,
                identities=identities, anonymity_sets=anonymity,
                detections=detections))
            if self._measuring:
                self._recorder.observe("service.ingest_latency_s",
                                       self._clock() - start)
        if applied and self._measuring:
            self._recorder.event("ingest.batch", size=applied)
        if self.state.applied - self._applied_at_snapshot \
                >= self.config.snapshot_every:
            self._write_snapshot()

    def _fail_queued(self, exc: ServiceCrashed) -> None:
        """On an injected crash, unblock every queued awaiter the way a
        real dead process's clients are unblocked (by an error)."""
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is None:
                continue
            _, future, _, _ = item
            if not future.done():
                future.set_exception(exc)

    # -- snapshots / degradation ----------------------------------------------
    def _write_snapshot(self) -> None:
        offset = self.wal.offset if self.wal is not None else 0
        if self.snapshots.write(self.state.state_dict(), offset):
            self.counts["snapshot_writes"] += 1
            self._applied_at_snapshot = self.state.applied
            self._rebuild_stale_view()
            self._recorder.event("snapshot.write",
                                 applied=self.state.applied)
        else:
            self.counts["snapshot_torn"] += 1  # injected crashed_snapshot

    def _rebuild_stale_view(self) -> None:
        """Precompute every user's lookup answer as of now — the view
        degraded lookups serve while the breaker is open."""
        self._stale_view = {user: self.state.lookup(user)
                            for user in self.state.users()}
        self._stale_applied = self.state.applied

    def _stale_lookup(self, user: str, *, deadline_missed: bool):
        stale_by = self.state.applied - self._stale_applied
        entry = self._stale_view.get(user)
        if entry is None:
            return LookupResult(user=user, found=False, degraded=True,
                                deadline_missed=deadline_missed,
                                stale_by_visits=stale_by)
        found, identities, anonymity = entry
        return LookupResult(user=user, found=found,
                            identities=dict(identities),
                            anonymity_sets=dict(anonymity), degraded=True,
                            deadline_missed=deadline_missed,
                            stale_by_visits=stale_by)

    def _on_breaker(self, to_state: str) -> None:
        self._recorder.event(_BREAKER_EVENTS[to_state])

    # -- introspection ---------------------------------------------------------
    def state_bytes(self) -> bytes:
        """Canonical identity-state bytes — the chaos tests' comparison
        surface."""
        return self.state.canonical_bytes()

    def summary(self) -> dict:
        return {
            "vectors": list(self.vectors),
            "applied": self.state.applied,
            "users": len(self.state.contexts),
            "components": {v: self.state.collators[v].component_count
                           for v in self.vectors},
            "counts": dict(self.counts),
            "detections": dict(self.state.detections),
            "breaker": {"state": self.breaker.state,
                        "trips": self.breaker.trips},
            "recovery": dict(self.recovery),
        }
