"""CLI driver: run the matching service over a synthetic visit stream.

Ingest mode (default) renders a seeded study population inline, expands
it into the deterministic visit stream (optionally laced with spoofer /
bot traffic), and plays it through a ``FingerprintService`` anchored at
``--dir`` — WAL, snapshots and all. Because the stream is
seed-deterministic and visit ids deduplicate, *re-running the same
command after a SIGKILL* resumes from the WAL, re-ingests the stream
(already-applied visits ack as duplicates), and lands on byte-identical
final state — the property the CI chaos job checks with ``cmp``:

    python -m repro.service --dir /tmp/svc --users 12 --iterations 6 \\
        --state-out /tmp/svc-state.json
    # SIGKILL it mid-run, then run the same command again: the
    # state written the second time matches an uninterrupted run's.

Replay mode (``--replay``) performs recovery only — load snapshot,
replay WAL, write the canonical state bytes — touching nothing:

    python -m repro.service --dir /tmp/svc --replay --state-out out.json
"""
from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..io import atomic_write_text
from ..population import run_study
from .engine import FingerprintService, ServiceConfig
from .errors import IngestShed
from .traffic import visits_from_dataset


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the online fingerprint-matching service over a "
                    "deterministic synthetic visit stream.")
    parser.add_argument("--dir", required=True,
                        help="service state directory (WAL + snapshots)")
    parser.add_argument("--replay", action="store_true",
                        help="recovery only: replay WAL onto the last "
                             "snapshot and write the canonical state")
    parser.add_argument("--users", type=int, default=12)
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--vectors", nargs="+", default=["dc", "fft"])
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--spoof", type=float, default=0.0,
                        help="fraction of users spoofing their context")
    parser.add_argument("--bot", type=float, default=0.0,
                        help="fraction of users emitting headless eFPs")
    parser.add_argument("--pace", type=float, default=0.0,
                        help="sleep this many seconds between visits "
                             "(gives a chaos harness time to SIGKILL)")
    parser.add_argument("--snapshot-every", type=int, default=64)
    parser.add_argument("--state-out", default=None,
                        help="write canonical identity-state bytes here")
    parser.add_argument("--summary-out", default=None,
                        help="write the service summary JSON here")
    return parser


async def _ingest_stream(service: FingerprintService, visits,
                         pace: float) -> dict:
    await service.start()
    sheds = 0
    for visit in visits:
        result = await service.ingest(visit)
        if isinstance(result, IngestShed):
            sheds += 1
        if pace > 0:
            await asyncio.sleep(pace)
    await service.stop()
    return {"visits": len(visits), "sheds": sheds}


def _write_outputs(service: FingerprintService, summary: dict,
                   state_out, summary_out) -> None:
    if state_out:
        atomic_write_text(state_out, service.state_bytes().decode("ascii"))
    if summary_out:
        atomic_write_text(summary_out,
                          json.dumps(summary, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    config = ServiceConfig(snapshot_every=args.snapshot_every)
    service = FingerprintService(args.dir, tuple(args.vectors), config=config)

    if args.replay:
        service.recover()
        summary = service.summary()
        _write_outputs(service, summary, args.state_out, args.summary_out)
        print(json.dumps(summary, sort_keys=True))
        return 0

    dataset = run_study(args.users, args.iterations,
                        vectors=tuple(args.vectors), seed=args.seed,
                        workers=0)
    visits = visits_from_dataset(dataset, seed=args.seed,
                                 spoof_fraction=args.spoof,
                                 bot_fraction=args.bot)
    stream = asyncio.run(_ingest_stream(service, visits, args.pace))
    summary = service.summary()
    summary["stream"] = stream
    _write_outputs(service, summary, args.state_out, args.summary_out)
    print(json.dumps(summary, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
