"""Service durability: append-only WAL + atomic snapshots.

The write-ahead discipline is the classic one: a visit is appended to
the WAL and fsync'd *before* it mutates identity state or is acked, so
every acked visit survives a SIGKILL. Recovery loads the latest intact
snapshot (an atomic, dir-fsync'd whole-state document stamped with the
WAL byte offset it covers) and replays the WAL from that offset through
the same ``ServiceState.apply`` path live ingest uses — one code path,
so a replayed state is byte-identical to an uninterrupted run's by
construction.

Crash anatomy this layer absorbs:

* **Torn WAL tail** — a kill mid-append leaves a partial final line.
  Readers tolerate it (the records before it are intact) and report it;
  re-opening for append quarantines the fragment to ``<path>.corrupt``
  and resumes on a clean line boundary. The un-acked visit is simply
  re-sent by the client (visit ids deduplicate).
* **Torn snapshot** — a kill mid-snapshot (simulated by the
  ``crashed_snapshot`` fault; impossible through the atomic writer) is
  quarantined on load and recovery falls back to replaying the whole
  WAL from offset 0 — the WAL is never truncated, so the fallback is
  always complete.

WAL records are JSON with ``ensure_ascii`` (pure ASCII bytes), so
character offsets equal byte offsets — the snapshot's ``wal_offset``
can be compared against byte positions without decoding.
"""
from __future__ import annotations

import json
import os

from ..io import atomic_write_text, fsync_dir
from ..resilience import faults
from .errors import ServiceCrashed

WAL_NAME = "wal.jsonl"
SNAPSHOT_NAME = "snapshot.json"

SNAPSHOT_KIND = "repro.service.snapshot"
SNAPSHOT_FORMAT = 1


def _scan_lines(data: bytes):
    """Split ``data`` into parsed JSON records plus the torn tail.

    Returns ``(records, good_end, problems)``: ``good_end`` is the byte
    offset just past the last intact line. A final line that fails to
    parse (or trailing bytes with no newline) is the torn tail a crash
    left — reported, not fatal; an unparseable line *before* the end is
    a hard problem (the file was corrupted, not just torn).
    """
    records: list[dict] = []
    problems: list[str] = []
    good_end = 0
    start = 0
    while start < len(data):
        newline = data.find(b"\n", start)
        if newline < 0:
            problems.append(f"torn tail: {len(data) - start} bytes with no "
                            "newline")
            break
        line = data[start:newline]
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict):
                raise ValueError("not an object")
        except (ValueError, UnicodeDecodeError):
            if data.find(b"\n", newline + 1) < 0 and newline + 1 >= len(data):
                problems.append(f"torn tail: unparseable final line "
                                f"({len(line)} bytes)")
            else:
                problems.append(f"corrupt record at byte {start}")
            break
        records.append(record)
        good_end = newline + 1
        start = newline + 1
    return records, good_end, problems


def read_wal(path: str, offset: int = 0):
    """Parse WAL records starting at byte ``offset``.

    Returns ``(records, torn_tail, problems)``; a missing file is an
    empty log. ``torn_tail`` is True when the file ends in a partial
    record (tolerated — its visit was never acked)."""
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
    except FileNotFoundError:
        return [], False, []
    records, good_end, problems = _scan_lines(data)
    return records, good_end < len(data), problems


class WriteAheadLog:
    """Append-only fsync'd visit log.

    ``sync_every`` trades durability latency for throughput: appends are
    flushed immediately but fsync'd every N records (group commit); the
    engine calls ``sync()`` at each batch boundary before acking, so an
    *acked* visit is always durable regardless of the cadence.
    """

    def __init__(self, path: str, sync_every: int = 1):
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        self.path = path
        self.sync_every = sync_every
        self.torn_tail_repaired = False
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._repair_torn_tail()
        existed = os.path.exists(path)
        self._fh = open(path, "a", encoding="utf-8")
        if not existed:
            # make the log's *existence* durable, not just its bytes
            fsync_dir(directory or ".")
        self.offset = os.path.getsize(path)
        self._unsynced = 0

    def _repair_torn_tail(self) -> None:
        """Quarantine any partial final record a crash left, so appends
        resume on a clean line boundary (same repair the event log does)."""
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return
        _, good_end, _ = _scan_lines(data)
        if good_end == len(data):
            return
        with open(self.path + ".corrupt", "ab") as fh:
            fh.write(data[good_end:])
        with open(self.path, "r+b") as fh:
            fh.truncate(good_end)
            fh.flush()
            os.fsync(fh.fileno())
        self.torn_tail_repaired = True

    def append(self, record: dict) -> None:
        """Append one record (ASCII JSON line). May raise
        ``ServiceCrashed`` under an injected ``torn_wal`` fault — the
        fragment is already on disk, exactly as a SIGKILL would leave."""
        line = json.dumps(record, sort_keys=True) + "\n"
        if faults.torn_wal(self._fh, line):
            self._fh.close()
            raise ServiceCrashed("injected torn WAL append")
        self._fh.write(line)
        self._fh.flush()
        self.offset += len(line)  # ensure_ascii JSON: chars == bytes
        self._unsynced += 1
        if self._unsynced >= self.sync_every:
            self.sync()

    def sync(self) -> None:
        """fsync pending appends — the commit point acks wait behind."""
        if self._unsynced:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._unsynced = 0

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self.sync()
            self._fh.close()


class SnapshotStore:
    """The periodic whole-state snapshot bounding replay work."""

    def __init__(self, path: str):
        self.path = path

    def write(self, state: dict, wal_offset: int) -> bool:
        """Atomically persist ``state`` as covering the WAL up to
        ``wal_offset``; False when an injected ``crashed_snapshot``
        fault left a torn file instead (recovery will quarantine it and
        fall back to a full WAL replay)."""
        payload = {"kind": SNAPSHOT_KIND, "format": SNAPSHOT_FORMAT,
                   "wal_offset": int(wal_offset), "state": state}
        text = json.dumps(payload, sort_keys=True) + "\n"
        if faults.crashed_snapshot(self.path, text):
            return False
        atomic_write_text(self.path, text)
        return True

    def load(self):
        """Returns ``(state, wal_offset, problem)``.

        Missing snapshot: ``(None, 0, None)`` — replay everything. An
        unreadable/torn/malformed snapshot is quarantined to
        ``<path>.corrupt`` and reported: ``(None, 0, reason)`` — replay
        everything; the WAL is complete, so nothing is lost."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return None, 0, None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.quarantine()
            return None, 0, f"unreadable snapshot ({exc.__class__.__name__})"
        if not isinstance(payload, dict) \
                or payload.get("kind") != SNAPSHOT_KIND \
                or payload.get("format") != SNAPSHOT_FORMAT \
                or not isinstance(payload.get("state"), dict) \
                or not isinstance(payload.get("wal_offset"), int):
            self.quarantine()
            return None, 0, "malformed snapshot structure"
        return payload["state"], payload["wal_offset"], None

    def quarantine(self) -> None:
        try:
            os.replace(self.path, self.path + ".corrupt")
        except OSError:
            pass  # best-effort; the load already failed safely
