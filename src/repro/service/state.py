"""ServiceState: the one apply path live ingest and WAL replay share.

Everything the service knows is a deterministic fold over the stream of
accepted visit records: per-vector ``IncrementalCollator`` graphs, the
set of visit ids already applied (at-least-once delivery deduplicates
here), each user's first-bound claimed context (the reference the
spoofing-inconsistency check compares against), and detection counters.

Because replay calls the same ``apply`` on the same records in the same
order, a recovered service's ``canonical_bytes()`` is byte-identical to
an uninterrupted run's — that is the whole crash-recovery contract, and
the chaos tests compare exactly these bytes.
"""
from __future__ import annotations

import json

from .identity import IncrementalCollator
from .traffic import bot_efp

STATE_KIND = "repro.service.state"
STATE_FORMAT = 1

#: detection names surfaced on ingest responses (see ``traffic``)
DETECT_SPOOF = "spoof_inconsistency"
DETECT_BOT = "bot_signature"


class ServiceState:
    """The collated world as of the last applied visit."""

    __slots__ = ("vectors", "collators", "seen", "contexts", "detections",
                 "applied")

    def __init__(self, vectors):
        self.vectors = tuple(vectors)
        self.collators = {v: IncrementalCollator(v) for v in self.vectors}
        self.seen: dict[str, None] = {}          # applied visit ids, in order
        self.contexts: dict[str, list] = {}      # user -> first [os, browser]
        self.detections = {DETECT_SPOOF: 0, DETECT_BOT: 0}
        self.applied = 0

    # -- the single mutation path --------------------------------------------
    def apply(self, record: dict):
        """Fold one WAL record in (or answer a duplicate from current
        state without re-applying).

        Returns ``(identities, anonymity_sets, detections, duplicate)``
        — exactly the fields an ``IngestAccepted`` response carries.
        """
        visit_id = record["visit_id"]
        user = record["user"]
        if visit_id in self.seen:
            return (self._user_identities(user, record["efps"]),
                    self._user_anonymity(user, record["efps"]), (), True)

        detections = []
        claim = [record["os"], record["browser"]]
        bound = self.contexts.get(user)
        if bound is None:
            self.contexts[user] = claim
        elif bound != claim:
            detections.append(DETECT_SPOOF)
            self.detections[DETECT_SPOOF] += 1

        identities: dict[str, int] = {}
        anonymity: dict[str, int] = {}
        bot = False
        efps = record["efps"]
        for vector in self.vectors:
            efp = efps.get(vector)
            if efp is None:
                continue
            if efp == bot_efp(vector):
                bot = True
            collator = self.collators[vector]
            identities[vector] = collator.observe(user, efp)
            anonymity[vector] = collator.anonymity_set_size(user)
        if bot:
            detections.append(DETECT_BOT)
            self.detections[DETECT_BOT] += 1

        self.seen[visit_id] = None
        self.applied += 1
        return identities, anonymity, tuple(detections), False

    # -- read-only views ------------------------------------------------------
    def _user_identities(self, user: str, efps: dict) -> dict:
        out = {}
        for vector in self.vectors:
            if vector not in efps:
                continue
            identity = self.collators[vector].identity(user)
            if identity is not None:
                out[vector] = identity
        return out

    def _user_anonymity(self, user: str, efps: dict) -> dict:
        return {vector: self.collators[vector].anonymity_set_size(user)
                for vector in self.vectors
                if vector in efps
                and self.collators[vector].identity(user) is not None}

    def lookup(self, user: str):
        """``(found, identities, anonymity_sets)`` across all vectors."""
        identities: dict[str, int] = {}
        anonymity: dict[str, int] = {}
        for vector in self.vectors:
            collator = self.collators[vector]
            identity = collator.identity(user)
            if identity is None:
                continue
            identities[vector] = identity
            anonymity[vector] = collator.anonymity_set_size(user)
        return bool(identities), identities, anonymity

    def users(self) -> list[str]:
        """Every user observed on any vector, first-appearance order."""
        seen: dict[str, None] = {}
        for vector in self.vectors:
            for user in self.collators[vector].users():
                seen.setdefault(user, None)
        return list(seen)

    # -- canonical serialization ----------------------------------------------
    def state_dict(self) -> dict:
        return {
            "kind": STATE_KIND,
            "format": STATE_FORMAT,
            "vectors": list(self.vectors),
            "collators": {v: self.collators[v].state_dict()
                          for v in self.vectors},
            "seen": list(self.seen),
            "contexts": {u: list(c) for u, c in self.contexts.items()},
            "detections": dict(self.detections),
            "applied": self.applied,
        }

    def canonical_bytes(self) -> bytes:
        """The byte-identity surface every chaos/replay test compares."""
        return (json.dumps(self.state_dict(), sort_keys=True) + "\n").encode()

    @classmethod
    def from_state(cls, state: dict) -> "ServiceState":
        if not isinstance(state, dict) or state.get("kind") != STATE_KIND:
            raise ValueError(
                f"not a service state payload (kind "
                f"{state.get('kind')!r}, expected {STATE_KIND!r})")
        if state.get("format") != STATE_FORMAT:
            raise ValueError(
                f"service state format {state.get('format')!r} not "
                f"supported (expected {STATE_FORMAT})")
        out = cls(state["vectors"])
        for vector in out.vectors:
            out.collators[vector] = IncrementalCollator.from_state(
                state["collators"][vector])
        for visit_id in state["seen"]:
            out.seen[visit_id] = None
        out.contexts = {u: list(c) for u, c in state["contexts"].items()}
        out.detections = {DETECT_SPOOF: int(state["detections"][DETECT_SPOOF]),
                          DETECT_BOT: int(state["detections"][DETECT_BOT])}
        out.applied = int(state["applied"])
        return out
