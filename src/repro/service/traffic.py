"""Synthetic service traffic: repeat visits, spoofers, bots.

The service's workload is the paper's identification problem restated
as traffic: repeat visits from fickle eFPs that must collate to the
same user. This module turns a ``StudyDataset`` (already the per-user,
per-iteration eFP grid) into a visit stream, then layers on the two
anti-fraud classes the fingerprinting-SDK literature serves them with
(SNIPPETS.md, Snippets 2–3):

* **Spoofers** (spoofing-inconsistency): a fraudster imitating another
  environment must keep *every* claimed surface consistent — and
  doesn't. Synthetic spoofers waver: they claim their true OS/browser
  context on even visits and a decoy on odd ones, so their claimed
  context disagrees with the context already bound to their own visit
  history. The service surfaces this as a ``spoof_inconsistency``
  detection.
* **Bots** (headless signatures): headless/virtualized environments
  render a characteristic degenerate fingerprint (no real audio stack
  behind the API). Synthetic bots emit the known per-vector headless
  eFP constant — format-valid, so it passes the front door, but
  recognized and surfaced as a ``bot_signature`` detection.

Class assignment is seed-deterministic per user (one SeedSequence draw
per user index), so the same arguments always produce the same stream —
the property every replay/chaos test and the benchmark lean on.
"""
from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

_TRAFFIC_STREAM = 0x5E2  # disjoint from the sampler's and the study's

#: the per-vector headless render constant a bot emits (format-valid
#: 32-hex, deterministic, never produced by a real render path)
BOT_EFPS = {}


def bot_efp(vector: str) -> str:
    efp = BOT_EFPS.get(vector)
    if efp is None:
        efp = BOT_EFPS[vector] = hashlib.md5(
            f"headless|{vector}".encode()).hexdigest()
    return efp


#: decoy (os, browser) contexts a spoofer claims on odd visits
_DECOYS = (("windows", "chrome"), ("macos", "safari"), ("linux", "firefox"),
           ("android", "chrome"))

#: traffic class names (carried on Visit.klass for test/bench accounting)
BENIGN, SPOOFER, BOT = "benign", "spoofer", "bot"


@dataclass(frozen=True)
class Visit:
    """One arrival at the service's front door."""

    visit_id: str
    user: str                       # the user-claimed account/session key
    os: str                         # user-claimed context
    browser: str
    efps: dict = field(default_factory=dict)   # vector -> eFP draw
    klass: str = BENIGN             # ground-truth traffic class (synthetic)

    def to_record(self) -> dict:
        """The WAL record shape (ground-truth ``klass`` excluded: the
        service must *detect*, not be told)."""
        return {"visit_id": self.visit_id, "user": self.user,
                "os": self.os, "browser": self.browser,
                "efps": dict(self.efps)}


def _decoy_for(os_name: str, browser: str, pick: int) -> tuple[str, str]:
    for step in range(len(_DECOYS)):
        decoy = _DECOYS[(pick + step) % len(_DECOYS)]
        if decoy != (os_name, browser):
            return decoy
    return _DECOYS[0]  # unreachable: _DECOYS holds > 1 distinct pairs


def visits_from_dataset(dataset, *, seed: int = 0,
                        spoof_fraction: float = 0.0,
                        bot_fraction: float = 0.0,
                        interleave: bool = False) -> list[Visit]:
    """Expand a study dataset into a deterministic visit stream.

    Default order is the dataset's canonical order (user by user,
    iteration by iteration) — the order under which the service's final
    collated assignment is byte-identical to the batch analysis.
    ``interleave=True`` emits iteration-major order instead (every
    user's visit 0, then every user's visit 1, …) — same identities by
    order-independence of the collation graph, exercised by tests.

    ``spoof_fraction`` / ``bot_fraction`` assign each user to a traffic
    class with one seed-deterministic draw (spoofer wins ties); bots
    replace every eFP with the per-vector headless constant, spoofers
    claim a decoy context on odd iterations.
    """
    if spoof_fraction < 0 or bot_fraction < 0 \
            or spoof_fraction + bot_fraction > 1:
        raise ValueError(
            f"spoof_fraction + bot_fraction must lie in [0, 1], got "
            f"{spoof_fraction} + {bot_fraction}")
    users = dataset.users
    vectors = tuple(dataset.vectors)
    per_user: list[list[Visit]] = []
    for index, user in enumerate(users):
        uid, os_name, browser = user["id"], user["os"], user["browser"]
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, _TRAFFIC_STREAM, index]))
        draw = rng.random()
        decoy_pick = int(rng.integers(len(_DECOYS)))
        if draw < spoof_fraction:
            klass = SPOOFER
        elif draw < spoof_fraction + bot_fraction:
            klass = BOT
        else:
            klass = BENIGN
        decoy = _decoy_for(os_name, browser, decoy_pick)
        visits = []
        for it in range(dataset.iterations):
            if klass == BOT:
                efps = {v: bot_efp(v) for v in vectors}
            else:
                efps = {v: dataset.series[v][uid][it] for v in vectors}
            claim_os, claim_browser = (decoy if klass == SPOOFER and it % 2
                                       else (os_name, browser))
            visits.append(Visit(
                visit_id=f"{uid}#{it:04d}", user=uid,
                os=claim_os, browser=claim_browser,
                efps=efps, klass=klass))
        per_user.append(visits)
    if not interleave:
        return [v for visits in per_user for v in visits]
    return [visits[it] for it in range(dataset.iterations)
            for visits in per_user]
