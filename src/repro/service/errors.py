"""Typed responses and errors of the matching service's front door.

Two disjoint vocabularies, deliberately kept apart:

* **Errors raise.** A malformed request — wrong shape, bad eFP format,
  a vector the service does not serve — is the *caller's* bug and
  raises a named exception before the request touches the queue, the
  WAL, or any state. Unknown vector names reuse the registry's
  ``UnknownVectorError`` so service callers and ``run_study`` callers
  catch the same type for the same mistake.

* **Overload answers.** A well-formed request the service cannot honor
  right now — a full ingest queue, a blown deadline — gets a *typed
  response object* naming the reason. Load shedding is part of the
  service's contract, not an exception, and never a silent drop: every
  accepted request is eventually answered with exactly one of the types
  below.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from ..vectors.registry import UnknownVectorError  # noqa: F401  (re-export)


class MalformedVisitError(ValueError):
    """A visit payload failed front-door validation; names the field."""

    def __init__(self, field_name: str, reason: str):
        self.field = field_name
        self.reason = reason
        super().__init__(f"malformed visit: {field_name} {reason}")


class ServiceCrashed(RuntimeError):
    """An injected service fault (torn WAL append) simulating the
    process dying mid-write: the on-disk bytes are exactly what a
    SIGKILL would leave, and chaos tests treat this exception as the
    kill signal. Never raised outside fault injection."""


class ServiceStopped(RuntimeError):
    """A request arrived at a service that has been stopped."""


# -- shed reasons (the closed vocabulary of typed refusals) -------------------
SHED_QUEUE_FULL = "queue_full"
SHED_DEADLINE = "deadline_exceeded"
SHED_STOPPING = "stopping"
SHED_REASONS = frozenset({SHED_QUEUE_FULL, SHED_DEADLINE, SHED_STOPPING})


@dataclass(frozen=True)
class IngestAccepted:
    """A visit was durably logged and collated.

    ``identities`` maps each served vector present in the visit to the
    canonical collated identity (the component's minimum interned eFP
    id); ``anonymity_sets`` maps the same vectors to the number of
    distinct users currently sharing that identity. ``detections`` names
    any anti-fraud signals the visit tripped (see ``traffic``).
    """

    visit_id: str
    user: str
    duplicate: bool = False
    identities: dict = field(default_factory=dict)
    anonymity_sets: dict = field(default_factory=dict)
    detections: tuple = ()
    shed: bool = False


@dataclass(frozen=True)
class IngestShed:
    """A visit the service refused under load — typed, never silent.

    ``reason`` is one of ``SHED_REASONS``. A shed visit was NOT logged
    or collated; the caller may retry (re-sending a visit that *was*
    logged is safe — visit ids deduplicate)."""

    visit_id: str
    reason: str
    shed: bool = True


@dataclass(frozen=True)
class LookupResult:
    """The answer to "which identity is this user, how anonymous?".

    ``degraded=True`` means the answer came from the last durable
    snapshot instead of live state (circuit breaker open, or this
    request's own deadline was already blown): the identity and
    anonymity-set context may be stale by ``stale_by_visits`` applied
    visits, but the request is *answered*, not errored. ``found=False``
    means the user has never been observed (identities empty)."""

    user: str
    found: bool
    identities: dict = field(default_factory=dict)
    anonymity_sets: dict = field(default_factory=dict)
    degraded: bool = False
    deadline_missed: bool = False
    stale_by_visits: int = 0
