"""repro.service — the fault-tolerant online fingerprint-matching
service.

The batch pipeline answers "how identifiable are these users?" after
the fact; this package answers it *live*: visits stream in, identities
collate incrementally (bit-identical to the batch collation — pinned by
test), and lookups return "which identity, with what anonymity set?"
under explicit robustness contracts: bounded queues with typed load
shedding, monotonic deadlines, a circuit breaker that degrades to
last-snapshot answers instead of erroring, and WAL + snapshot
durability that replays a SIGKILL'd service to byte-identical state.

Layout: ``engine`` (asyncio service), ``identity`` (incremental
union-find), ``state`` (the shared apply path), ``wal`` (durability),
``traffic`` (synthetic visits incl. spoofer/bot classes), ``errors``
(typed responses). ``python -m repro.service`` drives it from the CLI.
"""

from .engine import CircuitBreaker, FingerprintService, ServiceConfig  # noqa: F401
from .errors import (  # noqa: F401
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    SHED_REASONS,
    SHED_STOPPING,
    IngestAccepted,
    IngestShed,
    LookupResult,
    MalformedVisitError,
    ServiceCrashed,
    ServiceStopped,
    UnknownVectorError,
)
from .identity import IncrementalCollator  # noqa: F401
from .state import ServiceState  # noqa: F401
from .traffic import BENIGN, BOT, SPOOFER, Visit, bot_efp, visits_from_dataset  # noqa: F401
from .wal import SnapshotStore, WriteAheadLog, read_wal  # noqa: F401

__all__ = [
    "FingerprintService",
    "ServiceConfig",
    "CircuitBreaker",
    "ServiceState",
    "IncrementalCollator",
    "WriteAheadLog",
    "SnapshotStore",
    "read_wal",
    "Visit",
    "visits_from_dataset",
    "bot_efp",
    "BENIGN",
    "SPOOFER",
    "BOT",
    "IngestAccepted",
    "IngestShed",
    "LookupResult",
    "MalformedVisitError",
    "ServiceCrashed",
    "ServiceStopped",
    "UnknownVectorError",
    "SHED_QUEUE_FULL",
    "SHED_DEADLINE",
    "SHED_STOPPING",
    "SHED_REASONS",
]
