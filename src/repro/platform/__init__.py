"""repro.platform — the simulated diversity source.

A fingerprint is a pure function of the *platform stack* (math backend,
FFT backend, compressor variant, sample rate) plus the per-iteration
jitter sub-path — never of the user. That purity is what the
equivalence-class render cache exploits (see DESIGN.md).
"""

from .mathlib import MathBackend, MATH_BACKENDS, get_math_backend  # noqa: F401
from .stacks import (AudioStack, COMPRESSOR_VARIANTS, RENDER_TIERS,  # noqa: F401
                     default_stack_pool)
from .jitter import (  # noqa: F401
    REFERENCE_PATH,
    JitterPath,
    parse_path,
    sample_path,
    sample_load,
)
from .browsers import UAStack, sample_ua  # noqa: F401
from .canvas_stack import CanvasStack, sample_canvas  # noqa: F401
from .font_stack import FontStack, sample_fonts  # noqa: F401

__all__ = [
    "MathBackend",
    "MATH_BACKENDS",
    "get_math_backend",
    "AudioStack",
    "COMPRESSOR_VARIANTS",
    "RENDER_TIERS",
    "default_stack_pool",
    "REFERENCE_PATH",
    "JitterPath",
    "parse_path",
    "sample_path",
    "sample_load",
    "UAStack",
    "sample_ua",
    "CanvasStack",
    "sample_canvas",
    "FontStack",
    "sample_fonts",
]
