"""Font-enumeration stack: the frozen installed-font identity.

The fonts comparator (paper Table 3) probes which of a candidate list of
font families render distinctly — effectively the set of installed
fonts. We model that as a per-OS base set (what the OS ships) plus
independent optional *packs* (office suites, design tools, language
packs, developer fonts), each present with its own probability. The
resulting power-set structure is what gives the fonts vector its high
diversity while staying strongly OS-correlated, matching the survey's
entropy framing.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: fonts every device of an OS family reports
BASE_FONTS: dict[str, tuple[str, ...]] = {
    "Windows": ("Arial", "Calibri", "Cambria", "Consolas", "Georgia",
                "Segoe UI", "Tahoma", "Times New Roman", "Verdana"),
    "macOS": ("Avenir", "Geneva", "Gill Sans", "Helvetica",
              "Helvetica Neue", "Menlo", "Monaco", "San Francisco",
              "Times"),
    "Android": ("Droid Sans Mono", "Noto Sans", "Noto Serif", "Roboto",
                "Roboto Condensed"),
    "Linux": ("Cantarell", "DejaVu Sans", "DejaVu Serif",
              "Liberation Mono", "Liberation Sans", "Ubuntu"),
}

#: optional packs: (pack fonts, install probability). Draw order is the
#: tuple order below — one rng.random() per pack per user, always.
FONT_PACKS: tuple[tuple[tuple[str, ...], float], ...] = (
    (("Office Pro", "Book Antiqua", "Century Gothic"), 0.62),
    (("Garamond", "Palatino Linotype"), 0.50),
    (("Source Sans Pro", "Source Code Pro"), 0.44),
    (("Fira Code", "Fira Sans"), 0.38),
    (("Adobe Caslon Pro", "Minion Pro"), 0.32),
    (("Lato", "Open Sans"), 0.28),
    (("Noto Color Emoji",), 0.22),
    (("PT Sans", "PT Serif"), 0.15),
    (("Comic Neue",), 0.08),
)


@dataclass(frozen=True)
class FontStack:
    """The frozen font identity: a sorted tuple of installed families."""

    fonts: tuple[str, ...]

    def cache_key(self) -> str:
        return "fonts|" + ",".join(self.fonts)


def sample_fonts(rng: np.random.Generator, os_name: str,
                 browser: str) -> FontStack:
    """Draw a font identity conditional on the device's OS.

    Exactly ``len(FONT_PACKS)`` uniform draws from the caller's per-user
    stream (one per pack, in pack order), regardless of outcomes — the
    draw count never depends on earlier packs, keeping downstream draws
    aligned across devices of the same (os, browser)."""
    del browser  # enumeration sees the OS font dirs, not the browser
    installed = list(BASE_FONTS[os_name])
    for pack, probability in FONT_PACKS:
        if rng.random() < probability:
            installed.extend(pack)
    return FontStack(fonts=tuple(sorted(installed)))
