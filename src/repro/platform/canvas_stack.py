"""Canvas-fingerprint stack: the frozen render identity of 2D canvas.

The canvas comparator (paper Table 3) is the highest-diversity signal in
the battery: a drawn-text + shapes probe hashes differently across GPU,
driver, rasterizer and antialiasing combinations. We model that identity
as a frozen stack of exactly those axes, sampled conditionally on the
device's OS (GPU pools are OS-specific; the text rasterizer follows the
platform's font engine), so canvas diversity is correlated with — but
much finer than — the audio-stack identity. The canvas *vector* then
fingerprints a pure function of this stack.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .browsers import pick_weighted

#: GPU models per OS family, head-first (value, weight)
GPU_POOLS: dict[str, list[tuple[str, float]]] = {
    "Windows": [
        ("NVIDIA GeForce GTX 1650", 9.0), ("NVIDIA GeForce GTX 1060", 8.0),
        ("NVIDIA GeForce RTX 3060", 7.0), ("NVIDIA GeForce RTX 2060", 6.0),
        ("Intel UHD Graphics 630", 8.0), ("Intel UHD Graphics 620", 6.0),
        ("Intel Iris Xe Graphics", 5.0), ("Intel HD Graphics 520", 3.0),
        ("AMD Radeon RX 580", 4.0), ("AMD Radeon RX 6600", 2.5),
        ("AMD Radeon Vega 8", 2.5), ("NVIDIA GeForce GTX 960M", 1.5),
        ("NVIDIA GeForce RTX 3080", 1.5), ("AMD Radeon R7 240", 0.7),
    ],
    "macOS": [
        ("Apple M1", 10.0), ("Apple M1 Pro", 5.0), ("Apple M2", 4.0),
        ("Intel Iris Plus Graphics 655", 3.5), ("Intel UHD Graphics 630", 3.0),
        ("AMD Radeon Pro 5500M", 2.0), ("Intel Iris Plus Graphics 640", 1.5),
        ("AMD Radeon Pro 560X", 1.0),
    ],
    "Android": [
        ("Mali-G78 MP20", 6.0), ("Adreno 730", 6.0), ("Adreno 660", 5.0),
        ("Mali-G77 MP11", 4.0), ("Adreno 650", 4.0), ("Adreno 640", 3.0),
        ("Mali-G72 MP18", 2.0), ("Adreno 618", 2.0),
        ("PowerVR GE8320", 1.0),
    ],
    "Linux": [
        ("Mesa Intel UHD Graphics 620", 6.0), ("Mesa Intel Iris Xe", 4.0),
        ("NVIDIA GeForce GTX 1060/PCIe/SSE2", 4.0),
        ("AMD Radeon RX 580 (polaris10)", 3.0),
        ("Mesa Intel HD Graphics 520", 2.0), ("llvmpipe (LLVM 12.0.0)", 1.0),
        ("NVIDIA GeForce RTX 3060/PCIe/SSE2", 1.0),
    ],
}

#: graphics driver release per OS family (value, weight)
DRIVER_POOLS: dict[str, list[tuple[str, float]]] = {
    "Windows": [
        ("31.0.15.1694", 10.0), ("30.0.15.1403", 7.0), ("30.0.14.7212", 5.0),
        ("27.20.100.9664", 4.0), ("26.20.100.7985", 2.0), ("21.19.137.1", 1.0),
    ],
    "macOS": [
        ("Metal-76.3", 10.0), ("Metal-71.7", 5.0), ("Metal-61.1", 2.5),
        ("OpenGL-4.1-compat", 1.0),
    ],
    "Android": [
        ("vulkan-1.3.204", 8.0), ("vulkan-1.1.128", 6.0),
        ("gles-3.2-v@415.0", 4.0), ("gles-3.2-v@331.0", 2.0),
        ("gles-3.1-v@145.0", 1.0),
    ],
    "Linux": [
        ("Mesa 22.0.5", 8.0), ("Mesa 21.2.6", 5.0), ("nvidia-515.65.01", 3.0),
        ("nvidia-470.141.03", 2.0), ("Mesa 20.3.5", 1.5),
    ],
}

#: text antialiasing mode (value, weight) — browser+platform dependent
ANTIALIAS_MODES: list[tuple[str, float]] = [
    ("subpixel-rgb", 10.0), ("grayscale", 6.0), ("subpixel-bgr", 1.5),
]

#: platform font-rasterizer engine per OS family
FONT_ENGINES: dict[str, list[tuple[str, float]]] = {
    "Windows": [("directwrite", 12.0), ("gdi", 1.5)],
    "macOS": [("coretext", 1.0)],
    "Android": [("freetype-hinted", 6.0), ("freetype-unhinted", 2.0)],
    "Linux": [("freetype-hinted", 5.0), ("freetype-unhinted", 3.0),
              ("freetype-autohint", 2.0)],
}


@dataclass(frozen=True)
class CanvasStack:
    """The frozen canvas render identity of one device."""

    os: str
    gpu: str
    driver: str
    font_engine: str
    antialias: str

    def cache_key(self) -> str:
        return "|".join(("canvas", self.os, self.gpu, self.driver,
                         self.font_engine, self.antialias))

    def probe_payload(self) -> str:
        """The deterministic stand-in for the drawn probe's pixel bytes:
        every identity axis concatenated in render order (what a real
        toDataURL hash is a function of)."""
        return ";".join(("canvas-probe-v1", self.os, self.gpu, self.driver,
                         self.font_engine, self.antialias))


def sample_canvas(rng: np.random.Generator, os_name: str,
                  browser: str) -> CanvasStack:
    """Draw a canvas identity conditional on the device's OS.

    Exactly four weighted draws (gpu, driver, font engine, antialias) in
    fixed order from the caller's per-user stream. ``browser`` reserves
    the hook for engine-specific pools; current pools key on OS only.
    """
    del browser  # correlation via OS is enough for the current model
    gpu = pick_weighted(rng, GPU_POOLS[os_name])
    driver = pick_weighted(rng, DRIVER_POOLS[os_name])
    engine = pick_weighted(rng, FONT_ENGINES[os_name])
    antialias = pick_weighted(rng, ANTIALIAS_MODES)
    return CanvasStack(os=os_name, gpu=gpu, driver=driver,
                       font_engine=engine, antialias=antialias)
