"""Per-iteration load/perturbation model — the fickleness mechanism.

A jitter *path* is the analyser sub-path a single iteration takes, encoded
as a compact stable string like ``"t2.d1.m0.p1"``:

  t<k>  readout timing bucket: the analyser's window shifts back k*64 frames
  d1    denormal flush-to-zero on the windowed frames
  m1    fused-multiply contraction (one-ulp scale on the windowed frames)
  p1    float32 precision truncation of the windowed frames

The reference path ``t0.d0.m0.p0`` is the unloaded machine. Vectors that
never touch the analyser (DC) ignore the path entirely — which is why DC
is bit-stable across iterations while the FFT-family vectors are fickle,
reproducing Table 1's starkest feature with no special-casing.

The path string is part of the render-cache key, so fickleness costs one
extra render per *path actually taken*, not one per iteration.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

REFERENCE_PATH = "t0.d0.m0.p0"

_DENORM_THRESHOLD = 1e-12
_FMA_SCALE = 1.0 + 2.0 ** -50


@dataclass(frozen=True)
class JitterPath:
    timing_bucket: int = 0
    denormal_flush: bool = False
    fused_multiply: bool = False
    f32_precision: bool = False

    def encode(self) -> str:
        return (f"t{self.timing_bucket}.d{int(self.denormal_flush)}"
                f".m{int(self.fused_multiply)}.p{int(self.f32_precision)}")

    @property
    def readout_offset(self) -> int:
        return self.timing_bucket * 64

    def transform(self, frames: np.ndarray) -> np.ndarray:
        y = frames
        if self.denormal_flush:
            y = np.where(np.abs(y) < _DENORM_THRESHOLD, 0.0, y)
        if self.fused_multiply:
            y = y * _FMA_SCALE
        if self.f32_precision:
            y = y.astype(np.float32).astype(np.float64)
        return y


def parse_path(path: str) -> JitterPath:
    try:
        t, d, m, p = path.split(".")
        return JitterPath(int(t[1:]), d == "d1", m == "m1", p == "p1")
    except Exception:
        raise ValueError(f"malformed jitter path {path!r}") from None


def sample_load(rng: np.random.Generator) -> float:
    """Per-user CPU load level in [0, 1): most users lightly loaded, a tail
    heavily loaded (the users the paper sees leaving 20+ distinct prints)."""
    return float(rng.beta(1.3, 3.5) * 0.9)


def _draw_perturbed(rng: np.random.Generator) -> str:
    return JitterPath(
        timing_bucket=int(rng.integers(0, 4)),
        denormal_flush=bool(rng.random() < 0.5),
        fused_multiply=bool(rng.random() < 0.5),
        f32_precision=bool(rng.random() < 0.3),
    ).encode()


def sample_repertoire(rng: np.random.Generator, load: float) -> list[str]:
    """A user's characteristic perturbation states.

    Real load jitter is not memoryless: a given machine under load keeps
    revisiting the same few scheduler/precision states, so each user owns
    a small repertoire (bigger for heavier load) that its iterations draw
    from. This is also what keeps the equivalence-class count — and with
    it the render cache — tiny at study scale.
    """
    size = 1 + int(round(load * 6.0))
    return [_draw_perturbed(rng) for _ in range(size)]


def sample_path(rng: np.random.Generator, load: float,
                repertoire: list[str] | None = None) -> str:
    """One iteration's sub-path. Unloaded -> reference; loaded machines take
    a perturbed sub-path (from their repertoire, if given) with probability
    proportional to load."""
    if rng.random() >= load:
        return REFERENCE_PATH
    if repertoire:
        return repertoire[int(rng.integers(len(repertoire)))]
    return _draw_perturbed(rng)
