"""AudioStack: the frozen, hashable render identity.

Two devices produce bit-identical audio fingerprints exactly when their
stacks are equal, so ``cache_key()`` is a content address for renders:
the study runner dedups its user x iteration grid down to distinct
(vector, cache_key, jitter_path) classes and renders each class once.

Invalidation rule: ENGINE_VERSION is folded into every key; any change to
a node's DSP bumps it and orphans all previously cached renders.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..webaudio import ENGINE_VERSION
from ..webaudio.config import RENDER_BACKENDS, CompressorParams, EngineConfig
from ..webaudio.fft import get_fft_backend
from .mathlib import get_math_backend

#: Execution-tier axis values (webaudio.config.RENDER_BACKENDS): "numpy" is
#: the reference tier every existing fingerprint was rendered on; "jit" is
#: the numba/native tier, a deliberately distinct numeric identity.
RENDER_TIERS = RENDER_BACKENDS

#: Compressor tuning forks across engine families (spec defaults + deltas).
COMPRESSOR_VARIANTS = {
    "blink": CompressorParams(),
    "blink-mobile": CompressorParams(attack_s=0.0035, release_s=0.24),
    "gecko": CompressorParams(knee_db=28.0, attack_s=0.004),
    "webkit": CompressorParams(knee_db=32.0, release_s=0.22),
}


@dataclass(frozen=True)
class AudioStack:
    """Everything render-relevant about a device's audio pipeline."""

    engine: str               # browser engine family ("blink", "gecko", "webkit")
    math_backend: str         # key into platform.mathlib.MATH_BACKENDS
    fft_backend: str          # key into webaudio.fft.FFT_BACKENDS
    compressor_variant: str   # key into COMPRESSOR_VARIANTS
    sample_rate: int = 44100
    channel_count: int = 1
    #: execution tier (RENDER_TIERS): "numpy" keeps the historical key
    #: layout so every cached render stays valid; any other tier is a new
    #: equivalence class and gets its own key component
    render_tier: str = "numpy"

    def cache_key(self) -> str:
        parts = [
            f"e{ENGINE_VERSION}",
            self.engine,
            self.math_backend,
            self.fft_backend,
            self.compressor_variant,
            str(self.sample_rate),
            str(self.channel_count),
        ]
        if self.render_tier != "numpy":
            parts.append(self.render_tier)
        return "|".join(parts)

    def realize(self, jitter=None) -> EngineConfig:
        """Build the EngineConfig this stack denotes (optionally jittered)."""
        if self.render_tier not in RENDER_TIERS:
            raise KeyError(f"unknown render tier {self.render_tier!r}; "
                           f"have {list(RENDER_TIERS)}")
        return EngineConfig(
            math=get_math_backend(self.math_backend),
            fft=get_fft_backend(self.fft_backend),
            compressor=COMPRESSOR_VARIANTS[self.compressor_variant],
            jitter_transform=jitter.transform if jitter is not None else None,
            readout_offset=jitter.readout_offset if jitter is not None else 0,
            render_backend=self.render_tier,
        )


#: (stack, os, browser, popularity weight) — ordered head-first; the sampler
#: layers a Zipf skew on top, so the Windows/Chromium head collapses to a
#: couple of equivalence classes exactly as in the paper's Table 5.
_POOL: list[tuple[AudioStack, str, str, float]] = [
    (AudioStack("blink", "ucrt", "radix2", "blink", 44100), "Windows", "Chrome", 46.0),
    (AudioStack("blink", "ucrt", "radix2", "blink", 48000), "Windows", "Chrome", 18.0),
    # Edge shares Chrome's entire stack -> same cache key, same fingerprint
    (AudioStack("blink", "ucrt", "radix2", "blink", 48000), "Windows", "Edge", 6.0),
    (AudioStack("blink", "ucrt-sse2", "radix2", "blink", 44100), "Windows", "Chrome", 4.0),
    (AudioStack("gecko", "fdlibm", "splitradix", "gecko", 44100), "Windows", "Firefox", 4.0),
    (AudioStack("gecko", "fdlibm", "splitradix", "gecko", 48000), "Windows", "Firefox", 2.0),
    (AudioStack("blink", "apple-libm", "numpy", "blink", 44100), "macOS", "Chrome", 3.0),
    (AudioStack("blink", "apple-libm", "numpy", "blink", 48000), "macOS", "Chrome", 2.0),
    (AudioStack("webkit", "apple-libm", "bluestein", "webkit", 44100), "macOS", "Safari", 2.0),
    (AudioStack("webkit", "apple-libm", "bluestein", "webkit", 48000), "macOS", "Safari", 1.0),
    (AudioStack("gecko", "apple-libm", "splitradix", "gecko", 48000), "macOS", "Firefox", 0.8),
    (AudioStack("blink", "bionic", "radix2", "blink-mobile", 48000), "Android", "Chrome", 3.5),
    (AudioStack("blink", "bionic", "radix2", "blink-mobile", 44100), "Android", "Chrome", 1.5),
    (AudioStack("blink", "bionic", "numpy", "blink-mobile", 48000), "Android", "Chrome", 0.8),
    (AudioStack("blink", "glibc", "radix2", "blink", 48000), "Linux", "Chrome", 2.0),
    (AudioStack("blink", "glibc-avx2", "radix2", "blink", 48000), "Linux", "Chrome", 0.9),
    (AudioStack("gecko", "glibc", "splitradix", "gecko", 44100), "Linux", "Firefox", 1.2),
    (AudioStack("gecko", "glibc", "splitradix", "gecko", 48000), "Linux", "Firefox", 0.7),
    (AudioStack("gecko", "musl", "splitradix", "gecko", 44100), "Linux", "Firefox", 0.3),
    (AudioStack("blink", "musl", "radix2", "blink", 44100), "Linux", "Chrome", 0.4),
    # long tail: rarer build x backend combinations
    (AudioStack("blink", "glibc", "numpy", "blink", 44100), "Linux", "Chrome", 0.3),
    (AudioStack("webkit", "apple-libm", "numpy", "webkit", 44100), "macOS", "Safari", 0.3),
    (AudioStack("gecko", "ucrt", "splitradix", "gecko", 44100), "Windows", "Firefox", 0.5),
    (AudioStack("blink", "ucrt", "bluestein", "blink", 44100), "Windows", "Chrome", 0.4),
    (AudioStack("blink", "glibc-avx2", "bluestein", "blink", 44100), "Linux", "Chrome", 0.2),
    (AudioStack("webkit", "fdlibm", "bluestein", "webkit", 44100), "macOS", "Safari", 0.2),
]


def default_stack_pool() -> list[tuple[AudioStack, str, str, float]]:
    """The calibrated pool: (stack, os, browser, weight) rows, head-first."""
    return list(_POOL)
