"""Math-library variants: ulp-level perturbed transcendentals.

Real platforms differ in the last bits of sin/exp/pow/tanh (different libm
builds, SIMD paths, polynomial orders). We model a build as a deterministic
ulp shift applied to the reference result: multiplying by (1 + k*2^-52)
moves the significand by ~k ulps, which after the compressor's
nonlinearity is exactly the kind of divergence that separates real
browser fingerprints. Vectorized; applies to whole blocks.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_ULP = 2.0 ** -52


@dataclass(frozen=True)
class MathBackend:
    name: str
    ulp_shift: int = 0

    def _perturb(self, y):
        if self.ulp_shift == 0:
            return y
        return y * (1.0 + self.ulp_shift * _ULP)

    def sin(self, x):
        return self._perturb(np.sin(x))

    def cos(self, x):
        return self._perturb(np.cos(x))

    def exp(self, x):
        return self._perturb(np.exp(x))

    def log10(self, x):
        return self._perturb(np.log10(x))

    def pow(self, x, y):
        return self._perturb(np.power(x, y))

    def tanh(self, x):
        return self._perturb(np.tanh(x))


#: Named builds, one per (OS, toolchain) family the population model uses.
MATH_BACKENDS = {
    backend.name: backend
    for backend in (
        MathBackend("ucrt", 0),          # Windows universal CRT (reference)
        MathBackend("glibc", 1),         # Linux glibc 2.3x
        MathBackend("glibc-avx2", 2),    # glibc with vectorized SIMD path
        MathBackend("apple-libm", -2),   # macOS system libm
        MathBackend("bionic", 3),        # Android bionic
        MathBackend("musl", 5),          # musl-based builds
        MathBackend("ucrt-sse2", 4),     # older Windows SSE2 path
        MathBackend("fdlibm", -4),       # Firefox's fdlibm-derived fallback
    )
}


def get_math_backend(name: str) -> MathBackend:
    try:
        return MATH_BACKENDS[name]
    except KeyError:
        raise KeyError(f"unknown math backend {name!r}; have {sorted(MATH_BACKENDS)}") from None
