"""Browser/OS metadata and User-Agent synthesis.

The UA comparator vector (paper Table 3) needs a realistic *diversity
model*, not real header strings: what matters is the joint distribution
of (OS, OS build, browser, browser version) and its correlation with the
platform stack — the sampler draws the build/version axes conditionally
on the (os, browser) marginal the audio stack pool already fixed, so UA
identity is correlated with (but strictly finer than) audio identity,
exactly the structure the additive-value analysis measures.

Version pools are head-heavy (auto-update concentrates mass on the
current release train) with a long tail of stragglers; OS build pools
model the slower OS upgrade cadence. All draws go through
``pick_weighted``: one ``rng.random()`` per draw against a cumulative
table, deterministic given the caller's per-user stream.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def pick_weighted(rng: np.random.Generator, table) -> str:
    """One weighted draw from ``[(value, weight), ...]`` — a single
    ``rng.random()`` against the table's cumulative distribution, so the
    caller's stream advances by exactly one draw per pick."""
    weights = np.array([w for _, w in table], dtype=np.float64)
    cdf = np.cumsum(weights / weights.sum())
    index = min(int(np.searchsorted(cdf, rng.random(), side="right")),
                len(table) - 1)
    return table[index][0]


#: browser release trains, head-first (value, weight)
BROWSER_VERSIONS: dict[str, list[tuple[str, float]]] = {
    "Chrome": [
        ("104.0.5112.102", 24.0), ("104.0.5112.81", 14.0),
        ("103.0.5060.134", 12.0), ("103.0.5060.114", 8.0),
        ("102.0.5005.115", 7.0), ("102.0.5005.63", 4.0),
        ("101.0.4951.67", 3.5), ("100.0.4896.127", 2.5),
        ("99.0.4844.84", 1.5), ("98.0.4758.102", 1.0),
        ("96.0.4664.110", 0.8), ("94.0.4606.81", 0.5),
    ],
    "Edge": [
        ("104.0.1293.63", 22.0), ("104.0.1293.47", 12.0),
        ("103.0.1264.77", 10.0), ("103.0.1264.62", 6.0),
        ("102.0.1245.44", 4.0), ("101.0.1210.53", 2.0),
        ("100.0.1185.50", 1.0), ("98.0.1108.62", 0.5),
    ],
    "Firefox": [
        ("103.0", 22.0), ("103.0.2", 10.0), ("102.0", 9.0),
        ("102.0.1", 6.0), ("101.0.1", 4.0), ("100.0.2", 2.5),
        ("99.0.1", 1.5), ("91.13.0", 1.2), ("78.15.0", 0.4),
    ],
    "Safari": [
        ("15.6", 20.0), ("15.5", 10.0), ("15.4", 6.0), ("15.3", 3.0),
        ("14.1.2", 2.5), ("13.1.2", 1.0),
    ],
}

#: OS build/device strings per OS family, head-first (value, weight)
OS_BUILDS: dict[str, list[tuple[str, float]]] = {
    "Windows": [
        ("Windows NT 10.0; Win64; x64", 46.0),
        ("Windows NT 10.0; WOW64", 6.0),
        ("Windows NT 10.0; Win64; x64; 22H2", 12.0),
        ("Windows NT 10.0; Win64; x64; 21H2", 8.0),
        ("Windows NT 6.3; Win64; x64", 2.0),
        ("Windows NT 6.1; Win64; x64", 1.5),
    ],
    "macOS": [
        ("Macintosh; Intel Mac OS X 10_15_7", 16.0),
        ("Macintosh; Intel Mac OS X 12_5", 10.0),
        ("Macintosh; Intel Mac OS X 12_4", 6.0),
        ("Macintosh; Intel Mac OS X 11_6_8", 4.0),
        ("Macintosh; Intel Mac OS X 12_5_1", 3.0),
        ("Macintosh; Intel Mac OS X 10_14_6", 1.5),
        ("Macintosh; Intel Mac OS X 10_13_6", 0.6),
    ],
    "Android": [
        ("Linux; Android 12; Pixel 6", 8.0),
        ("Linux; Android 12; SM-G991B", 7.0),
        ("Linux; Android 11; SM-A515F", 6.0),
        ("Linux; Android 11; Pixel 4a", 4.0),
        ("Linux; Android 12; SM-S908B", 3.5),
        ("Linux; Android 10; SM-G973F", 3.0),
        ("Linux; Android 11; M2101K6G", 2.0),
        ("Linux; Android 9; SM-J530F", 1.0),
    ],
    "Linux": [
        ("X11; Linux x86_64", 14.0),
        ("X11; Ubuntu; Linux x86_64", 8.0),
        ("X11; Fedora; Linux x86_64", 3.0),
        ("X11; Linux i686", 0.6),
    ],
}


@dataclass(frozen=True)
class UAStack:
    """The frozen UA identity of one device (comparator-vector stack)."""

    os: str
    os_build: str
    browser: str
    browser_version: str

    def cache_key(self) -> str:
        return "|".join(("ua", self.os, self.os_build, self.browser,
                         self.browser_version))

    def ua_string(self) -> str:
        """Synthesize the header string this identity would send."""
        if self.browser == "Firefox":
            major = self.browser_version.split(".")[0]
            return (f"Mozilla/5.0 ({self.os_build}; rv:{major}.0) "
                    f"Gecko/20100101 Firefox/{self.browser_version}")
        if self.browser == "Safari":
            return (f"Mozilla/5.0 ({self.os_build}) AppleWebKit/605.1.15 "
                    f"(KHTML, like Gecko) Version/{self.browser_version} "
                    f"Safari/605.1.15")
        tail = (f"AppleWebKit/537.36 (KHTML, like Gecko) "
                f"Chrome/{self.browser_version} Safari/537.36")
        if self.browser == "Edge":
            major = self.browser_version.split(".")[0]
            return (f"Mozilla/5.0 ({self.os_build}) {tail} "
                    f"Edg/{self.browser_version}"
                    .replace(f"Chrome/{self.browser_version}",
                             f"Chrome/{major}.0.0.0"))
        mobile = " Mobile" if self.os == "Android" else ""
        return (f"Mozilla/5.0 ({self.os_build}) "
                f"AppleWebKit/537.36 (KHTML, like Gecko) "
                f"Chrome/{self.browser_version}{mobile} Safari/537.36")


def sample_ua(rng: np.random.Generator, os_name: str,
              browser: str) -> UAStack:
    """Draw a UA identity conditional on the device's (os, browser).

    Exactly two weighted draws (build, then version) from the caller's
    per-user stream, in fixed order."""
    build = pick_weighted(rng, OS_BUILDS[os_name])
    version = pick_weighted(rng, BROWSER_VERSIONS[browser])
    return UAStack(os=os_name, os_build=build, browser=browser,
                   browser_version=version)
