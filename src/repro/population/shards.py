"""Sharded, streaming studies: million-user scale under bounded memory.

``run_study`` materializes the whole grid and dataset in RAM — fine at
the paper's 2,093 users, not at the north star's millions. This module
partitions the population into deterministic, independently seeded
shards and renders them one at a time through the exact machinery the
monolithic driver uses (`_plan` / `_render_classes` — supervision,
retry, bisection, checkpoint-resume, chaos hooks all included), then
streams each shard's per-user series to disk instead of holding them:

  shard_<start>_<stop>.jsonl           one compact JSON record per user
  shard_<start>_<stop>.manifest.json   the commit point: study
                                       fingerprint, shard range,
                                       ENGINE_VERSION, byte count,
                                       record count, sha256 of the data

Peak RSS is O(shard_size + distinct classes), independent of the total
user count — the render cache is shared across shards, so the classes a
later shard needs are almost always already rendered.

Determinism is the load-bearing property: population sampling and
per-user jitter streams are both seeded by *global user index*
(``sample_population_slice`` / ``_plan(first_index=...)``), so a shard
renders exactly the series the monolithic run would produce for those
users, bit for bit, regardless of how the population is partitioned.
The analysis layer exploits this: per-shard mergeable reports
(``repro.analysis.shards``) merge to the byte-identical analysis report
the monolithic path emits — ``benchmarks/bench_shard_scale.py`` gates
both the RSS bound and that bit-identity.

Crash safety: each shard's data file is written through the atomic
chunk writer (complete file or no file), and the manifest is written
*after* the data — a manifest on disk is proof its shard is complete
and hashed. Mid-shard crashes resume from the shard's render checkpoint
(stamped with the shard range, so one shard's checkpoint can never
resume another's); a shard whose bytes no longer match its manifest is
quarantined to ``*.corrupt`` and raises ``ShardIntegrityError`` (or is
transparently re-rendered when encountered during a resumed run).
"""
from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from ..io import atomic_write_chunks, atomic_write_json, atomic_write_text
from ..obs import EventLog, NULL_RECORDER, Recorder
from ..resilience import study_fingerprint
from ..webaudio import ENGINE_VERSION
from .cache import RenderCache
from .dataset import StudyDataset
from .sampler import sample_population_slice
from .study import (_CHECKPOINT_EVERY, _keyed_to_render, _load_resume,
                    _plan, _render_classes, _resolve_workers,
                    _validate_study_args)

SHARD_KIND = "repro.study.shard"
SHARD_FORMAT = 1


class ShardIntegrityError(ValueError):
    """A shard's on-disk bytes no longer match its manifest (torn,
    truncated, or bit-rotted data). The offending files are quarantined
    to ``*.corrupt`` before this is raised, so a retry starts clean."""


# -- shard geometry -----------------------------------------------------------

def shard_ranges(user_count: int, shard_size: int) -> list[tuple[int, int]]:
    """Partition ``[0, user_count)`` into ``shard_size``-user ranges (the
    last shard takes the remainder)."""
    if not isinstance(shard_size, int) or isinstance(shard_size, bool) \
            or shard_size <= 0:
        raise ValueError(f"shard_size must be a positive integer, "
                         f"got {shard_size!r}")
    return [(start, min(start + shard_size, user_count))
            for start in range(0, user_count, shard_size)]


def _validate_ranges(ranges, user_count: int) -> list[tuple[int, int]]:
    """Validate explicit shard ranges: integer bounds inside the
    population, non-empty, non-overlapping. Returns them sorted by
    start. (Full-partition coverage is a *merge-time* requirement —
    rendering a subset of shards is how distributed runs divide work.)"""
    if not ranges:
        raise ValueError("ranges must be non-empty")
    cleaned = []
    for r in ranges:
        try:
            start, stop = r
        except (TypeError, ValueError):
            raise ValueError(f"shard range {r!r} is not a (start, stop) "
                             "pair") from None
        if not all(isinstance(v, int) and not isinstance(v, bool)
                   for v in (start, stop)):
            raise ValueError(f"shard range {r!r} must hold integers")
        if start >= stop:
            raise ValueError(f"shard range ({start}, {stop}) is empty")
        if start < 0 or stop > user_count:
            raise ValueError(f"shard range ({start}, {stop}) falls outside "
                             f"the population [0, {user_count})")
        cleaned.append((start, stop))
    cleaned.sort()
    for (_, prev_stop), (start, stop) in zip(cleaned, cleaned[1:]):
        if start < prev_stop:
            raise ValueError(f"shard ranges overlap: ({start}, {stop}) "
                             f"starts before {prev_stop}")
    return cleaned


def shard_stem(start: int, stop: int) -> str:
    return f"shard_{start:08d}_{stop:08d}"


@dataclass(frozen=True)
class ShardPaths:
    """Every on-disk artefact one shard owns."""
    data: str
    manifest: str
    report: str
    checkpoint: str

    @classmethod
    def in_dir(cls, out_dir: str, start: int, stop: int) -> "ShardPaths":
        stem = os.path.join(out_dir, shard_stem(start, stop))
        report = os.path.join(
            out_dir, f"shard_report_{start:08d}_{stop:08d}.json")
        return cls(data=stem + ".jsonl", manifest=stem + ".manifest.json",
                   report=report, checkpoint=stem + ".ckpt")


# -- shard data format --------------------------------------------------------

def _record_lines(dataset: StudyDataset, start: int):
    """One compact, deterministic JSONL line per user.

    Insertion order is preserved (no ``sort_keys``): the record layout is
    already deterministic, and keeping ``Device.describe()``'s key order
    means a reassembled dataset serializes byte-identically to one the
    monolithic driver built."""
    for row, (uid, user) in enumerate(zip(dataset.user_ids(), dataset.users)):
        record = {
            "i": start + row,
            "user": user,
            "series": {vector: dataset.series[vector][uid]
                       for vector in dataset.vectors},
        }
        yield json.dumps(record, separators=(",", ":")) + "\n"


def write_shard(paths: ShardPaths, study: dict, index: int, start: int,
                stop: int, dataset: StudyDataset) -> dict:
    """Stream one shard's records to disk and commit its manifest.

    The data file goes through the atomic chunk writer (sha256 and byte
    count computed while streaming); the manifest is written only after
    the data file is in place — its presence is the completion marker a
    resumed run trusts.
    """
    digest = hashlib.sha256()
    counted = {"records": 0, "bytes": 0}

    def _chunks():
        for line in _record_lines(dataset, start):
            raw = line.encode("utf-8")
            digest.update(raw)
            counted["records"] += 1
            counted["bytes"] += len(raw)
            yield line

    atomic_write_chunks(paths.data, _chunks())
    manifest = {
        "kind": SHARD_KIND,
        "format": SHARD_FORMAT,
        "study": dict(study),
        "engine_version": ENGINE_VERSION,
        "shard": {"index": index, "start": start, "stop": stop,
                  "users": stop - start},
        "data": {"file": os.path.basename(paths.data),
                 "bytes": counted["bytes"],
                 "sha256": digest.hexdigest(),
                 "records": counted["records"]},
    }
    atomic_write_json(paths.manifest, manifest, indent=2, sort_keys=True)
    return manifest


def _quarantine_shard(paths: ShardPaths) -> list[str]:
    """Move a shard's data+manifest aside; best-effort, returns what moved."""
    moved = []
    for path in (paths.data, paths.manifest):
        try:
            os.replace(path, path + ".corrupt")
            moved.append(path + ".corrupt")
        except OSError:
            pass
    return moved


def load_manifest(manifest_path: str):
    """Parse and structurally validate a shard manifest; ``None`` if the
    file does not exist. A malformed manifest quarantines the shard and
    raises ``ShardIntegrityError`` naming the problem."""
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        paths = _paths_for_manifest(manifest_path)
        _quarantine_shard(paths)
        raise ShardIntegrityError(
            f"shard manifest {manifest_path} is unreadable "
            f"({exc.__class__.__name__}); shard quarantined") from None
    problems = _manifest_problems(payload)
    if problems:
        paths = _paths_for_manifest(manifest_path)
        _quarantine_shard(paths)
        raise ShardIntegrityError(
            f"shard manifest {manifest_path} is malformed "
            f"({'; '.join(problems)}); shard quarantined")
    return payload


def _manifest_problems(payload) -> list[str]:
    problems = []
    if not isinstance(payload, dict):
        return ["not a JSON object"]
    if payload.get("kind") != SHARD_KIND:
        problems.append(f"kind is {payload.get('kind')!r}")
    if payload.get("format") != SHARD_FORMAT:
        problems.append(f"format is {payload.get('format')!r}")
    if not isinstance(payload.get("study"), dict):
        problems.append("study fingerprint missing")
    shard = payload.get("shard")
    if not isinstance(shard, dict) or not all(
            isinstance(shard.get(k), int) and not isinstance(shard.get(k), bool)
            for k in ("start", "stop", "users")):
        problems.append("shard range missing or malformed")
    data = payload.get("data")
    if not isinstance(data, dict) or not isinstance(data.get("file"), str) \
            or not isinstance(data.get("sha256"), str) \
            or not all(isinstance(data.get(k), int) for k in
                       ("bytes", "records")):
        problems.append("data section missing or malformed")
    if not isinstance(payload.get("engine_version"), str):
        problems.append("engine_version missing")
    return problems


def _paths_for_manifest(manifest_path: str) -> ShardPaths:
    base = manifest_path[:-len(".manifest.json")] \
        if manifest_path.endswith(".manifest.json") else manifest_path
    return ShardPaths(data=base + ".jsonl", manifest=manifest_path,
                      report="", checkpoint="")


def verify_shard_data(paths: ShardPaths, manifest: dict) -> None:
    """Check the data file against its manifest stamp (size + sha256);
    quarantine and raise ``ShardIntegrityError`` on any mismatch — a
    torn or truncated shard must never flow into a merge silently."""
    stamp = manifest["data"]
    stem = os.path.basename(paths.data)
    try:
        size = os.path.getsize(paths.data)
    except OSError:
        _quarantine_shard(paths)
        raise ShardIntegrityError(
            f"shard {stem}: manifest present but data file missing; "
            "shard quarantined") from None
    if size != stamp["bytes"]:
        _quarantine_shard(paths)
        raise ShardIntegrityError(
            f"shard {stem}: data file is {size} bytes, manifest stamped "
            f"{stamp['bytes']} (torn or truncated); shard quarantined")
    digest = hashlib.sha256()
    with open(paths.data, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    if digest.hexdigest() != stamp["sha256"]:
        _quarantine_shard(paths)
        raise ShardIntegrityError(
            f"shard {stem}: data sha256 {digest.hexdigest()[:12]}… does not "
            f"match manifest {stamp['sha256'][:12]}…; shard quarantined")


def check_shard_study(manifest: dict, study: dict, manifest_path: str,
                      expected_range: tuple[int, int] | None = None) -> None:
    """Reject a manifest that belongs to a different study or engine.

    Mixing shards across seeds, populations, or ENGINE_VERSIONs would
    silently poison a merged analysis, so each mismatch is a
    ``ValueError`` naming the offending field.
    """
    theirs = manifest["study"]
    for name in ("seed", "user_count", "iterations", "vectors"):
        if theirs.get(name) != study[name]:
            raise ValueError(
                f"shard manifest {manifest_path} belongs to a different "
                f"study: {name} is {theirs.get(name)!r}, this run has "
                f"{study[name]!r}")
    if manifest["engine_version"] != ENGINE_VERSION:
        raise ValueError(
            f"shard manifest {manifest_path} was rendered by engine_version "
            f"{manifest['engine_version']!r} but this build is "
            f"{ENGINE_VERSION!r} — delete the shard (or re-render the study) "
            "so versions never mix")
    if expected_range is not None:
        got = (manifest["shard"]["start"], manifest["shard"]["stop"])
        if got != tuple(expected_range):
            raise ValueError(
                f"shard manifest {manifest_path} covers range {got}, "
                f"expected {tuple(expected_range)}")


def iter_shard_records(data_path: str):
    """Yield the shard's user records (call after ``verify_shard_data``)."""
    with open(data_path, "r", encoding="utf-8") as fh:
        for line in fh:
            yield json.loads(line)


def load_shard(manifest_path: str, study: dict | None = None):
    """Load one completed shard: ``(manifest, records)``.

    Verifies data integrity first (quarantining on failure) and, when
    ``study`` is given, that the shard belongs to it.
    """
    manifest = load_manifest(manifest_path)
    if manifest is None:
        raise FileNotFoundError(f"no shard manifest at {manifest_path}")
    paths = _paths_for_manifest(manifest_path)
    verify_shard_data(paths, manifest)
    if study is not None:
        check_shard_study(manifest, study, manifest_path)
    return manifest, list(iter_shard_records(paths.data))


def dataset_from_records(manifest: dict, records: list[dict]) -> StudyDataset:
    """Rebuild one shard's (shard-sized) ``StudyDataset`` from records."""
    study = manifest["study"]
    shard = manifest["shard"]
    if len(records) != shard["users"]:
        raise ShardIntegrityError(
            f"shard covering [{shard['start']}, {shard['stop']}) holds "
            f"{len(records)} records, expected {shard['users']}")
    vectors = tuple(study["vectors"])
    users = []
    series: dict[str, dict[str, list[str]]] = {v: {} for v in vectors}
    for offset, record in enumerate(records):
        if record.get("i") != shard["start"] + offset:
            raise ShardIntegrityError(
                f"shard record {offset} is user index {record.get('i')!r}, "
                f"expected {shard['start'] + offset} (records out of order)")
        user = record["user"]
        users.append(user)
        for vector in vectors:
            series[vector][user["id"]] = record["series"][vector]
    return StudyDataset(seed=study["seed"], user_count=len(users),
                        iterations=study["iterations"], vectors=vectors,
                        users=users, series=series)


def combine_shards(manifest_paths: list[str],
                   study: dict | None = None) -> StudyDataset:
    """Reassemble the full monolithic dataset from a complete shard set.

    A convenience for tests / small-scale verification — it holds the
    whole population in memory, which is exactly what sharding exists to
    avoid; production analysis goes through the mergeable shard reports
    instead.
    """
    loaded = [load_shard(path, study) for path in manifest_paths]
    loaded.sort(key=lambda pair: pair[0]["shard"]["start"])
    if not loaded:
        raise ValueError("no shards to combine")
    base = loaded[0][0]["study"]
    expect = 0
    for manifest, _ in loaded:
        check_shard_study(manifest, base, "combine_shards input")
        if manifest["shard"]["start"] != expect:
            raise ValueError(
                f"shards do not form a partition: expected a shard starting "
                f"at {expect}, got {manifest['shard']['start']}")
        expect = manifest["shard"]["stop"]
    if expect != base["user_count"]:
        raise ValueError(
            f"shards cover [0, {expect}) but the study has "
            f"{base['user_count']} users")
    users = []
    vectors = tuple(base["vectors"])
    series: dict[str, dict[str, list[str]]] = {v: {} for v in vectors}
    for manifest, records in loaded:
        part = dataset_from_records(manifest, records)
        users.extend(part.users)
        for vector in vectors:
            series[vector].update(part.series[vector])
    return StudyDataset(seed=base["seed"], user_count=len(users),
                        iterations=base["iterations"], vectors=vectors,
                        users=users, series=series)


# -- the sharded driver -------------------------------------------------------

@dataclass
class ShardResult:
    """One shard's outcome within a sharded run."""
    index: int
    start: int
    stop: int
    paths: ShardPaths
    resumed: bool = False
    requarantined: bool = False
    classes: int = 0


@dataclass
class ShardedStudy:
    """What ``run_study_sharded`` returns: where everything landed."""
    out_dir: str
    user_count: int
    iterations: int
    vectors: tuple[str, ...]
    seed: int
    shards: list[ShardResult] = field(default_factory=list)
    merged_report_path: str | None = None

    def manifest_paths(self) -> list[str]:
        return [s.paths.manifest for s in self.shards]

    def shard_report_paths(self) -> list[str]:
        return [s.paths.report for s in self.shards]

    def to_dataset(self) -> StudyDataset:
        """Reassemble the monolithic dataset (small scales only)."""
        study = study_fingerprint(self.seed, self.user_count,
                                  self.iterations, self.vectors)
        return combine_shards(self.manifest_paths(), study)


def _merge_resilience(summaries: list[dict], checkpoint_info: dict) -> dict:
    """Fold per-shard supervisor summaries into one report-shaped block
    (sums match the recorder's counters, which also accumulated across
    shards — the report validator cross-checks exactly that)."""
    retry_keys = ("attempts", "retries", "timeouts", "crashes",
                  "worker_errors", "corrupt_returns", "bisections")
    retry = {key: sum(s["retry"][key] for s in summaries)
             for key in retry_keys}
    quarantined: set[str] = set()
    for s in summaries:
        quarantined.update(s["retry"]["quarantined"])
    retry["quarantined"] = sorted(quarantined)
    retry["budget"] = {
        "limit": max((s["retry"]["budget"]["limit"] for s in summaries),
                     default=0),
        "spent": sum(s["retry"]["budget"]["spent"] for s in summaries),
        "exhausted": any(s["retry"]["budget"]["exhausted"]
                         for s in summaries),
    }
    return {
        "retry": retry,
        "degraded": {
            "pool_rebuilds": sum(s["degraded"]["pool_rebuilds"]
                                 for s in summaries),
            "inline_fallback": any(s["degraded"]["inline_fallback"]
                                   for s in summaries),
        },
        "checkpoint": checkpoint_info,
    }


def run_study_sharded(user_count: int, shard_size: int | None,
                      out_dir: str, *, iterations: int = 30,
                      vectors: tuple[str, ...] = ("dc", "fft", "hybrid"),
                      seed: int = 2021,
                      ranges: list[tuple[int, int]] | None = None,
                      cache: RenderCache | None = None,
                      workers: int | None = None, recorder=None,
                      report_path: str | None = None,
                      batched: bool = True,
                      checkpoint_every: int = _CHECKPOINT_EVERY,
                      retry_policy=None, retry_budget: int | None = None,
                      event_log_path: str | None = None,
                      progress=False, resume: bool = True,
                      analyze: bool = True) -> ShardedStudy:
    """Render the study sharded, streaming results to ``out_dir``.

    Arguments mirror ``run_study`` (same validation, same defaults, same
    supervision/chaos/telemetry semantics per shard), plus:

    ``shard_size``: users per shard; the population ``[0, user_count)``
    is partitioned into ``ceil(user_count / shard_size)`` ranges. Pass
    ``ranges`` (a list of non-overlapping ``(start, stop)`` ranges) to
    render an explicit subset instead — how a distributed run divides
    shards between machines — in which case ``shard_size`` is ignored
    and may be None.
    ``resume``: a shard whose manifest already exists (same study
    fingerprint, same ENGINE_VERSION, data bytes intact) is skipped; a
    shard whose data fails its integrity check is quarantined to
    ``*.corrupt`` and re-rendered; a manifest from a *different* study
    or engine version raises ``ValueError`` naming the field.
    Mid-shard crashes resume from the shard's render checkpoint.
    ``analyze``: also write each shard's mergeable analysis report
    (``shard_report_*.json``) and, when the rendered ranges form the
    full partition, the merged analysis report (``analysis.json``) —
    byte-identical to what the monolithic path produces.

    The render cache is shared across shards, so equivalence classes
    are rendered once per *study*, not once per shard. Peak memory is
    O(shard_size + distinct classes): no full-population dataset ever
    exists in this process.
    """
    _validate_study_args(user_count, iterations, vectors, workers,
                         checkpoint_every)
    if ranges is None:
        ranges = shard_ranges(user_count, shard_size)
    else:
        ranges = _validate_ranges(ranges, user_count)
    vectors = tuple(vectors)

    if recorder is None:
        recorder = Recorder() if (report_path is not None
                                  or event_log_path is not None) \
            else NULL_RECORDER
    measuring = recorder.enabled
    if cache is None:
        cache = RenderCache()
    event_log = None
    if event_log_path is not None and measuring:
        event_log = EventLog(event_log_path)
        recorder.attach_event_log(event_log)
    cache.attach_recorder(recorder)
    try:
        return _run_study_sharded(
            user_count, out_dir, iterations, vectors, seed, ranges, cache,
            workers, recorder, measuring, report_path, batched,
            checkpoint_every, retry_policy, retry_budget, event_log_path,
            progress, resume, analyze)
    finally:
        cache.detach_recorder()
        if event_log is not None:
            recorder.detach_event_log()
            event_log.close()


def _run_study_sharded(user_count, out_dir, iterations, vectors, seed,
                       ranges, cache, workers, recorder, measuring,
                       report_path, batched, checkpoint_every, retry_policy,
                       retry_budget, event_log_path, progress, resume,
                       analyze) -> ShardedStudy:
    workers, requested_workers, cpu = _resolve_workers(workers)
    result = ShardedStudy(out_dir=out_dir, user_count=user_count,
                          iterations=iterations, vectors=vectors, seed=seed)
    recorder.event("study.start", users=user_count, iterations=iterations,
                   vectors=list(vectors), seed=seed, batched=batched,
                   workers=workers, sharded=True, shards=len(ranges))

    # phase "plan" covers the *shard geometry* — per-shard population
    # sampling and grid planning happen inside each shard's render (that
    # locality is the whole point: no full-population plan ever exists)
    recorder.event("phase.start", phase="plan")
    with recorder.span("plan", users=user_count, iterations=iterations,
                       vectors=list(vectors), shards=len(ranges)):
        os.makedirs(out_dir, exist_ok=True)
        study = study_fingerprint(seed, user_count, iterations, vectors)
    recorder.event("phase.end", phase="plan")

    checkpoint_info = {"enabled": True, "writes": 0, "torn_writes": 0,
                       "resumed_classes": 0, "corrupt_recoveries": 0}
    summaries: list[dict] = []
    seen_classes: set[str] = set()
    grid_items = 0
    rendered_classes = 0
    any_pooled = False
    shard_reports: list[dict] = []

    recorder.event("phase.start", phase="render")
    with recorder.span("render", shards=len(ranges)):
        grid_items, rendered_classes, any_pooled = _render_shards(
            ranges, result, study, user_count, iterations, vectors, seed,
            cache, workers, requested_workers, recorder, measuring, batched,
            checkpoint_every, checkpoint_info, retry_policy, retry_budget,
            progress, resume, analyze, summaries, seen_classes,
            shard_reports)
    recorder.event("phase.end", phase="render")

    recorder.event("phase.start", phase="assemble")
    with recorder.span("assemble"):
        is_partition = ranges[0][0] == 0 and ranges[-1][1] == user_count \
            and all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))
        if analyze and is_partition:
            from ..analysis.shards import (dumps_shard_or_merged,
                                           merge_shard_reports)
            merged = merge_shard_reports(shard_reports)
            merged_path = os.path.join(out_dir, "analysis.json")
            atomic_write_text(merged_path, dumps_shard_or_merged(merged))
            result.merged_report_path = merged_path
    recorder.event("phase.end", phase="assemble")

    recorder.event("study.end", grid_items=grid_items,
                   distinct_classes=len(seen_classes),
                   rendered=rendered_classes, shards=len(ranges))

    if report_path is not None:
        from ..obs.report import build_report
        resilience_info = _merge_resilience(summaries, checkpoint_info) \
            if summaries else {"checkpoint": checkpoint_info}
        if measuring:
            busy = recorder.histograms.get("pool.task_wall_s")
            busy_s = busy.total if busy else 0.0
            pool_info = {
                "workers": workers, "pooled": any_pooled,
                "jobs": int(recorder.counters.get("pool.jobs", 0)),
                "requested": (requested_workers
                              if requested_workers is not None else workers),
                "cpu_count": cpu, "batched": batched, "supervised": True,
                "rebuilds": resilience_info.get("degraded", {}).get(
                    "pool_rebuilds", 0),
                "busy_s": round(busy_s, 6),
                "utilization": None,
            }
        else:
            pool_info = None
        workload = {"users": user_count, "iterations": iterations,
                    "vectors": list(vectors), "seed": seed,
                    "grid_items": grid_items,
                    "distinct_classes": len(seen_classes),
                    "shards": len(ranges)}
        report = build_report(recorder, workload, cache_stats=cache.stats(),
                              pool=pool_info, resilience=resilience_info,
                              events_path=event_log_path)
        atomic_write_json(report_path, report, indent=2)
    return result


def _render_shards(ranges, result, study, user_count, iterations, vectors,
                   seed, cache, workers, requested_workers, recorder,
                   measuring, batched, checkpoint_every, checkpoint_info,
                   retry_policy, retry_budget, progress, resume, analyze,
                   summaries, seen_classes, shard_reports):
    """The shard loop: render (or resume) each range, stream it to disk,
    commit its manifest, and (optionally) write its mergeable report."""
    out_dir = result.out_dir
    grid_items = 0
    rendered_classes = 0
    any_pooled = False
    for index, (start, stop) in enumerate(ranges):
        paths = ShardPaths.in_dir(out_dir, start, stop)
        shard_result = ShardResult(index=index, start=start, stop=stop,
                                   paths=paths)
        result.shards.append(shard_result)

        manifest = None
        if resume:
            try:
                manifest = load_manifest(paths.manifest)
                if manifest is not None:
                    check_shard_study(manifest, study, paths.manifest,
                                      expected_range=(start, stop))
                    verify_shard_data(paths, manifest)
            except ShardIntegrityError as exc:
                # quarantined by the checker; render the shard fresh
                shard_result.requarantined = True
                recorder.count("shard.quarantined")
                recorder.event("shard.quarantine", shard=index,
                               start=start, stop=stop, problem=str(exc))
                manifest = None
        if manifest is not None:
            shard_result.resumed = True
            recorder.count("shard.resumed")
            recorder.event("shard.resume", shard=index, start=start,
                           stop=stop, records=manifest["data"]["records"])
            if analyze:
                shard_reports.append(_ensure_shard_report(paths, manifest))
            continue

        recorder.event("shard.start", shard=index, start=start, stop=stop)
        with recorder.span("shard", index=index, start=start, stop=stop) \
                as shard_span:
            devices = sample_population_slice(user_count, seed, start, stop)
            item_keys, classes = _plan(devices, vectors, iterations, seed,
                                       first_index=start)
            grid_items += sum(len(k) for k in item_keys.values())
            seen_classes.update(classes)
            shard_result.classes = len(classes)
            shard_fp = dict(study, shard=[start, stop])
            resumed = _load_resume(paths.checkpoint, shard_fp, classes,
                                   recorder, checkpoint_info)
            keyed = _keyed_to_render(cache, item_keys, classes, resumed,
                                     recorder)
            rendered, supervisor, job_count, pooled = _render_classes(
                keyed, batched=batched, measuring=measuring,
                recorder=recorder, cache=cache, seed=seed, workers=workers,
                requested_workers=requested_workers, fingerprint=shard_fp,
                checkpoint_path=paths.checkpoint,
                checkpoint_every=checkpoint_every,
                checkpoint_info=checkpoint_info, retry_policy=retry_policy,
                retry_budget=retry_budget, progress=progress,
                resumed=resumed)
            summaries.append(supervisor.summary())
            rendered_classes += len(keyed)
            any_pooled = any_pooled or pooled
            if measuring:
                recorder.count("pool.jobs", job_count)
                shard_span.set(users=stop - start,
                               distinct_classes=len(classes),
                               rendered=len(keyed))

            lookup = rendered.__getitem__ if cache.disabled else cache.get
            dataset = StudyDataset(
                seed=seed, user_count=len(devices), iterations=iterations,
                vectors=vectors, users=[d.describe() for d in devices])
            for vector_name in vectors:
                dataset.series[vector_name] = {}
            for (vector_name, user_id), keys in item_keys.items():
                dataset.series[vector_name][user_id] = \
                    [lookup(key) for key in keys]
            manifest = write_shard(paths, study, index, start, stop, dataset)
            try:
                os.remove(paths.checkpoint)  # the manifest supersedes it
            except OSError:
                pass
            if analyze:
                shard_reports.append(
                    _build_and_write_shard_report(paths, manifest, dataset))
        recorder.count("shard.completed")
        recorder.event("shard.end", shard=index, start=start, stop=stop,
                       records=manifest["data"]["records"],
                       classes=len(classes))
    return grid_items, rendered_classes, any_pooled


def _build_and_write_shard_report(paths: ShardPaths, manifest: dict,
                                  dataset: StudyDataset) -> dict:
    from ..analysis.shards import build_shard_report, dumps_shard_or_merged
    report = build_shard_report(dataset, manifest)
    atomic_write_text(paths.report, dumps_shard_or_merged(report))
    return report


def _ensure_shard_report(paths: ShardPaths, manifest: dict) -> dict:
    """Reuse a resumed shard's report when present and sound, else
    rebuild it from the shard records (reports are pure functions of the
    shard data, so either way the merge sees identical bytes)."""
    from ..analysis.shards import validate_shard_report
    try:
        with open(paths.report, "r", encoding="utf-8") as fh:
            report = json.load(fh)
        if not validate_shard_report(report) \
                and report.get("study") == manifest["study"] \
                and report.get("shard") == manifest["shard"]:
            return report
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        pass
    records = list(iter_shard_records(paths.data))
    dataset = dataset_from_records(manifest, records)
    return _build_and_write_shard_report(paths, manifest, dataset)
