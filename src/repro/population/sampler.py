"""Seeded population sampler.

Devices are drawn from the calibrated stack pool with a Zipf-style skew
layered on the pool's base weights, so a handful of stacks dominate (the
Windows/Chromium collapse) while a long tail supplies the diversity the
paper measures. Fully deterministic given the seed.

Every user owns an independent rng stream seeded by ``(seed, stream,
user_index)`` — the same construction the study driver uses for jitter
paths — so the population is *sliceable*: ``sample_population_slice``
produces exactly the devices a full draw would assign to that index
range, in O(slice) work, without replaying any other user's draws. That
is what lets a sharded study sample only its own users yet stay
bit-identical to the monolithic run (and what makes device identity
independent of the total population size: growing the study never
reshuffles existing users).
"""
from __future__ import annotations

import numpy as np

from ..platform.browsers import sample_ua
from ..platform.canvas_stack import sample_canvas
from ..platform.font_stack import sample_fonts
from ..platform.jitter import sample_load
from ..platform.stacks import default_stack_pool
from .device import Device

_SAMPLER_STREAM = 0x5AD  # keeps the sampler's draws disjoint from the study's


def _pool_cdf():
    """The stack pool plus its skewed pick CDF (computed once per call
    site, shared by every user in the slice)."""
    pool = default_stack_pool()
    base = np.array([w for (_, _, _, w) in pool], dtype=np.float64)
    zipf = 1.0 / np.power(np.arange(1, len(pool) + 1, dtype=np.float64), 0.35)
    weights = base * zipf
    weights /= weights.sum()
    return pool, np.cumsum(weights)


def _device_rng(seed: int, index: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence([seed, _SAMPLER_STREAM, index]))


def sample_population_slice(user_count: int, seed: int, start: int,
                            stop: int) -> list[Device]:
    """Sample users ``[start, stop)`` of a ``user_count``-user population.

    Bit-identical to ``sample_population(user_count, seed)[start:stop]``
    at O(stop - start) cost: each user's draws come from their own
    index-seeded stream, so no other user's stream is consumed.
    """
    if not isinstance(user_count, int) or isinstance(user_count, bool) \
            or user_count <= 0:
        raise ValueError(f"user_count must be a positive integer, "
                         f"got {user_count!r}")
    if not 0 <= start < stop <= user_count:
        raise ValueError(f"slice [{start}, {stop}) is not a non-empty "
                         f"sub-range of [0, {user_count})")
    pool, cdf = _pool_cdf()
    devices = []
    for i in range(start, stop):
        rng = _device_rng(seed, i)
        pick = min(int(np.searchsorted(cdf, rng.random(), side="right")),
                   len(pool) - 1)
        stack, os_name, browser, _ = pool[pick]
        # draw order is frozen: stack pick, load, then the comparator
        # stacks — appending the UA/canvas/fonts draws AFTER the original
        # two keeps every pre-existing device field (and with it every
        # cached audio eFP) bit-identical to older populations
        load = sample_load(rng)
        devices.append(Device(
            user_id=f"u{i:05d}",
            stack=stack,
            os=os_name,
            browser=browser,
            load=load,
            ua=sample_ua(rng, os_name, browser),
            canvas=sample_canvas(rng, os_name, browser),
            fonts=sample_fonts(rng, os_name, browser),
        ))
    return devices


def sample_population(user_count: int, seed: int = 2021) -> list[Device]:
    return sample_population_slice(user_count, seed, 0, user_count)
