"""Seeded population sampler.

Devices are drawn from the calibrated stack pool with a Zipf-style skew
layered on the pool's base weights, so a handful of stacks dominate (the
Windows/Chromium collapse) while a long tail supplies the diversity the
paper measures. Fully deterministic given the seed.
"""
from __future__ import annotations

import numpy as np

from ..platform.jitter import sample_load
from ..platform.stacks import default_stack_pool
from .device import Device

_SAMPLER_STREAM = 0x5AD  # keeps the sampler's draws disjoint from the study's


def sample_population(user_count: int, seed: int = 2021) -> list[Device]:
    if user_count <= 0:
        raise ValueError("user_count must be positive")
    rng = np.random.default_rng(np.random.SeedSequence([seed, _SAMPLER_STREAM]))
    pool = default_stack_pool()
    base = np.array([w for (_, _, _, w) in pool], dtype=np.float64)
    zipf = 1.0 / np.power(np.arange(1, len(pool) + 1, dtype=np.float64), 0.35)
    weights = base * zipf
    weights /= weights.sum()

    picks = rng.choice(len(pool), size=user_count, p=weights)
    devices = []
    for i, pick in enumerate(picks):
        stack, os_name, browser, _ = pool[pick]
        devices.append(Device(
            user_id=f"u{i:05d}",
            stack=stack,
            os=os_name,
            browser=browser,
            load=sample_load(rng),
        ))
    return devices
