"""run_study: the deduplicating, cache-backed study driver.

The paper's headline workload is 2093 users x 30 iterations x 7 vectors
(~440k renders). Because every eFP is a pure function of (vector, stack,
jitter path), the grid collapses to its distinct equivalence classes:

  1. PLAN     — sample the population, then deterministically pre-draw every
                iteration's jitter path (cheap, no DSP), producing the full
                item grid plus the set of distinct class keys.
  2. RENDER   — probe the cache once per class; fan the misses out over a
                ProcessPoolExecutor (pure functions -> order-independent,
                bit-identical to serial), then fill the cache.
  3. ASSEMBLE — build the per-user series by cache lookup only.

With the cache disabled the driver degrades to the honest baseline: one
real render per grid item. ``bench_render_perf.py`` measures the gap.
"""
from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..platform.jitter import sample_path, sample_repertoire
from ..platform.stacks import AudioStack
from ..vectors.registry import get_vector
from .cache import RenderCache
from .dataset import StudyDataset
from .device import Device
from .sampler import sample_population

_STUDY_STREAM = 0x57D  # per-user jitter streams, disjoint from the sampler's
_POOL_THRESHOLD = 24   # below this many misses, process-pool overhead loses


def _user_rng(seed: int, user_index: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([seed, _STUDY_STREAM, user_index]))


def _render_class(job: tuple[str, str, AudioStack, str]) -> tuple[str, str]:
    """Pool worker: render one equivalence class. Top-level for pickling."""
    key, vector_name, stack, path = job
    return key, get_vector(vector_name).render(stack, path)


def _plan(devices: list[Device], vectors: tuple[str, ...], iterations: int,
          seed: int):
    """Pre-draw all jitter paths; return per-item keys and the class table.

    Analyser-free vectors draw nothing from the rng, so adding/removing
    them never shifts another vector's jitter stream.
    """
    item_keys: dict[tuple[str, str], list[str]] = {}   # (vector, user_id) -> keys
    classes: dict[str, tuple[str, AudioStack, str]] = {}
    for index, device in enumerate(devices):
        rng = _user_rng(seed, index)
        stack_key = device.stack.cache_key()
        repertoire = sample_repertoire(rng, device.load)
        for vector_name in vectors:
            vector = get_vector(vector_name)
            keys = []
            for _ in range(iterations):
                if vector.uses_analyser:
                    path = sample_path(rng, device.load, repertoire)
                else:
                    path = vector.canonical_path(None)
                key = RenderCache.make_key(vector_name, stack_key, path)
                keys.append(key)
                if key not in classes:
                    classes[key] = (vector_name, device.stack, path)
            item_keys[(vector_name, device.user_id)] = keys
    return item_keys, classes


def _render_jobs(jobs, workers: int):
    """Render (key, vector, stack, path) jobs, pooled when it pays off."""
    if workers and workers > 1 and len(jobs) >= _POOL_THRESHOLD:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunk = max(1, len(jobs) // (workers * 4))
            yield from pool.map(_render_class, jobs, chunksize=chunk)
    else:
        for job in jobs:
            yield _render_class(job)


def run_study(user_count: int, iterations: int = 30,
              vectors: tuple[str, ...] = ("dc", "fft", "hybrid"),
              seed: int = 2021, cache: RenderCache | None = None,
              workers: int | None = None) -> StudyDataset:
    """Run the synthetic study and return its dataset.

    ``workers``: None = auto (cpu count, capped at 8), 0 = render inline.
    Results are bit-identical regardless of worker count or cache state.
    """
    for name in vectors:
        get_vector(name)  # fail fast on unknown vectors
    if cache is None:
        cache = RenderCache()
    devices = sample_population(user_count, seed)
    item_keys, classes = _plan(devices, tuple(vectors), iterations, seed)

    if workers is None:
        workers = min(os.cpu_count() or 1, 8)

    if cache.disabled:
        # honest baseline: one real render per grid item, same pool config
        # as the cached path so benchmark speedups isolate the cache
        jobs = [(key, *classes[key])
                for keys in item_keys.values() for key in keys]
        cache.misses += len(jobs)
        rendered = dict(_render_jobs(jobs, workers))
        lookup = rendered.__getitem__
    else:
        missing = [key for key in classes if cache.get(key) is None]
        jobs = [(key, *classes[key]) for key in missing]
        for key, efp in _render_jobs(jobs, workers):
            cache.put(key, efp)
        lookup = cache.get

    dataset = StudyDataset(
        seed=seed,
        user_count=user_count,
        iterations=iterations,
        vectors=tuple(vectors),
        users=[d.describe() for d in devices],
    )
    for vector_name in vectors:
        dataset.series[vector_name] = {}
    for (vector_name, user_id), keys in item_keys.items():
        dataset.series[vector_name][user_id] = [lookup(key) for key in keys]
    return dataset
