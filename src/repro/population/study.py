"""run_study: the deduplicating, cache-backed, supervised study driver.

The paper's headline workload is 2093 users x 30 iterations x 7 vectors
(~440k renders). Because every eFP is a pure function of (vector, stack,
jitter path), the grid collapses to its distinct equivalence classes:

  1. PLAN     — sample the population, then deterministically pre-draw every
                iteration's jitter path (cheap, no DSP), producing the full
                item grid plus the set of distinct class keys.
  2. RENDER   — probe the cache once per class; group the misses by
                (vector, stack) and render each group as ONE batched pass
                through the engine's batch axis (graph built once, all
                jitter paths rendered together — bit-identical to per-class
                renders, pinned by tests). Groups fan out through a
                ``repro.resilience.SupervisedExecutor``: jobs are submitted
                individually with per-job deadlines, failed/hung jobs retry
                with capped deterministic backoff, failing batch groups are
                bisected to quarantine the poison class, pool death degrades
                to inline rendering, and a retry budget turns a
                systematically broken stack into a structured
                ``StudyExecutionError`` instead of a hang or a
                ``BrokenProcessPool``. With ``checkpoint_path`` set, rendered
                eFPs are crash-safely checkpointed every
                ``checkpoint_every`` completed jobs, so a killed run resumes
                without re-rendering — byte-identical either way.
  3. ASSEMBLE — build the per-user series by cache lookup only.

With the cache disabled the driver degrades to the honest baseline: one
real render per grid item (still batched by group unless ``batched=False``,
which restores the one-task-per-class path the benchmark uses as its
serial comparison baseline). ``bench_render_perf.py`` measures both gaps.

Observability (repro.obs) is threaded through all three phases but is
off by default: the ``recorder`` defaults to the null object, render
jobs carry measure=0, and no per-render recorder call is ever made — the
dataset is bit-identical either way. When a ``Recorder`` is active (or
``report_path`` / ``event_log_path`` is set), each batch is timed
(``render.batch_size`` histogram + per-batch wall clock, plus per-render
amortized latency so per-vector histograms keep one observation per
render), the first batch per (vector, stack) pair additionally runs
under the per-node profiler, and pool workers return their measurements
as a plain dict riding next to the eFPs — the parent folds those into
its own recorder, so aggregate counters are identical at any worker
count. The supervisor adds ``retry.*`` / ``degraded.*`` /
``checkpoint.*`` counters, surfaced as dedicated run-report sections
(schema-checked by ``repro.obs.report``).

Telemetry (repro.obs.events) rides the same channel: the driver, the
supervisor, the cache, and the checkpoint path all emit sequence events
(study/phase lifecycle, cache misses and quarantines, checkpoint
writes/resumes, retries/rebuilds, per-batch renders shipped home from
pool workers inside their metrics dicts). With ``event_log_path`` set
the sequence also streams crash-safely to a JSONL sidecar the moment
each event lands. The opt-in ``progress`` heartbeat prints live
classes/throughput/ETA lines to stderr from the supervisor loop; both
are free when disabled (the NullRecorder contract is pinned by tests).
"""
from __future__ import annotations

import os
import string
import time

import numpy as np

from ..io import atomic_write_json
from ..obs import (EventLog, NULL_RECORDER, ProgressMeter, Recorder,
                   make_event, profile_nodes)
from ..platform.jitter import sample_path, sample_repertoire
from ..platform.stacks import AudioStack
from ..resilience import (RetryBudget, RetryPolicy, StudyExecutionError,
                          SupervisedExecutor, load_checkpoint,
                          study_fingerprint, write_checkpoint)
from ..resilience.faults import CORRUPT_EFP, render_fault
from ..vectors.registry import get_vector
from .cache import RenderCache
from .dataset import StudyDataset
from .device import Device
from .sampler import sample_population

_STUDY_STREAM = 0x57D  # per-user jitter streams, disjoint from the sampler's

#: Pool engagement thresholds, measured by benchmarks/bench_render_perf.py
#: (see the "pool" section of BENCH_render.json — the worker sweep records
#: where process-pool overhead actually pays off on this workload):
#: below these job counts, fork + pickle overhead loses to inline rendering.
_POOL_THRESHOLD = 24        # per-class jobs (batched=False path)
_POOL_GROUP_THRESHOLD = 4   # batch groups are fatter, so fewer justify a pool

#: Batch rows per engine pass. Caps the working set of a batched render
#: ((B, channels, 5000) float64 blocks plus the analyser history) while
#: keeping the interpreter amortization; row results are independent, so
#: splitting a group across sub-batches cannot change any eFP.
_MAX_BATCH = 256

#: measure levels carried by each render job
_MEASURE_OFF = 0    # bare render, metrics slot is None
_MEASURE_TIME = 1   # wall-clock the render
_MEASURE_NODES = 2  # wall-clock + per-node profile

#: default checkpoint cadence: completed render jobs between snapshots
_CHECKPOINT_EVERY = 16

_HEX_DIGITS = frozenset(string.hexdigits.lower())


def _user_rng(seed: int, user_index: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([seed, _STUDY_STREAM, user_index]))


def _render_class(job: tuple[str, str, AudioStack, str, int]):
    """Pool worker: render one equivalence class. Top-level for pickling.

    Returns ``(key, efp, metrics)`` where metrics is None unless the job
    asked to be measured — the serializable snapshot the parent merges
    (its ``events`` list rides the same boundary and is merged
    seq-ordered into the parent's event log). ``render_fault`` is the
    env-gated chaos hook: a no-op (one env lookup) unless
    ``$REPRO_FAULTS`` names an active fault plan.
    """
    key, vector_name, stack, path, measure = job
    corrupt = render_fault(key)
    if not measure:
        efp = get_vector(vector_name).render(stack, path)
        return key, (CORRUPT_EFP if corrupt else efp), None
    start = time.perf_counter()
    if measure >= _MEASURE_NODES:
        with profile_nodes() as profiler:
            efp = get_vector(vector_name).render(stack, path)
    else:
        profiler = None
        efp = get_vector(vector_name).render(stack, path)
    wall = time.perf_counter() - start
    metrics = {
        "vector": vector_name,
        "stack": stack.cache_key(),
        "wall_s": wall,
        "events": [make_event("render.class", vector=vector_name, key=key,
                              wall_s=wall)],
    }
    if profiler is not None:
        metrics["nodes"] = profiler.seconds
        metrics["node_calls"] = profiler.calls
    return key, (CORRUPT_EFP if corrupt else efp), metrics


def _render_group(job: tuple[str, AudioStack, list, int]):
    """Pool worker: render one (vector, stack) batch group in a single
    batched engine pass. Top-level for pickling.

    Returns ``(pairs, metrics)`` where pairs is ``[(key, efp), ...]`` in
    member order and metrics is None unless the job asked to be measured.
    The chaos hook fires per member key: a crash/hang selected for any
    member takes the whole group (that is what bisection is for); a
    corrupt fault poisons only the selected member's row.
    """
    vector_name, stack, members, measure = job
    keys = [key for key, _ in members]
    paths = [path for _, path in members]
    corrupt_rows = [i for i, key in enumerate(keys) if render_fault(key)]
    vector = get_vector(vector_name)
    if not measure:
        efps = vector.render_batch(stack, paths)
        for i in corrupt_rows:
            efps[i] = CORRUPT_EFP
        return list(zip(keys, efps)), None
    start = time.perf_counter()
    if measure >= _MEASURE_NODES:
        with profile_nodes() as profiler:
            efps = vector.render_batch(stack, paths)
    else:
        profiler = None
        efps = vector.render_batch(stack, paths)
    wall = time.perf_counter() - start
    metrics = {
        "vector": vector_name,
        "stack": stack.cache_key(),
        "wall_s": wall,
        "batch_size": len(members),
        "events": [make_event("render.batch", vector=vector_name,
                              stack=stack.cache_key(),
                              batch_size=len(members), wall_s=wall)],
    }
    if profiler is not None:
        metrics["nodes"] = profiler.seconds
        metrics["node_calls"] = profiler.calls
    for i in corrupt_rows:
        efps[i] = CORRUPT_EFP
    return list(zip(keys, efps)), metrics


def _make_jobs(keyed_classes, measuring: bool):
    """Per-class jobs: attach a measure level to each (key, class) pair.

    When measuring, every job is timed and the first job per distinct
    (vector, stack) pair also carries the per-node profiler — planning
    order is deterministic, so the profiled set is identical at any
    worker count.
    """
    if not measuring:
        return [(key, vector_name, stack, path, _MEASURE_OFF)
                for key, (vector_name, stack, path) in keyed_classes]
    jobs = []
    profiled: set[tuple[str, str]] = set()
    for key, (vector_name, stack, path) in keyed_classes:
        pair = (vector_name, stack.cache_key())
        if pair in profiled:
            measure = _MEASURE_TIME
        else:
            profiled.add(pair)
            measure = _MEASURE_NODES
        jobs.append((key, vector_name, stack, path, measure))
    return jobs


def _group_jobs(keyed_classes, measuring: bool):
    """Batch-group jobs: group classes by (vector, stack), split at
    ``_MAX_BATCH`` rows, attach measure levels.

    Grouping preserves plan order (first-seen group order, member order
    within a group), so the job list — and with it the profiled set and
    every aggregate counter — is identical at any worker count. When
    measuring, every batch is timed and the first batch per (vector,
    stack) pair also carries the per-node profiler.
    """
    groups: dict[tuple[str, str], tuple[str, AudioStack, list]] = {}
    for key, (vector_name, stack, path) in keyed_classes:
        entry = groups.setdefault((vector_name, stack.cache_key()),
                                  (vector_name, stack, []))
        entry[2].append((key, path))
    jobs = []
    for vector_name, stack, members in groups.values():
        first = True
        for lo in range(0, len(members), _MAX_BATCH):
            if not measuring:
                measure = _MEASURE_OFF
            elif first:
                measure = _MEASURE_NODES
            else:
                measure = _MEASURE_TIME
            first = False
            jobs.append((vector_name, stack, members[lo:lo + _MAX_BATCH],
                         measure))
    return jobs


# -- supervision plumbing: validate / split / name render jobs ----------------

def _valid_efp(value) -> bool:
    """eFPs are 32-char lowercase hex md5 digests; anything else is a
    corrupted worker return."""
    return isinstance(value, str) and len(value) == 32 \
        and set(value) <= _HEX_DIGITS


def _validate_class_result(job, result) -> bool:
    key, efp, _metrics = result
    return key == job[0] and _valid_efp(efp)


def _validate_group_result(job, result) -> bool:
    pairs, _metrics = result
    members = job[2]
    if len(pairs) != len(members):
        return False
    return all(key == member_key and _valid_efp(efp)
               for (key, efp), (member_key, _) in zip(pairs, members))


def _class_job_keys(job) -> list[str]:
    return [job[0]]


def _group_job_keys(job) -> list[str]:
    return [key for key, _ in job[2]]


def _split_group_job(job):
    """Bisect a failing batch group so the supervisor can corner the
    poison member. The first half inherits the parent's measure level
    (a profiled group keeps exactly one profiled descendant); results
    stay bit-identical because batch rows never interact."""
    vector_name, stack, members, measure = job
    if len(members) < 2:
        return None
    mid = len(members) // 2
    tail_measure = _MEASURE_TIME if measure else _MEASURE_OFF
    return [(vector_name, stack, members[:mid], measure),
            (vector_name, stack, members[mid:], tail_measure)]


def _absorb_metrics(recorder, metrics: dict) -> None:
    """Fold one worker-returned metrics snapshot into the parent recorder."""
    recorder.count("render.renders")
    recorder.observe(f"render.latency_s.{metrics['vector']}", metrics["wall_s"])
    recorder.observe("pool.task_wall_s", metrics["wall_s"])
    for event in metrics.get("events", ()):
        recorder.merge_event(event)
    if "nodes" in metrics:
        recorder.count("render.profiled_renders")
        recorder.record_node_profile(metrics["stack"], metrics["nodes"],
                                     metrics["node_calls"])


def _absorb_batch_metrics(recorder, metrics: dict) -> None:
    """Fold one batch-group metrics snapshot into the parent recorder.

    Per-vector latency histograms keep one observation per *render* (the
    batch wall clock amortized over its rows), so their counts still equal
    the render count; the batch-level cost lands in ``render.batch_size``
    and ``render.batch_wall_s.<vector>`` — together they show the
    amortization directly.
    """
    size = metrics["batch_size"]
    wall = metrics["wall_s"]
    vector = metrics["vector"]
    recorder.count("render.renders", size)
    recorder.count("render.batches")
    recorder.observe("render.batch_size", size)
    recorder.observe(f"render.batch_wall_s.{vector}", wall)
    amortized = wall / size
    for _ in range(size):
        recorder.observe(f"render.latency_s.{vector}", amortized)
    recorder.observe("pool.task_wall_s", wall)
    for event in metrics.get("events", ()):
        recorder.merge_event(event)
    if "nodes" in metrics:
        recorder.count("render.profiled_renders")
        recorder.record_node_profile(metrics["stack"], metrics["nodes"],
                                     metrics["node_calls"])


def _plan(devices: list[Device], vectors: tuple[str, ...], iterations: int,
          seed: int, first_index: int = 0):
    """Pre-draw all jitter paths; return per-item keys and the class table.

    Analyser-free vectors draw nothing from the rng, so adding/removing
    them never shifts another vector's jitter stream. ``first_index`` is
    the global population index of ``devices[0]`` — per-user jitter
    streams are seeded by global index, so planning a shard of the
    population draws exactly the paths the monolithic plan would.
    """
    item_keys: dict[tuple[str, str], list[str]] = {}   # (vector, user_id) -> keys
    classes: dict[str, tuple[str, object, str]] = {}
    for offset, device in enumerate(devices):
        rng = _user_rng(seed, first_index + offset)
        repertoire = sample_repertoire(rng, device.load)
        for vector_name in vectors:
            vector = get_vector(vector_name)
            # each vector fingerprints its own per-device stack (the audio
            # stack for audio vectors; UA/canvas/fonts/math identities for
            # the comparators) — the class key and the render input both
            # come from that stack, so the cache stays a pure function of
            # (vector, stack, path) across every fingerprint surface
            stack = vector.stack_of(device)
            stack_key = stack.cache_key()
            keys = []
            for _ in range(iterations):
                if vector.uses_analyser:
                    path = sample_path(rng, device.load, repertoire)
                else:
                    path = vector.canonical_path(None)
                key = RenderCache.make_key(vector_name, stack_key, path)
                keys.append(key)
                if key not in classes:
                    classes[key] = (vector_name, stack, path)
            item_keys[(vector_name, device.user_id)] = keys
    return item_keys, classes


def _validate_study_args(user_count, iterations, vectors, workers,
                         checkpoint_every) -> None:
    """The shared front-door argument checks (``run_study`` and
    ``run_study_sharded`` reject the same bad inputs the same way)."""
    if not isinstance(user_count, int) or isinstance(user_count, bool) \
            or user_count <= 0:
        raise ValueError(f"user_count must be a positive integer, "
                         f"got {user_count!r}")
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    if not vectors:
        raise ValueError("vectors must be non-empty")
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0 (or None for auto), "
                         f"got {workers}")
    if checkpoint_every <= 0:
        raise ValueError(f"checkpoint_every must be positive, "
                         f"got {checkpoint_every}")
    seen = set()
    for name in vectors:
        get_vector(name)  # fail fast on unknown vectors (UnknownVectorError)
        if name in seen:
            # a duplicate would silently double-count the vector's series
            # assembly; reject it before any rendering happens
            raise ValueError(f"duplicate vector {name!r} in vectors")
        seen.add(name)


def _resolve_workers(workers: int | None) -> tuple[int, int | None, int]:
    """Resolve the ``workers`` knob to an effective pool size.

    Returns ``(workers, requested, cpu)``: None = auto (cpu count capped
    at 8); explicit counts above the core count are clamped to it, never
    below 2 — an explicit pool request stays a pool even on a 1-core box.
    """
    cpu = os.cpu_count() or 1
    requested = workers
    if workers is None:
        workers = min(cpu, 8)
    elif workers > max(cpu, 2):
        # Oversubscribing a small machine cannot win: more processes than
        # cores adds context-switch and serialization overhead (the
        # committed worker sweep measures exactly this). Explicit requests
        # are trimmed to the core count — but never below 2, so an
        # explicit >= 2 request keeps pool semantics (supervision, crash
        # isolation) even on a 1-core box. Results are worker-count
        # invariant (pinned), so only wall time changes.
        workers = max(cpu, 2)
    return workers, requested, cpu


def _load_resume(checkpoint_path, fingerprint, classes, recorder,
                 checkpoint_info) -> dict[str, str]:
    """Load a checkpoint and keep only the classes this plan wants."""
    resumed: dict[str, str] = {}
    if checkpoint_path is None:
        return resumed
    loaded, problem = load_checkpoint(checkpoint_path, fingerprint)
    if problem is not None:
        checkpoint_info["corrupt_recoveries"] += 1
        recorder.count("checkpoint.corrupt")
        recorder.event("checkpoint.corrupt_quarantine", problem=problem)
    # only classes this study actually plans can be resumed; an
    # ENGINE_VERSION bump changes every stack key, so stale
    # checkpoints resume nothing (and re-render everything)
    resumed = {key: efp for key, efp in loaded.items() if key in classes}
    if resumed:
        checkpoint_info["resumed_classes"] = len(resumed)
        recorder.count("checkpoint.resumed_classes", len(resumed))
        recorder.event("checkpoint.resume", classes=len(resumed))
    return resumed


def _keyed_to_render(cache, item_keys, classes, resumed, recorder):
    """The classes still needing a render, as ``(key, class)`` pairs.

    With the cache disabled this degrades to the honest baseline: one
    real render per grid item, charged through the miss-counter API so
    benchmark speedups isolate the cache.
    """
    if cache.disabled:
        keyed = [(key, classes[key])
                 for keys in item_keys.values() for key in keys
                 if key not in resumed]
        cache.record_miss(len(keyed))
        return keyed
    with recorder.span("probe"):
        return [(key, classes[key]) for key in classes
                if key not in resumed and cache.get(key) is None]


def _render_classes(keyed, *, batched, measuring, recorder, cache, seed,
                    workers, requested_workers, fingerprint,
                    checkpoint_path, checkpoint_every, checkpoint_info,
                    retry_policy, retry_budget, progress, resumed):
    """Render ``keyed`` classes under supervision; the render-phase core
    shared by ``run_study`` and the sharded driver.

    Returns ``(rendered, supervisor, jobs_count, pooled)`` where
    ``rendered`` maps class key -> eFP (resumed classes included) and the
    supervisor carries the resilience summary. Completed renders are
    pushed into the cache before returning.
    """
    if batched:
        jobs = _group_jobs(keyed, measuring)
        threshold = _POOL_GROUP_THRESHOLD
        worker, absorb = _render_group, _absorb_batch_metrics
        splitter, validator, keys_of = (_split_group_job,
                                        _validate_group_result,
                                        _group_job_keys)
    else:
        jobs = _make_jobs(keyed, measuring)
        threshold = _POOL_THRESHOLD
        worker, absorb = _render_class, _absorb_metrics
        splitter, validator, keys_of = (None, _validate_class_result,
                                        _class_job_keys)
    pooled = bool(workers and workers > 1 and len(jobs) >= threshold)
    if requested_workers is not None and workers < requested_workers:
        recorder.count("pool.workers_clamped", requested_workers - workers)
    if not pooled and len(jobs) >= threshold and workers <= 1 \
            and (requested_workers is None or requested_workers > 1):
        # enough jobs to pool, but fan-out cannot win on this machine
        recorder.count("pool.fanout_skipped")
    budget = None if retry_budget is None else RetryBudget(retry_budget)
    supervisor = SupervisedExecutor(
        worker, workers=workers if pooled else 0,
        policy=retry_policy, budget=budget, recorder=recorder,
        seed=seed, splitter=splitter, validator=validator,
        keys_of=keys_of)

    meter = None
    if progress:
        stream = progress if hasattr(progress, "write") else None
        meter = ProgressMeter(total_jobs=len(jobs),
                              total_classes=len(keyed), stream=stream)

    rendered: dict[str, str] = dict(resumed)
    completed_jobs = 0

    def _checkpoint() -> None:
        if write_checkpoint(checkpoint_path, fingerprint, rendered,
                            completed_jobs):
            checkpoint_info["writes"] += 1
            recorder.count("checkpoint.writes")
            recorder.event("checkpoint.write", completed_jobs=completed_jobs)
        else:
            checkpoint_info["torn_writes"] += 1
            recorder.count("checkpoint.torn_writes")
            recorder.event("checkpoint.torn_write",
                           completed_jobs=completed_jobs)

    try:
        for result in supervisor.run(jobs):
            if batched:
                pairs, metrics = result
                for key, efp in pairs:
                    rendered[key] = efp
            else:
                key, efp, metrics = result
                rendered[key] = efp
            if metrics is not None:
                absorb(recorder, metrics)
            completed_jobs += 1
            if checkpoint_path is not None \
                    and completed_jobs % checkpoint_every == 0:
                _checkpoint()
            if meter is not None:
                meter.update(completed_jobs,
                             len(rendered) - len(resumed),
                             retries=supervisor.retries,
                             hit_rate=cache.hit_rate)
    except StudyExecutionError:
        # persist everything that DID render before surfacing the
        # failure: a later run with the stack fixed resumes from here
        if checkpoint_path is not None:
            _checkpoint()
        raise
    if checkpoint_path is not None:
        _checkpoint()
    if meter is not None:
        meter.finish(len(rendered) - len(resumed),
                     retries=supervisor.retries,
                     hit_rate=cache.hit_rate)
    if not cache.disabled:
        for key, efp in rendered.items():
            cache.put(key, efp)
    return rendered, supervisor, len(jobs), pooled


def run_study(user_count: int, iterations: int = 30,
              vectors: tuple[str, ...] = ("dc", "fft", "hybrid"),
              seed: int = 2021, cache: RenderCache | None = None,
              workers: int | None = None, recorder=None,
              report_path: str | None = None,
              batched: bool = True,
              checkpoint_path: str | None = None,
              checkpoint_every: int = _CHECKPOINT_EVERY,
              retry_policy: RetryPolicy | None = None,
              retry_budget: int | None = None,
              event_log_path: str | None = None,
              progress=False) -> StudyDataset:
    """Run the synthetic study and return its dataset.

    ``workers``: None = auto (cpu count, capped at 8), 0 = render inline.
    Explicit counts above the machine's core count are clamped to it
    (never below 2, so an explicit pool request stays a pool); the clamp
    and any fan-out skip are recorded as ``pool.workers_clamped`` /
    ``pool.fanout_skipped`` counters.
    ``recorder``: a ``repro.obs.Recorder`` to instrument the run; None =
    observability off (null object, no per-render overhead) unless
    ``report_path`` or ``event_log_path`` is set, which implies a fresh
    recorder.
    ``report_path``: write a machine-readable run report (see repro.obs)
    here after the study completes.
    ``batched``: True (default) renders cache misses grouped by
    (vector, stack) through the engine's batch axis; False renders one
    class per task — the serial baseline the benchmark compares against.
    ``checkpoint_path``: crash-safely checkpoint rendered eFPs here every
    ``checkpoint_every`` completed render jobs; if the file already holds
    a checkpoint of *this* study, its classes are not re-rendered
    (resume). A checkpoint of a different study raises; a torn/corrupt
    one is quarantined to ``<path>.corrupt`` and the run starts cold.
    ``retry_policy`` / ``retry_budget``: supervision knobs (see
    ``repro.resilience``); defaults retry failed or hung render jobs with
    capped deterministic backoff and give up — raising
    ``StudyExecutionError`` naming the quarantined classes — once the
    budget is spent.
    ``event_log_path``: stream the run's telemetry events (see
    ``repro.obs.events``) to this crash-safe append-only JSONL sidecar;
    the run report gains an ``events`` summary section pointing at it.
    Appending to an existing log quarantines any torn tail a previous
    crash left to ``<path>.corrupt`` first.
    ``progress``: True (or a writable stream) prints a throttled
    heartbeat — classes done/total, renders/s, cache hit rate, retries,
    ETA — to stderr (or the stream) while the render phase runs. Off by
    default and costs nothing when off.
    Results are bit-identical regardless of worker count, cache state,
    batching, observability, checkpoint resume, or any fault recovery
    that succeeds.
    """
    _validate_study_args(user_count, iterations, vectors, workers,
                         checkpoint_every)
    if recorder is None:
        recorder = Recorder() if (report_path is not None
                                  or event_log_path is not None) \
            else NULL_RECORDER
    measuring = recorder.enabled
    if cache is None:
        cache = RenderCache()
    event_log = None
    if event_log_path is not None and measuring:
        event_log = EventLog(event_log_path)
        recorder.attach_event_log(event_log)
    cache.attach_recorder(recorder)
    try:
        return _run_study(
            user_count, iterations, tuple(vectors), seed, cache, workers,
            recorder, measuring, report_path, batched, checkpoint_path,
            checkpoint_every, retry_policy, retry_budget, event_log_path,
            progress)
    finally:
        cache.detach_recorder()
        if event_log is not None:
            recorder.detach_event_log()
            event_log.close()


def _run_study(user_count, iterations, vectors, seed, cache, workers,
               recorder, measuring, report_path, batched, checkpoint_path,
               checkpoint_every, retry_policy, retry_budget, event_log_path,
               progress) -> StudyDataset:
    """The study body; ``run_study`` owns argument validation and the
    telemetry attach/detach lifecycle around it."""
    workers, requested_workers, cpu = _resolve_workers(workers)

    recorder.event("study.start", users=user_count, iterations=iterations,
                   vectors=list(vectors), seed=seed, batched=batched,
                   workers=workers)

    recorder.event("phase.start", phase="plan")
    with recorder.span("plan", users=user_count, iterations=iterations,
                       vectors=list(vectors)) as plan_span:
        devices = sample_population(user_count, seed)
        item_keys, classes = _plan(devices, tuple(vectors), iterations, seed)
        grid_items = sum(len(k) for k in item_keys.values())
        if measuring:
            plan_span.set(grid_items=grid_items,
                          distinct_classes=len(classes))
    recorder.event("phase.end", phase="plan")

    checkpoint_info = {"enabled": checkpoint_path is not None, "writes": 0,
                       "torn_writes": 0, "resumed_classes": 0,
                       "corrupt_recoveries": 0}
    fingerprint = study_fingerprint(seed, user_count, iterations, vectors)

    recorder.event("phase.start", phase="render")
    with recorder.span("render") as render_span:
        resumed = _load_resume(checkpoint_path, fingerprint, classes,
                               recorder, checkpoint_info)
        keyed = _keyed_to_render(cache, item_keys, classes, resumed, recorder)
        rendered, supervisor, job_count, pooled = _render_classes(
            keyed, batched=batched, measuring=measuring, recorder=recorder,
            cache=cache, seed=seed, workers=workers,
            requested_workers=requested_workers, fingerprint=fingerprint,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            checkpoint_info=checkpoint_info, retry_policy=retry_policy,
            retry_budget=retry_budget, progress=progress, resumed=resumed)
        lookup = rendered.__getitem__ if cache.disabled else cache.get
    recorder.event("phase.end", phase="render")

    resilience_info = supervisor.summary()
    resilience_info["checkpoint"] = checkpoint_info

    if measuring:
        recorder.count("pool.jobs", job_count)
        busy = recorder.histograms.get("pool.task_wall_s")
        busy_s = busy.total if busy else 0.0
        lanes = workers if pooled else 1
        pool_info = {
            "workers": workers, "pooled": pooled, "jobs": job_count,
            "requested": (requested_workers if requested_workers is not None
                          else workers),
            "cpu_count": cpu,
            "batched": batched,
            "supervised": True,
            "rebuilds": resilience_info["degraded"]["pool_rebuilds"],
            "busy_s": round(busy_s, 6),
            "utilization": round(busy_s / (render_span.duration_s * lanes), 4)
            if render_span.duration_s > 0 else None,
        }
    else:
        pool_info = None

    recorder.event("phase.start", phase="assemble")
    with recorder.span("assemble"):
        dataset = StudyDataset(
            seed=seed,
            user_count=user_count,
            iterations=iterations,
            vectors=tuple(vectors),
            users=[d.describe() for d in devices],
        )
        for vector_name in vectors:
            dataset.series[vector_name] = {}
        for (vector_name, user_id), keys in item_keys.items():
            dataset.series[vector_name][user_id] = [lookup(key) for key in keys]
    recorder.event("phase.end", phase="assemble")
    recorder.event("study.end", grid_items=grid_items,
                   distinct_classes=len(classes), rendered=len(rendered))

    if report_path is not None:
        from ..obs.report import build_report  # deferred: only report users pay for it
        workload = {"users": user_count, "iterations": iterations,
                    "vectors": list(vectors), "seed": seed,
                    "grid_items": grid_items,
                    "distinct_classes": len(classes)}
        report = build_report(recorder, workload, cache_stats=cache.stats(),
                              pool=pool_info, resilience=resilience_info,
                              events_path=event_log_path)
        atomic_write_json(report_path, report, indent=2)
    return dataset
