"""RenderCache: the equivalence-class render cache.

Keys are ``vector|stack.cache_key()|jitter_path`` — the complete identity
of a render's numeric output (ENGINE_VERSION rides inside the stack key,
so any DSP change invalidates everything at once). Values are eFP digest
strings, so the cache is tiny even at paper scale: the 2093x30x7 study
needs only a few hundred entries.

In-memory it is an LRU (OrderedDict move-to-end); optionally it persists
to a JSON file under ``benchmarks/.cache/`` so repeated benchmark runs
skip even the first render of each class.
"""
from __future__ import annotations

import json
import os
import re
from collections import OrderedDict

from ..io import atomic_write_json
from ..webaudio import ENGINE_VERSION

#: the version component of a full cache key: ``vector|e<N>|engine|...``
_VERSION_PART = re.compile(r"^e\d+$")


def _stale_version(key: str) -> bool:
    """True when ``key`` carries an ENGINE_VERSION other than the current
    one. Only full ``vector|e<N>|...`` keys are judged — ad-hoc keys
    (tests, external users) have no version component and are never
    considered stale."""
    parts = key.split("|")
    return (len(parts) >= 2 and _VERSION_PART.match(parts[1]) is not None
            and parts[1] != f"e{ENGINE_VERSION}")


class RenderCache:
    def __init__(self, capacity: int = 100_000, disk_path: str | None = None,
                 disabled: bool = False):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.disk_path = disk_path
        self.disabled = disabled
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_loads = 0
        self.corrupt_entries = 0
        self.stale_prunes = 0
        self._recorder = None
        self._store: OrderedDict[str, str] = OrderedDict()
        if disk_path and not disabled:
            self._load_disk()

    @staticmethod
    def make_key(vector_name: str, stack_key: str, jitter_path: str) -> str:
        return f"{vector_name}|{stack_key}|{jitter_path}"

    # -- observability ------------------------------------------------------
    def attach_recorder(self, recorder) -> None:
        """Bind an enabled ``repro.obs`` recorder so cache incidents land
        in the study event log (misses, disk loads, corruption
        quarantines, stale prunes — hits stay silent, they are the noise
        floor). Activity that predates the bind — the disk load performed
        in ``__init__`` — is emitted as aggregate catch-up events here.
        A disabled recorder binds to nothing: zero calls on any path.
        """
        self._recorder = recorder if getattr(recorder, "enabled", False) \
            else None
        if self._recorder is None:
            return
        if self.disk_loads:
            self._recorder.event("cache.disk_load", n=self.disk_loads)
        if self.corrupt_entries:
            self._recorder.event("cache.corrupt_quarantine",
                                 n=self.corrupt_entries)
        if self.stale_prunes:
            self._recorder.event("cache.stale_prune", n=self.stale_prunes)

    def detach_recorder(self) -> None:
        self._recorder = None

    # -- counter API --------------------------------------------------------
    # Every stats mutation goes through these, including the study driver's
    # disabled-cache baseline (which charges its per-item renders as misses
    # without probing), so `stats()` means the same thing on every path.
    def record_hit(self, n: int = 1) -> None:
        self.hits += n

    def record_miss(self, n: int = 1) -> None:
        self.misses += n
        if self._recorder is not None:
            self._recorder.event("cache.miss", n=n)

    def record_eviction(self, n: int = 1) -> None:
        self.evictions += n

    def record_disk_load(self, n: int = 1) -> None:
        self.disk_loads += n
        if self._recorder is not None:
            self._recorder.event("cache.disk_load", n=n)

    def record_corrupt_entry(self, n: int = 1) -> None:
        self.corrupt_entries += n
        if self._recorder is not None:
            self._recorder.event("cache.corrupt_quarantine", n=n)

    def record_stale_prune(self, n: int = 1) -> None:
        self.stale_prunes += n
        if self._recorder is not None:
            self._recorder.event("cache.stale_prune", n=n)

    # -- core ---------------------------------------------------------------
    def get(self, key: str) -> str | None:
        if self.disabled:
            self.record_miss()
            return None
        value = self._store.get(key)
        if value is None:
            self.record_miss()
            return None
        self._store.move_to_end(key)
        self.record_hit()
        return value

    def put(self, key: str, value: str) -> None:
        if self.disabled:
            return
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.record_eviction()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        """Membership takes the same path as ``get``: it records a hit or
        miss and refreshes the entry's recency, so probing with ``in``
        can never silently diverge from the LRU/stats semantics reads
        have."""
        return self.get(key) is not None

    # -- stats --------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._store),
            "capacity": self.capacity,
            "disabled": self.disabled,
            "evictions": self.evictions,
            "disk_loads": self.disk_loads,
            "corrupt_entries": self.corrupt_entries,
            "stale_prunes": self.stale_prunes,
        }

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_loads = 0
        self.corrupt_entries = 0
        self.stale_prunes = 0

    # -- disk persistence ---------------------------------------------------
    def _quarantine_disk(self) -> None:
        """Move an unreadable cache file aside as ``<path>.corrupt`` so
        the *next* persist starts clean instead of re-reading (and
        re-ignoring) the same broken bytes forever — and so operators can
        inspect what the crash left behind."""
        self.record_corrupt_entry()
        try:
            os.replace(self.disk_path, self.disk_path + ".corrupt")
        except OSError:
            pass  # best-effort: a cold cache is always a safe outcome

    def _load_disk(self) -> None:
        # a cache file is an optimization, never a dependency: anything
        # unreadable (truncated by a crash predating the atomic writer,
        # wrong shape, undecodable) is quarantined to ``*.corrupt`` and
        # the cache starts cold; per-entry damage skips just the entry
        try:
            with open(self.disk_path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine_disk()
            return
        if not isinstance(payload, dict) \
                or not isinstance(payload.get("entries"), dict):
            self._quarantine_disk()
            return
        for key, value in payload["entries"].items():
            if not (isinstance(key, str) and isinstance(value, str)):
                self.record_corrupt_entry()
            elif _stale_version(key):
                # a bumped ENGINE_VERSION orphans the entry forever (no
                # future key can match it); dropping it here — and not
                # re-writing it on the next persist — keeps the cache file
                # from accumulating dead generations
                self.record_stale_prune()
            else:
                self._store[key] = value
                self.record_disk_load()

    def persist(self) -> None:
        """Crash-safely write the cache to disk (no-op without a disk path).

        Delegates to the shared ``repro.io`` atomic writer (temp file +
        fsync + ``os.replace``) — readers see either the complete old
        file or the complete new one, never a torn write, even if the
        process dies mid-persist.
        """
        if not self.disk_path or self.disabled:
            return
        atomic_write_json(self.disk_path,
                          {"format": 1, "entries": dict(self._store)})
