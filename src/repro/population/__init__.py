"""repro.population — the synthetic user study."""

from .device import Device  # noqa: F401
from .sampler import sample_population  # noqa: F401
from .cache import RenderCache  # noqa: F401
from .dataset import StudyDataset  # noqa: F401
from .study import run_study  # noqa: F401

__all__ = ["Device", "sample_population", "RenderCache", "StudyDataset", "run_study"]
