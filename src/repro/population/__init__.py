"""repro.population — the synthetic user study."""

from .device import Device  # noqa: F401
from .sampler import sample_population, sample_population_slice  # noqa: F401
from .cache import RenderCache  # noqa: F401
from .dataset import StudyDataset  # noqa: F401
from .study import run_study  # noqa: F401
from .shards import (ShardIntegrityError, ShardedStudy,  # noqa: F401
                     run_study_sharded, shard_ranges)

__all__ = ["Device", "sample_population", "sample_population_slice",
           "RenderCache", "StudyDataset", "run_study",
           "ShardIntegrityError", "ShardedStudy", "run_study_sharded",
           "shard_ranges"]
