"""StudyDataset: the per-user, per-vector, per-iteration eFP series."""
from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class StudyDataset:
    seed: int
    user_count: int
    iterations: int
    vectors: tuple[str, ...]
    users: list[dict] = field(default_factory=list)
    #: series[vector][user_id] = [eFP per iteration]
    series: dict[str, dict[str, list[str]]] = field(default_factory=dict)

    # -- analysis helpers ---------------------------------------------------
    def distinct_counts(self, vector: str) -> dict[str, int]:
        """Per-user number of distinct eFPs (the Table 1 quantity)."""
        return {uid: len(set(efps)) for uid, efps in self.series[vector].items()}

    def stack_keys(self) -> list[str]:
        return [u["stack_key"] for u in self.users]

    # -- (de)serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "meta": {
                "seed": self.seed,
                "user_count": self.user_count,
                "iterations": self.iterations,
                "vectors": list(self.vectors),
            },
            "users": self.users,
            "series": self.series,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StudyDataset":
        meta = payload["meta"]
        return cls(
            seed=meta["seed"],
            user_count=meta["user_count"],
            iterations=meta["iterations"],
            vectors=tuple(meta["vectors"]),
            users=payload["users"],
            series=payload["series"],
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)

    @classmethod
    def load(cls, path: str) -> "StudyDataset":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def __eq__(self, other) -> bool:
        if not isinstance(other, StudyDataset):
            return NotImplemented
        return self.to_dict() == other.to_dict()
