"""StudyDataset: the per-user, per-vector, per-iteration eFP series."""
from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..io import atomic_write_chunks


@dataclass
class StudyDataset:
    seed: int
    user_count: int
    iterations: int
    vectors: tuple[str, ...]
    users: list[dict] = field(default_factory=list)
    #: series[vector][user_id] = [eFP per iteration]
    series: dict[str, dict[str, list[str]]] = field(default_factory=dict)

    # -- analysis helpers ---------------------------------------------------
    def distinct_counts(self, vector: str) -> dict[str, int]:
        """Per-user number of distinct eFPs (the Table 1 quantity)."""
        return {uid: len(set(efps)) for uid, efps in self.series[vector].items()}

    def stack_keys(self) -> list[str]:
        return [u["stack_key"] for u in self.users]

    def user_ids(self) -> list[str]:
        """User ids in canonical (stored) order — the row order every
        per-user array in the analysis layer follows."""
        return [u["id"] for u in self.users]

    def iter_user_series(self, vector: str):
        """Yield ``(user_id, [eFP per iteration])`` in canonical user order."""
        series = self.series[vector]
        for uid in self.user_ids():
            yield uid, series[uid]

    def intern(self, vector: str) -> tuple[np.ndarray, list[str], list[str]]:
        """Integer-intern one vector's series for vectorized analysis.

        Returns ``(codes, labels, user_ids)``: ``codes`` is an
        ``(n_users, iterations)`` int64 grid of interned eFP ids,
        ``labels[i]`` is the eFP string behind id ``i`` (ids assigned in
        first-appearance order scanning users canonically), and
        ``user_ids`` names the rows. The collation layer operates on
        this grid only — string eFPs are touched exactly once here.
        """
        table: dict[str, int] = {}
        user_ids = self.user_ids()
        codes = np.empty((len(user_ids), self.iterations), dtype=np.int64)
        series = self.series[vector]
        for row, uid in enumerate(user_ids):
            for col, efp in enumerate(series[uid]):
                code = table.get(efp)
                if code is None:
                    code = table[efp] = len(table)
                codes[row, col] = code
        return codes, list(table), user_ids

    # -- (de)serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "meta": {
                "seed": self.seed,
                "user_count": self.user_count,
                "iterations": self.iterations,
                "vectors": list(self.vectors),
            },
            "users": self.users,
            "series": self.series,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StudyDataset":
        """Build a dataset from a JSON payload, validating its integrity.

        The analysis layer trusts loaded datasets completely, so an
        inconsistent payload must fail *here*, naming the offending
        field, instead of producing silently wrong metrics downstream.
        """
        if not isinstance(payload, dict):
            raise ValueError("dataset payload must be a JSON object")
        for key in ("meta", "users", "series"):
            if key not in payload:
                raise ValueError(f"dataset payload missing {key!r}")
        meta, users, series = payload["meta"], payload["users"], payload["series"]
        if not isinstance(meta, dict):
            raise ValueError("meta must be an object")
        for key in ("seed", "user_count", "iterations", "vectors"):
            if key not in meta:
                raise ValueError(f"meta missing {key!r}")
        if not isinstance(users, list):
            raise ValueError("users must be an array")
        if not isinstance(series, dict):
            raise ValueError("series must be an object")

        iterations = meta["iterations"]
        if not isinstance(iterations, int) or isinstance(iterations, bool) \
                or iterations <= 0:
            raise ValueError(
                f"meta.iterations must be a positive integer, got {iterations!r}")
        if meta["user_count"] != len(users):
            raise ValueError(
                f"meta.user_count is {meta['user_count']} but users has "
                f"{len(users)} entries")

        vectors = meta["vectors"]
        if not isinstance(vectors, list) or not vectors \
                or not all(isinstance(v, str) for v in vectors):
            raise ValueError("meta.vectors must be a non-empty array of strings")
        declared = set(vectors)
        for vector in series:
            if vector not in declared:
                raise ValueError(
                    f"series contains vector {vector!r} absent from meta.vectors")
        for vector in vectors:
            if vector not in series:
                raise ValueError(f"meta.vectors names {vector!r} but series has "
                                 "no entry for it")

        ids = []
        for i, user in enumerate(users):
            if not isinstance(user, dict) or not isinstance(user.get("id"), str):
                raise ValueError(f"users[{i}] must be an object with a string 'id'")
            ids.append(user["id"])
        if len(set(ids)) != len(ids):
            raise ValueError("users contains duplicate ids")
        id_set = set(ids)
        for vector, per_user in series.items():
            if not isinstance(per_user, dict):
                raise ValueError(f"series[{vector!r}] must be an object")
            if set(per_user) != id_set:
                extra = sorted(set(per_user) - id_set)
                missing = sorted(id_set - set(per_user))
                raise ValueError(
                    f"series[{vector!r}] users do not match the users list "
                    f"(unknown: {extra[:3]}, missing: {missing[:3]})")
            for uid, efps in per_user.items():
                if not isinstance(efps, list) \
                        or not all(isinstance(e, str) for e in efps):
                    raise ValueError(
                        f"series[{vector!r}][{uid!r}] must be an array of strings")
                if len(efps) != iterations:
                    raise ValueError(
                        f"series[{vector!r}][{uid!r}] has {len(efps)} "
                        f"iterations, expected {iterations}")

        return cls(
            seed=meta["seed"],
            user_count=meta["user_count"],
            iterations=iterations,
            vectors=tuple(vectors),
            users=users,
            series=series,
        )

    def _dump_chunks(self):
        """Stream the ``to_dict()`` JSON encoding chunk by chunk.

        Byte-identical to ``json.dumps(self.to_dict()) + "\\n"`` (pinned
        by tests), but the peak working set is one user's series instead
        of the whole document — ``save`` stays flat in memory no matter
        how many users the dataset holds.
        """
        meta = {"seed": self.seed, "user_count": self.user_count,
                "iterations": self.iterations, "vectors": list(self.vectors)}
        yield '{"meta": ' + json.dumps(meta) + ', "users": ['
        for i, user in enumerate(self.users):
            yield (", " if i else "") + json.dumps(user)
        yield '], "series": {'
        for v, vector in enumerate(self.series):
            yield (", " if v else "") + json.dumps(vector) + ": {"
            per_user = self.series[vector]
            for u, uid in enumerate(per_user):
                yield (", " if u else "") + json.dumps(uid) + ": " \
                    + json.dumps(per_user[uid])
            yield "}"
        yield "}}\n"

    def save(self, path: str) -> None:
        """Crash-safely write the dataset, streaming one user at a time
        through the shared atomic chunk writer (same bytes as a
        whole-document dump, without ever materializing it)."""
        atomic_write_chunks(path, self._dump_chunks())

    @classmethod
    def load(cls, path: str) -> "StudyDataset":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def __eq__(self, other) -> bool:
        if not isinstance(other, StudyDataset):
            return NotImplemented
        return self.to_dict() == other.to_dict()
