"""Device: one sampled user's render-relevant state."""
from __future__ import annotations

from dataclasses import dataclass

from ..platform.browsers import UAStack
from ..platform.canvas_stack import CanvasStack
from ..platform.font_stack import FontStack
from ..platform.stacks import AudioStack


@dataclass(frozen=True)
class Device:
    user_id: str
    stack: AudioStack
    os: str
    browser: str
    load: float  # per-user CPU load level in [0, 1), drives fickleness
    #: comparator-vector identities (None only for hand-built devices in
    #: audio-only tests; the sampler always fills them)
    ua: UAStack | None = None
    canvas: CanvasStack | None = None
    fonts: FontStack | None = None

    def describe(self) -> dict:
        # the exact load float: JSON round-trips float64 via repr, so a
        # device rebuilt from its description is bit-identical (lossy
        # round(load, 6) here used to break that — pinned by test)
        return {
            "id": self.user_id,
            "stack_key": self.stack.cache_key(),
            "os": self.os,
            "browser": self.browser,
            "load": self.load,
            "ua_key": self.ua.cache_key() if self.ua is not None else None,
            "canvas_key": (self.canvas.cache_key()
                           if self.canvas is not None else None),
            "fonts_key": (self.fonts.cache_key()
                          if self.fonts is not None else None),
        }
