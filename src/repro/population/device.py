"""Device: one sampled user's render-relevant state."""
from __future__ import annotations

from dataclasses import dataclass

from ..platform.stacks import AudioStack


@dataclass(frozen=True)
class Device:
    user_id: str
    stack: AudioStack
    os: str
    browser: str
    load: float  # per-user CPU load level in [0, 1), drives fickleness

    def describe(self) -> dict:
        return {
            "id": self.user_id,
            "stack_key": self.stack.cache_key(),
            "os": self.os,
            "browser": self.browser,
            "load": round(self.load, 6),
        }
