"""Math JS comparator vector: transcendental outputs of the JS engine.

The Math-JS fingerprint the paper's Table 4/5 follow-up compares
against: call a fixed battery of Math functions and hash the exact
float64 results. The JS engine's math library is the same platform libm
our ``repro.platform.mathlib`` models, so the vector's stack is just the
device's math backend — which is exactly why Table 5 can attribute DC
diversity to causes Math JS cannot see (sample rate, compressor
variant): two devices with one math library share a Math JS fingerprint
but may still differ in DC.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..platform.mathlib import get_math_backend
from .base import AudioVector


@dataclass(frozen=True)
class MathProbe:
    """The comparator stack: only the math backend is fingerprintable."""

    math_backend: str

    def cache_key(self) -> str:
        return f"mathjs|{self.math_backend}"


class MathJSVector(AudioVector):
    name = "mathjs"
    kind = "comparator"
    uses_analyser = False

    def stack_of(self, device):
        return MathProbe(device.stack.math_backend)

    def _features(self, stack, jitter):
        math = get_math_backend(stack.math_backend)
        # the classic probe battery: fixed inputs, exact float64 outputs
        return np.array([
            math.sin(1.0),
            math.sin(1.0e10),
            math.cos(10.0),
            math.cos(0.5),
            math.tanh(1.0),
            math.tanh(0.5),
            math.exp(1.0),
            math.log10(7.0),
            math.pow(np.pi, 50.0),
        ], dtype=np.float64)
