"""FM vector: frequency-swept oscillator -> compressor -> analyser.

A sine chirp built from AudioParam automation (set + linear ramp across
the whole buffer), compressed, then read through the analyser. The
automation events make this the one graph the fused planner always
declines (fused kernels assume block-position-independent params), so
the vector permanently exercises the quantum-loop reference path — its
batched bit-identity tests guard exactly that fallback.
"""
from __future__ import annotations

from ..webaudio import OfflineAudioContext
from .base import AudioVector, RENDER_LENGTH

_SWEEP_FROM_HZ = 4000.0
_SWEEP_TO_HZ = 9000.0


class FMVector(AudioVector):
    name = "fm"
    uses_analyser = True

    @staticmethod
    def _build(context):
        oscillator = context.create_oscillator()
        oscillator.type = "sine"
        sweep_end = context.length / context.sample_rate
        oscillator.frequency.set_value_at_time(_SWEEP_FROM_HZ, 0.0)
        oscillator.frequency.linear_ramp_to_value_at_time(_SWEEP_TO_HZ,
                                                          sweep_end)
        compressor = context.create_dynamics_compressor()
        analyser = context.create_analyser()
        sink = context.create_gain()
        sink.gain.value = 0.0
        oscillator.connect(compressor).connect(analyser).connect(sink) \
            .connect(context.destination)
        oscillator.start(0.0)
        return analyser

    def _features(self, stack, jitter):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(jitter))
        analyser = self._build(context)
        context.start_rendering()
        return analyser.get_float_frequency_data()

    def _features_batch(self, stack, jitters):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(),
                                      batch_size=len(jitters))
        analyser = self._build(context)
        context.start_rendering_batch()
        rows = analyser.get_float_frequency_data_batch(jitters)
        return [rows[b] for b in range(rows.shape[0])]
