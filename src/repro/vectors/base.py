"""Vector API shared by all fingerprinting vectors."""
from __future__ import annotations

import hashlib

import numpy as np

from ..platform.jitter import REFERENCE_PATH, parse_path, sample_path

#: frames rendered by every audio vector (the classic 1ch/5000/44.1k probe
#: uses a 5000-frame buffer; we keep that shape across sample rates)
RENDER_LENGTH = 5000


def digest(payload) -> str:
    """eFP digest: md5 over the exact bytes of the rendered features."""
    if isinstance(payload, np.ndarray):
        if payload.dtype == np.float64 and payload.flags.c_contiguous:
            data = payload.tobytes()  # same bytes, no copy/dispatch
        else:
            data = np.ascontiguousarray(payload, dtype=np.float64).tobytes()
    elif isinstance(payload, str):
        data = payload.encode("utf-8")
    else:
        data = repr(payload).encode("utf-8")
    return hashlib.md5(data).hexdigest()


class AudioVector:
    """Base class. Subclasses implement ``_features(stack, jitter_path)``
    and (for true batching) ``_features_batch(stack, jitters)``."""

    name = "abstract"
    #: "audio" vectors render through the webaudio engine off the device's
    #: AudioStack; "comparator" vectors (canvas/fonts/UA/mathjs) fingerprint
    #: a different per-device stack via ``stack_of`` — the analysis layer
    #: dispatches its Table 2 vs Table 3 sections on this
    kind = "audio"
    #: vectors that never touch the AnalyserNode ignore the jitter path
    uses_analyser = True

    def stack_of(self, device):
        """The per-device stack this vector fingerprints. The study planner
        keys equivalence classes on ``stack_of(device).cache_key()``, so a
        comparator vector overrides this to point at its own frozen stack
        (the device's canvas/font/UA identity) instead of the audio one."""
        return device.stack

    def render(self, stack, jitter_path: str | None = None) -> str:
        """Pure render: same (stack, path) -> bit-identical eFP, always."""
        path = self.canonical_path(jitter_path)
        jitter = parse_path(path) if self.uses_analyser else None
        return digest(self._features(stack, jitter))

    def render_batch(self, stack, jitter_paths) -> list[str]:
        """Batched pure render: one graph build + one quantum-loop pass for
        all paths of a (vector, stack) group. Returns one eFP per path,
        bit-identical to ``render(stack, path)`` of each path alone —
        batch rows never interact (pinned by tests)."""
        if not jitter_paths:
            return []
        paths = [self.canonical_path(p) for p in jitter_paths]
        jitters = [parse_path(p) if self.uses_analyser else None
                   for p in paths]
        return [digest(f) for f in self._features_batch(stack, jitters)]

    def _features_batch(self, stack, jitters):
        """Fallback: per-class loop. Subclasses override with a single
        batched render through the engine's batch axis."""
        return [self._features(stack, jitter) for jitter in jitters]

    def canonical_path(self, jitter_path: str | None) -> str:
        """The path component of this vector's cache key."""
        if not self.uses_analyser:
            return "-"
        return jitter_path if jitter_path is not None else REFERENCE_PATH

    def collect(self, stack, rng: np.random.Generator, load: float = 0.0) -> str:
        """One observation: sample this iteration's jitter path, render."""
        path = sample_path(rng, load) if self.uses_analyser else "-"
        return self.render(stack, path)

    def _features(self, stack, jitter):  # pragma: no cover
        raise NotImplementedError
