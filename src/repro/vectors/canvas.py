"""Canvas comparator vector: the drawn-probe hash of the canvas stack.

Stands in for the fingerprintjs canvas probe (draw text + shapes, hash
``toDataURL``): the hash is a pure function of the device's canvas
render identity, which ``repro.platform.canvas_stack`` models. Used as
the high-diversity comparator in Table 3 and the Canvas+Audio
additive-value analysis.
"""
from __future__ import annotations

from .base import AudioVector


class CanvasVector(AudioVector):
    name = "canvas"
    kind = "comparator"
    uses_analyser = False

    def stack_of(self, device):
        if device.canvas is None:
            raise ValueError(
                f"device {device.user_id!r} carries no canvas stack; "
                "the canvas vector needs sampler-built devices")
        return device.canvas

    def _features(self, stack, jitter):
        return stack.probe_payload()
