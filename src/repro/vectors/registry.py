"""Vector registry: names <-> vector objects.

Registration is explicit: every built-in vector goes through
``register``, which refuses duplicate names — a silent-shadowing bug
class this module used to permit via direct dict construction. Lookups
raise ``UnknownVectorError`` (a ``KeyError`` subclass, so pre-existing
``except KeyError`` callers keep working) with the sorted list of known
names in the message.
"""
from __future__ import annotations

from .am import AMVector
from .base import AudioVector
from .canvas import CanvasVector
from .custom_signal import CustomSignalVector
from .dc import DCVector
from .fft_vector import FFTVector
from .fonts import FontsVector
from .fm import FMVector
from .hybrid import HybridVector
from .mathjs import MathJSVector
from .merged_signals import MergedSignalsVector
from .useragent import UserAgentVector


class UnknownVectorError(KeyError):
    """Lookup of a vector name the registry has never seen."""

    def __init__(self, name: str, known) -> None:
        super().__init__(name)
        self.name = name
        self.known = tuple(sorted(known))

    def __str__(self) -> str:
        return f"unknown vector {self.name!r}; have {list(self.known)}"


VECTORS: dict[str, AudioVector] = {}


def register(vector: AudioVector) -> AudioVector:
    """Add ``vector`` to the registry; raise if the name is taken.

    Duplicate names used to silently shadow the earlier registration —
    now they fail loudly at import/registration time.
    """
    name = vector.name
    if not isinstance(name, str) or not name:
        raise ValueError(f"vector must carry a non-empty string name, "
                         f"got {name!r}")
    if name in VECTORS:
        raise ValueError(
            f"vector name {name!r} is already registered by "
            f"{type(VECTORS[name]).__name__}; refusing to shadow it")
    VECTORS[name] = vector
    return vector


def get_vector(name: str) -> AudioVector:
    try:
        return VECTORS[name]
    except KeyError:
        raise UnknownVectorError(name, VECTORS) from None


def audio_vector_names() -> tuple[str, ...]:
    return tuple(n for n, v in VECTORS.items() if v.kind == "audio")


def comparator_vector_names() -> tuple[str, ...]:
    return tuple(n for n, v in VECTORS.items() if v.kind == "comparator")


for _vector in (
    # audio battery (registration order is the canonical battery order)
    DCVector(),
    FFTVector(),
    HybridVector(),
    CustomSignalVector(),
    MergedSignalsVector(),
    AMVector(),
    FMVector(),
    # comparator battery
    MathJSVector(),
    CanvasVector(),
    FontsVector(),
    UserAgentVector(),
):
    register(_vector)
del _vector

AUDIO_VECTORS = audio_vector_names()
COMPARATOR_VECTORS = comparator_vector_names()
FULL_BATTERY = AUDIO_VECTORS + COMPARATOR_VECTORS
