"""Vector registry: names <-> vector objects."""
from __future__ import annotations

from .dc import DCVector
from .fft_vector import FFTVector
from .hybrid import HybridVector

VECTORS = {v.name: v for v in (DCVector(), FFTVector(), HybridVector())}


def get_vector(name: str):
    try:
        return VECTORS[name]
    except KeyError:
        raise KeyError(f"unknown vector {name!r}; have {sorted(VECTORS)}") from None
