"""repro.vectors — fingerprinting vectors.

Every audio vector is a *pure function* ``render(stack, jitter_path) ->
eFP`` (an md5 hex digest, the paper's elementary fingerprint). Purity is
load-bearing: it is what lets the study runner collapse 440k renders into
a few hundred equivalence classes.

Comparator vectors (canvas, fonts, useragent, mathjs) ride the same
machinery: each declares the per-device stack it fingerprints via
``stack_of`` and renders a deterministic payload from it, so the study
driver, cache, and analysis treat every fingerprint surface uniformly.
"""

from .base import AudioVector, digest  # noqa: F401
from .registry import (  # noqa: F401
    AUDIO_VECTORS,
    COMPARATOR_VECTORS,
    FULL_BATTERY,
    UnknownVectorError,
    VECTORS,
    audio_vector_names,
    comparator_vector_names,
    get_vector,
    register,
)

__all__ = [
    "AudioVector",
    "digest",
    "VECTORS",
    "AUDIO_VECTORS",
    "COMPARATOR_VECTORS",
    "FULL_BATTERY",
    "UnknownVectorError",
    "audio_vector_names",
    "comparator_vector_names",
    "get_vector",
    "register",
]
