"""repro.vectors — fingerprinting vectors.

Every audio vector is a *pure function* ``render(stack, jitter_path) ->
eFP`` (an md5 hex digest, the paper's elementary fingerprint). Purity is
load-bearing: it is what lets the study runner collapse 440k renders into
a few hundred equivalence classes.
"""

from .base import AudioVector, digest  # noqa: F401
from .registry import VECTORS, get_vector  # noqa: F401

__all__ = ["AudioVector", "digest", "VECTORS", "get_vector"]
