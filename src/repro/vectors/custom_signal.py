"""Custom-signal vector: PeriodicWave oscillator -> compressor -> sum.

The PeriodicWave variant of the classic compressor sample-sum probe
(SNIPPETS.md #1 readout): a custom Fourier series — mixed sine and
cosine harmonics, so both math-backend code paths contribute — through
the DynamicsCompressor, fingerprint = sum of |samples| 4500..5000.
Analyser-free, so bit-stable under load like the DC vector.
"""
from __future__ import annotations

import numpy as np

from ..webaudio import OfflineAudioContext, PeriodicWave
from .base import AudioVector, RENDER_LENGTH

#: harmonic table of the probe waveform (index 0 = ignored DC terms); a
#: 1 kHz fundamental keeps 8 harmonics under Nyquist at both sample rates
_WAVE_REAL = (0.0, 0.10, 0.30, 0.00, 0.15, 0.00, 0.05, 0.00, 0.02)
_WAVE_IMAG = (0.0, 1.00, 0.00, 0.50, 0.00, 0.25, 0.00, 0.10, 0.00)
_FUNDAMENTAL_HZ = 1000.0


class CustomSignalVector(AudioVector):
    name = "custom"
    uses_analyser = False

    @staticmethod
    def _build(context):
        oscillator = context.create_oscillator()
        oscillator.set_periodic_wave(PeriodicWave(_WAVE_REAL, _WAVE_IMAG))
        oscillator.frequency.value = _FUNDAMENTAL_HZ
        compressor = context.create_dynamics_compressor()
        oscillator.connect(compressor).connect(context.destination)
        oscillator.start(0.0)

    def _features(self, stack, jitter):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize())
        self._build(context)
        buffer = context.start_rendering()
        total = np.sum(np.abs(buffer.get_channel_data(0)[4500:5000]))
        return f"{total:.17g}"

    def _features_batch(self, stack, jitters):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(),
                                      batch_size=len(jitters))
        self._build(context)
        batch = context.start_rendering_batch()  # (B, 1, N)
        # per-row 1-D sums: same reduction as the single-render path
        return [f"{np.sum(np.abs(batch[b, 0, 4500:5000])):.17g}"
                for b in range(batch.shape[0])]
