"""Merged-signals vector: three oscillators -> merger -> compressor ->
analyser.

Three waveforms at different frequencies merged into one multi-channel
stream, compressed, then read through the AnalyserNode — the widest
graph in the battery (fan-in at the merger means the fused planner
declines it and the quantum loop renders it; batched bit-identity is
what the tests pin). Inherits the analyser's load fickleness.
"""
from __future__ import annotations

from ..webaudio import OfflineAudioContext
from .base import AudioVector, RENDER_LENGTH

#: (type, frequency) of the three merged sources
_SOURCES = (("sine", 1000.0), ("square", 2500.0), ("sawtooth", 6500.0))


class MergedSignalsVector(AudioVector):
    name = "merged"
    uses_analyser = True

    @staticmethod
    def _build(context):
        merger = context.create_channel_merger(len(_SOURCES))
        for port, (wave_type, freq) in enumerate(_SOURCES):
            oscillator = context.create_oscillator()
            oscillator.type = wave_type
            oscillator.frequency.value = freq
            oscillator.connect(merger, input=port)
            oscillator.start(0.0)
        compressor = context.create_dynamics_compressor()
        analyser = context.create_analyser()
        sink = context.create_gain()
        sink.gain.value = 0.0
        merger.connect(compressor).connect(analyser).connect(sink) \
            .connect(context.destination)
        return analyser

    def _features(self, stack, jitter):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(jitter))
        analyser = self._build(context)
        context.start_rendering()
        return analyser.get_float_frequency_data()

    def _features_batch(self, stack, jitters):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(),
                                      batch_size=len(jitters))
        analyser = self._build(context)
        context.start_rendering_batch()
        rows = analyser.get_float_frequency_data_batch(jitters)
        return [rows[b] for b in range(rows.shape[0])]
