"""Fonts comparator vector: the JS font-enumeration fingerprint.

Stands in for the width/height font-detection probe: the observable is
the set of installed font families, which ``repro.platform.font_stack``
models per device. Table 3's second comparator.
"""
from __future__ import annotations

from .base import AudioVector


class FontsVector(AudioVector):
    name = "fonts"
    kind = "comparator"
    uses_analyser = False

    def stack_of(self, device):
        if device.fonts is None:
            raise ValueError(
                f"device {device.user_id!r} carries no font stack; "
                "the fonts vector needs sampler-built devices")
        return device.fonts

    def _features(self, stack, jitter):
        return "fonts-probe-v1;" + ",".join(stack.fonts)
