"""Hybrid vector (paper Fig. 2 variant): oscillator -> compressor ->
analyser. Combines the DC probe's nonlinearity with the FFT readout, so
it inherits both the compressor's stack sensitivity and the analyser's
load fickleness.
"""
from __future__ import annotations

from ..webaudio import OfflineAudioContext
from .base import AudioVector, RENDER_LENGTH


class HybridVector(AudioVector):
    name = "hybrid"
    uses_analyser = True

    @staticmethod
    def _build(context):
        oscillator = context.create_oscillator()
        oscillator.type = "triangle"
        oscillator.frequency.value = 10000.0
        compressor = context.create_dynamics_compressor()
        analyser = context.create_analyser()
        sink = context.create_gain()
        sink.gain.value = 0.0
        oscillator.connect(compressor).connect(analyser).connect(sink) \
            .connect(context.destination)
        oscillator.start(0.0)
        return analyser

    def _features(self, stack, jitter):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(jitter))
        analyser = self._build(context)
        context.start_rendering()
        return analyser.get_float_frequency_data()

    def _features_batch(self, stack, jitters):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(),
                                      batch_size=len(jitters))
        analyser = self._build(context)
        context.start_rendering_batch()
        rows = analyser.get_float_frequency_data_batch(jitters)
        return [rows[b] for b in range(rows.shape[0])]
