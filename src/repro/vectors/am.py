"""AM vector: carrier -> ScriptProcessor ring modulator -> compressor ->
analyser.

The ScriptProcessorNode path: a 10 kHz sine carrier amplitude-modulated
by a script callback — the stand-in for an ``onaudioprocess`` JS handler
whose modulator LFO runs through JS ``Math`` (the stack's math backend),
so the script itself leaks the math library into the samples. The
modulated signal then takes the compressor + analyser readout, so the
vector is fickle under load like the other analyser vectors.
"""
from __future__ import annotations

from ..webaudio import OfflineAudioContext
from .base import AudioVector, RENDER_LENGTH

_CARRIER_HZ = 10000.0
_MODULATOR_HZ = 997.0  # prime, so the sidebands avoid the carrier's bins
_TWO_PI = 6.283185307179586


def _am_script(samples, t, math):
    """y[i] = x[i] * (0.5 + 0.5 sin(2 pi f_m t[i])) — elementwise in the
    frame axis, as the ScriptProcessorNode determinism contract requires."""
    return samples * (0.5 + 0.5 * math.sin(_TWO_PI * _MODULATOR_HZ * t))


class AMVector(AudioVector):
    name = "am"
    uses_analyser = True

    @staticmethod
    def _build(context):
        oscillator = context.create_oscillator()
        oscillator.type = "sine"
        oscillator.frequency.value = _CARRIER_HZ
        modulator = context.create_script_processor(256, _am_script)
        compressor = context.create_dynamics_compressor()
        analyser = context.create_analyser()
        sink = context.create_gain()
        sink.gain.value = 0.0
        oscillator.connect(modulator).connect(compressor).connect(analyser) \
            .connect(sink).connect(context.destination)
        oscillator.start(0.0)
        return analyser

    def _features(self, stack, jitter):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(jitter))
        analyser = self._build(context)
        context.start_rendering()
        return analyser.get_float_frequency_data()

    def _features_batch(self, stack, jitters):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(),
                                      batch_size=len(jitters))
        analyser = self._build(context)
        context.start_rendering_batch()
        rows = analyser.get_float_frequency_data_batch(jitters)
        return [rows[b] for b in range(rows.shape[0])]
