"""DC vector (paper Fig. 1): oscillator -> dynamics compressor -> sum.

The classic fingerprintjs probe: a 10 kHz triangle wave through the
compressor, fingerprint = sum of |samples| 4500..5000 of the rendered
buffer. Never touches the analyser, so it is bit-stable under load —
Table 1's only perfectly stable vector.
"""
from __future__ import annotations

import numpy as np

from ..webaudio import OfflineAudioContext
from .base import AudioVector, RENDER_LENGTH


class DCVector(AudioVector):
    name = "dc"
    uses_analyser = False

    def _features(self, stack, jitter):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize())
        oscillator = context.create_oscillator()
        oscillator.type = "triangle"
        oscillator.frequency.value = 10000.0
        compressor = context.create_dynamics_compressor()
        oscillator.connect(compressor).connect(context.destination)
        oscillator.start(0.0)
        buffer = context.start_rendering()
        total = np.sum(np.abs(buffer.get_channel_data(0)[4500:5000]))
        return f"{total:.17g}"
