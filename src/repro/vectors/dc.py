"""DC vector (paper Fig. 1): oscillator -> dynamics compressor -> sum.

The classic fingerprintjs probe: a 10 kHz triangle wave through the
compressor, fingerprint = sum of |samples| 4500..5000 of the rendered
buffer. Never touches the analyser, so it is bit-stable under load —
Table 1's only perfectly stable vector.
"""
from __future__ import annotations

import numpy as np

from ..webaudio import OfflineAudioContext
from .base import AudioVector, RENDER_LENGTH


class DCVector(AudioVector):
    name = "dc"
    uses_analyser = False

    @staticmethod
    def _build(context):
        oscillator = context.create_oscillator()
        oscillator.type = "triangle"
        oscillator.frequency.value = 10000.0
        compressor = context.create_dynamics_compressor()
        oscillator.connect(compressor).connect(context.destination)
        oscillator.start(0.0)

    def _features(self, stack, jitter):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize())
        self._build(context)
        buffer = context.start_rendering()
        total = np.sum(np.abs(buffer.get_channel_data(0)[4500:5000]))
        return f"{total:.17g}"

    def _features_batch(self, stack, jitters):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(),
                                      batch_size=len(jitters))
        self._build(context)
        batch = context.start_rendering_batch()  # (B, 1, N)
        # per-row 1-D sums: the same 500-element pairwise reduction as the
        # single-render path, so the formatted feature is digit-identical
        return [f"{np.sum(np.abs(batch[b, 0, 4500:5000])):.17g}"
                for b in range(batch.shape[0])]
