"""User-Agent comparator vector: the navigator.userAgent string.

The zero-effort fingerprint every tracker already has; Table 3's third
comparator and the UA+Audio additive-value base. A pure function of the
device's UA identity (``repro.platform.browsers.UAStack``).
"""
from __future__ import annotations

from .base import AudioVector


class UserAgentVector(AudioVector):
    name = "useragent"
    kind = "comparator"
    uses_analyser = False

    def stack_of(self, device):
        if device.ua is None:
            raise ValueError(
                f"device {device.user_id!r} carries no UA stack; "
                "the useragent vector needs sampler-built devices")
        return device.ua

    def _features(self, stack, jitter):
        return stack.ua_string()
