"""FFT vector (paper Fig. 2): oscillator -> analyser -> muted sink.

A 10 kHz sine into an AnalyserNode; the fingerprint is the frequency-bin
readout. The zero-gain sink mirrors real scripts (nothing audible) and
keeps the analyser on the rendered path.
"""
from __future__ import annotations

from ..webaudio import OfflineAudioContext
from .base import AudioVector, RENDER_LENGTH


class FFTVector(AudioVector):
    name = "fft"
    uses_analyser = True

    @staticmethod
    def _build(context):
        oscillator = context.create_oscillator()
        oscillator.type = "sine"
        oscillator.frequency.value = 10000.0
        analyser = context.create_analyser()
        sink = context.create_gain()
        sink.gain.value = 0.0
        oscillator.connect(analyser).connect(sink).connect(context.destination)
        oscillator.start(0.0)
        return analyser

    def _features(self, stack, jitter):
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(jitter))
        analyser = self._build(context)
        context.start_rendering()
        return analyser.get_float_frequency_data()

    def _features_batch(self, stack, jitters):
        # the quantum loop is jitter-independent: jitter applies per row at
        # the analyser readout, after one shared batched render
        context = OfflineAudioContext(1, RENDER_LENGTH, stack.sample_rate,
                                      config=stack.realize(),
                                      batch_size=len(jitters))
        analyser = self._build(context)
        context.start_rendering_batch()
        rows = analyser.get_float_frequency_data_batch(jitters)
        return [rows[b] for b in range(rows.shape[0])]
