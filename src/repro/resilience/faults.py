"""Deterministic fault injection for the supervised render pipeline.

A ``FaultPlan`` is a seed-deterministic description of *which* render
class keys misbehave and *how*: worker crash (``os._exit`` mid-render),
hang (sleep past the supervisor's deadline), corrupted return value,
render delay (chaos pacing), a torn checkpoint write — plus the service
fault points (``repro.service``): a WAL append torn mid-record, a
snapshot writer crashing mid-write, and a slow ingest consumer. Plans are
env-gated: ``run_study`` and its pool workers consult ``$REPRO_FAULTS``
(a path to a saved plan) on each render, so production runs pay one env
lookup and nothing else, while chaos tests flip faults on without
touching any call site.

Determinism has two halves:

* **Selection** is a pure function of ``(plan seed, fault kind, key)`` —
  an 8-byte SHA-256 draw compared against the configured fraction (or an
  explicit key list). The same plan always picks the same classes, at
  any worker count and in any execution order.
* **Occurrence counting** uses a filesystem ledger next to the plan
  file: firing occurrence ``i`` of a fault atomically claims
  ``<digest>.<i>`` with ``O_CREAT|O_EXCL``, which is race-free across
  pool workers and — crucially — survives the very crash it triggers, so
  "crash the first attempt of class X" fires exactly once no matter how
  the retry lands. ``times=None`` means "always" (permanent poison).

Crash faults fire for real (``os._exit``) only in pool workers; in the
supervising process (inline rendering) they degrade to
``SimulatedWorkerCrash`` so the study itself survives to retry.
"""
from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field

from ..io import atomic_write_json
from .errors import SimulatedWorkerCrash

ENV_VAR = "REPRO_FAULTS"

FAULT_KINDS = ("crash", "hang", "corrupt", "delay", "torn_checkpoint",
               # service fault points (repro.service): a WAL append torn
               # mid-record, a snapshot writer crashing mid-write, and a
               # consumer that drains its ingest queue too slowly
               "torn_wal", "crashed_snapshot", "slow_consumer")

#: the selection keys the service fault points fire under — singleton
#: subsystems, so plans target them with ``keys=`` rather than a fraction
WAL_KEY = "wal"
SNAPSHOT_KEY = "snapshot"
CONSUMER_KEY = "consumer"

#: what a corrupted worker return looks like — deliberately not a valid
#: 32-hex eFP digest, so result validation catches it
CORRUPT_EFP = "corrupted-return"


@dataclass(frozen=True)
class Fault:
    kind: str                      # one of FAULT_KINDS
    fraction: float = 0.0          # seed-deterministic share of keys hit
    keys: tuple[str, ...] = ()     # ... or an explicit key list
    times: int | None = 1          # occurrences per key; None = always
    seconds: float = 0.0           # sleep length for hang/delay

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {FAULT_KINDS})")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "fraction": self.fraction,
                "keys": list(self.keys), "times": self.times,
                "seconds": self.seconds}

    @classmethod
    def from_dict(cls, payload: dict) -> "Fault":
        return cls(kind=payload["kind"],
                   fraction=float(payload.get("fraction", 0.0)),
                   keys=tuple(payload.get("keys", ())),
                   times=payload.get("times"),
                   seconds=float(payload.get("seconds", 0.0)))


@dataclass
class FaultPlan:
    seed: int = 0
    faults: tuple[Fault, ...] = ()
    ledger_dir: str | None = None
    parent_pid: int | None = None
    path: str | None = field(default=None, compare=False)

    # -- persistence ---------------------------------------------------------
    def save(self, path: str) -> str:
        """Write the plan (and create its occurrence ledger) so workers
        can load it through ``$REPRO_FAULTS``. Records the saving pid as
        the supervising parent — crash faults in that pid are simulated,
        in any other pid they are real ``os._exit`` deaths."""
        ledger = self.ledger_dir or path + ".ledger"
        os.makedirs(ledger, exist_ok=True)
        self.ledger_dir = ledger
        self.parent_pid = os.getpid()
        self.path = path
        atomic_write_json(path, {
            "format": 1, "seed": self.seed, "parent_pid": self.parent_pid,
            "ledger_dir": ledger,
            "faults": [f.to_dict() for f in self.faults],
        })
        return path

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        return cls(seed=int(payload["seed"]),
                   faults=tuple(Fault.from_dict(f) for f in payload["faults"]),
                   ledger_dir=payload["ledger_dir"],
                   parent_pid=payload.get("parent_pid"),
                   path=path)

    # -- selection / occurrence ledger ---------------------------------------
    def _selected(self, fault: Fault, key: str) -> bool:
        if key in fault.keys:
            return True
        if fault.fraction <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}|{fault.kind}|{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < fault.fraction

    def _claim(self, index: int, fault: Fault, key: str) -> bool:
        """Atomically claim the next unfired occurrence of (fault, key);
        False once the fault has fired ``times`` times already."""
        if fault.times is None:
            return True
        digest = hashlib.sha256(f"{index}|{key}".encode()).hexdigest()[:24]
        for occurrence in range(fault.times):
            marker = os.path.join(self.ledger_dir, f"{digest}.{occurrence}")
            try:
                os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
        return False

    # -- firing --------------------------------------------------------------
    _RENDER_KINDS = frozenset({"crash", "hang", "corrupt", "delay"})

    def fire_render_fault(self, key: str) -> bool:
        """Run crash/hang/delay faults for one render of ``key``; return
        True when the render's result must be corrupted."""
        corrupt = False
        for index, fault in enumerate(self.faults):
            if fault.kind not in self._RENDER_KINDS \
                    or not self._selected(fault, key):
                continue
            if not self._claim(index, fault, key):
                continue
            if fault.kind in ("hang", "delay"):
                time.sleep(fault.seconds)
            elif fault.kind == "corrupt":
                corrupt = True
            elif fault.kind == "crash":
                if self.parent_pid is not None and os.getpid() == self.parent_pid:
                    raise SimulatedWorkerCrash(f"injected crash rendering {key}")
                os._exit(13)
        return corrupt

    def fire_torn_checkpoint(self, path: str, text: str) -> bool:
        """If a torn-checkpoint fault is due, leave a truncated
        (non-atomic, invalid-JSON) file at ``path`` — exactly what a
        crash mid-write through a *naive* writer would leave — and tell
        the caller to skip the real write."""
        for index, fault in enumerate(self.faults):
            if fault.kind != "torn_checkpoint":
                continue
            if not self._claim(index, fault, "checkpoint"):
                continue
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text[:max(1, len(text) // 3)])
            return True
        return False

    # -- service fault points (repro.service) --------------------------------
    def fire_torn_wal(self, fh, line: str) -> bool:
        """If a torn-WAL fault is due, write a truncated fragment of
        ``line`` to the open WAL handle — exactly the bytes a SIGKILL
        landing mid-append would leave — and tell the caller to die
        instead of completing the append."""
        for index, fault in enumerate(self.faults):
            if fault.kind != "torn_wal" or not self._selected(fault, WAL_KEY):
                continue
            if not self._claim(index, fault, WAL_KEY):
                continue
            fh.write(line[:max(1, len(line) // 2)])
            fh.flush()
            return True
        return False

    def fire_crashed_snapshot(self, path: str, text: str) -> bool:
        """If a crashed-snapshot fault is due, leave a truncated
        (non-atomic, invalid-JSON) file at ``path`` — what a snapshot
        writer dying mid-write through a naive writer would leave — and
        tell the caller to skip the real write."""
        for index, fault in enumerate(self.faults):
            if fault.kind != "crashed_snapshot" \
                    or not self._selected(fault, SNAPSHOT_KEY):
                continue
            if not self._claim(index, fault, SNAPSHOT_KEY):
                continue
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text[:max(1, len(text) // 3)])
            return True
        return False

    def fire_slow_consumer(self) -> float:
        """Seconds the service's ingest consumer must stall before
        draining its next batch; 0.0 when no slow-consumer fault is due.
        The delay is returned (not slept here) so the async consumer can
        await it without blocking the event loop."""
        total = 0.0
        for index, fault in enumerate(self.faults):
            if fault.kind != "slow_consumer" \
                    or not self._selected(fault, CONSUMER_KEY):
                continue
            if not self._claim(index, fault, CONSUMER_KEY):
                continue
            total += fault.seconds
        return total


# -- the env-gated hook (the only thing hot paths touch) ----------------------

_plan_cache: dict[str, FaultPlan] = {}


def active_plan() -> FaultPlan | None:
    """The plan named by ``$REPRO_FAULTS``, or None. Cached per path —
    pool workers load it once and reuse it for every render."""
    path = os.environ.get(ENV_VAR)
    if not path:
        return None
    plan = _plan_cache.get(path)
    if plan is None:
        plan = _plan_cache[path] = FaultPlan.load(path)
    return plan


def render_fault(key: str) -> bool:
    """Hook called by the render workers per class key. Returns True when
    the caller must corrupt its result (simulating a bad return)."""
    plan = active_plan()
    return plan.fire_render_fault(key) if plan is not None else False


def torn_checkpoint(path: str, text: str) -> bool:
    """Hook called by the checkpoint writer. True = a torn file was left
    at ``path`` and the real write must be skipped."""
    plan = active_plan()
    return plan.fire_torn_checkpoint(path, text) if plan is not None else False


def torn_wal(fh, line: str) -> bool:
    """Hook called by the service WAL per append. True = a torn fragment
    was written and the caller must simulate its own death."""
    plan = active_plan()
    return plan.fire_torn_wal(fh, line) if plan is not None else False


def crashed_snapshot(path: str, text: str) -> bool:
    """Hook called by the service snapshot writer. True = a torn file was
    left at ``path`` and the real write must be skipped."""
    plan = active_plan()
    return plan.fire_crashed_snapshot(path, text) if plan is not None else False


def slow_consumer() -> float:
    """Hook called by the service ingest consumer per batch: seconds to
    stall before draining (0.0 = no fault due)."""
    plan = active_plan()
    return plan.fire_slow_consumer() if plan is not None else 0.0
