"""Retry policy: capped exponential backoff with deterministic jitter,
plus the run-wide retry budget.

Backoff jitter is *seed-derived*, not random: the delay for attempt ``n``
of job ``token`` is a pure function of ``(seed, token, n)``, so a rerun
of the same study with the same faults waits the same schedule — chaos
tests stay reproducible and two workers never need a shared clock to
avoid thundering-herd resubmission (their tokens differ, so their jitter
does too).
"""
from __future__ import annotations

import hashlib
from dataclasses import dataclass


def _unit_interval(seed: int, token: str, attempt: int) -> float:
    """Deterministic u in [0, 1) from (seed, token, attempt)."""
    digest = hashlib.sha256(f"{seed}|{token}|{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for one supervised run. Defaults favour tests and the paper
    workload: renders are sub-second, so deadlines/delays stay small."""

    #: failures of one job before it is quarantined (splittable jobs are
    #: bisected first, see ``bisect_after``)
    max_attempts: int = 4
    #: failures of one *splittable* job before it is bisected into halves
    #: to isolate the poison member from its healthy siblings
    bisect_after: int = 2
    #: backoff: base * factor**(failures-1), capped, jittered
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.25
    #: per-job deadline once submitted to the pool, measured on the
    #: supervisor's *monotonic* clock (``time.monotonic``; never wall
    #: time, so an NTP step or DST jump cannot fire deadlines early or
    #: stall retries); a job still running past it is presumed hung and
    #: its pool is torn down
    job_deadline_s: float = 60.0
    #: pool rebuilds tolerated before degrading to inline rendering
    max_pool_rebuilds: int = 3

    def backoff_delay(self, failures: int, seed: int, token: str) -> float:
        """Delay before re-submitting a job that has failed ``failures``
        times — capped exponential plus deterministic jitter."""
        base = self.base_delay_s * self.backoff_factor ** max(0, failures - 1)
        base = min(base, self.max_delay_s)
        jitter = self.jitter_fraction * _unit_interval(seed, token, failures)
        return base * (1.0 + jitter)


class RetryBudget:
    """Caps total retry work across a run. Every *re*-submission spends
    one unit; once the budget is dry no job is retried again — remaining
    failures quarantine immediately, bounding worst-case runtime."""

    def __init__(self, limit: int):
        if limit < 0:
            raise ValueError(f"retry budget must be >= 0, got {limit}")
        self.limit = limit
        self.spent = 0

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.limit

    def try_spend(self, n: int = 1) -> bool:
        """Reserve ``n`` retries; False (and no spend) if that would
        overrun the budget."""
        if self.spent + n > self.limit:
            return False
        self.spent += n
        return True

    @classmethod
    def for_jobs(cls, job_count: int) -> "RetryBudget":
        """Default sizing: generous for small runs, linear at scale."""
        return cls(max(32, 4 * job_count))
