"""Structured failures raised (and simulated) by the resilience layer."""
from __future__ import annotations


class StudyExecutionError(RuntimeError):
    """A supervised run could not complete every render job.

    Raised after the supervisor has drained everything it *could* finish:
    either specific jobs kept failing past the retry policy (their class
    keys are quarantined) or the run-wide retry budget ran dry (a
    systematically broken stack — every remaining job is quarantined
    instead of hanging forever). Carries enough structure for callers to
    report, alert, or re-run just the quarantined classes.
    """

    def __init__(self, message: str, *, quarantined=(),
                 budget_spent: int = 0, budget_limit: int = 0,
                 budget_exhausted: bool = False):
        self.quarantined: list[str] = sorted(quarantined)
        self.budget_spent = budget_spent
        self.budget_limit = budget_limit
        self.budget_exhausted = budget_exhausted
        preview = ", ".join(self.quarantined[:5])
        if len(self.quarantined) > 5:
            preview += f", ... ({len(self.quarantined)} total)"
        detail = f"{message} [quarantined: {preview or 'none'}; " \
                 f"retry budget {budget_spent}/{budget_limit}" \
                 f"{', exhausted' if budget_exhausted else ''}]"
        super().__init__(detail)


class SimulatedWorkerCrash(RuntimeError):
    """Stand-in for a hard worker death when the fault injector fires in
    the supervising process itself (inline rendering): ``os._exit`` there
    would kill the study, so the crash degrades to an exception the
    supervisor handles through the same retry path."""
