"""SupervisedExecutor: the fault-tolerant replacement for bare
``ProcessPoolExecutor.map`` in the study's RENDER phase.

Supervision model (one loop, four recovery paths):

* **Individual submission + per-job deadlines.** Jobs are submitted one
  future at a time (bounded in-flight backlog), each stamped with a
  deadline on the supervisor's monotonic clock — every deadline and
  backoff instant here flows through ``self._clock`` (``time.monotonic``
  by default, injectable for tests), never ``time.time``, so a stepped
  wall clock cannot fire deadlines early. ``map`` offers neither; with
  it, one bad job aborts the whole iterator.
* **Retry with capped exponential backoff.** A failed job re-enters the
  queue after a seed-deterministic jittered delay (``RetryPolicy``);
  every re-submission spends the run-wide ``RetryBudget``, so a
  systematically broken workload terminates instead of retrying forever.
* **Bisection.** A *splittable* job (a batch group) that keeps failing is
  cut in half: the poison member is cornered in O(log n) splits while its
  healthy siblings render normally, instead of the whole group dying
  together.
* **Degradation.** A worker crash breaks the entire pool
  (``BrokenProcessPool``) — the supervisor harvests whatever results
  completed, charges the in-flight jobs, and rebuilds the pool. A hung
  worker (deadline overrun) gets its pool terminated the same way. Past
  ``max_pool_rebuilds`` the supervisor stops trusting pools entirely and
  renders inline in the supervising process.

Jobs that exhaust their attempts (or the budget) are *quarantined*: the
run completes everything else, then raises ``StudyExecutionError`` naming
the quarantined class keys. A fault-free run takes none of these paths
and yields exactly one result per job — bit-identical, same-order
metrics, any worker count.
"""
from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, \
    ProcessPoolExecutor, wait

from ..obs import NULL_RECORDER
from .errors import SimulatedWorkerCrash, StudyExecutionError
from .policy import RetryBudget, RetryPolicy

#: failure kind -> recorder counter
_FAIL_COUNTERS = {
    "crash": "retry.crashes",
    "timeout": "retry.timeouts",
    "corrupt": "retry.corrupt_returns",
    "error": "retry.worker_errors",
}


class _JobState:
    __slots__ = ("job", "failures", "not_before", "token")

    def __init__(self, job, token: str):
        self.job = job
        self.failures = 0
        self.not_before = 0.0
        self.token = token


class SupervisedExecutor:
    """Runs picklable ``worker(job)`` calls to completion under the
    supervision model above. ``run`` is a generator yielding results in
    completion order (callers must not depend on ordering)."""

    def __init__(self, worker, *, workers: int = 0,
                 policy: RetryPolicy | None = None,
                 budget: RetryBudget | None = None,
                 recorder=NULL_RECORDER, seed: int = 0,
                 splitter=None, validator=None, keys_of=None,
                 sleep=time.sleep, clock=time.monotonic):
        self._worker = worker
        self.workers = max(0, workers)
        self.policy = policy or RetryPolicy()
        self.budget = budget
        self._recorder = recorder
        # the null-recorder fast path is a study-wide contract: a disabled
        # recorder sees ZERO per-job calls, so supervision metrics go
        # through this flag (the plain-dict summary() is always kept)
        self._measuring = bool(getattr(recorder, "enabled", False))
        self._seed = seed
        self._splitter = splitter
        self._validator = validator
        self._keys_of = keys_of or (lambda job: [repr(job)])
        self._sleep = sleep
        self._clock = clock
        self._quarantined: list[str] = []
        self._counts = {"attempts": 0, "retries": 0, "timeouts": 0,
                        "crashes": 0, "worker_errors": 0,
                        "corrupt_returns": 0, "bisections": 0,
                        "pool_rebuilds": 0}
        self._inline_fallback = False

    # -- public surface ------------------------------------------------------
    def run(self, jobs):
        """Yield one result per job that completes; raise
        ``StudyExecutionError`` at the end if any job was quarantined."""
        jobs = list(jobs)
        if self.budget is None:
            self.budget = RetryBudget.for_jobs(len(jobs))
        states = deque(_JobState(job, self._keys_of(job)[0]) for job in jobs)
        if self.workers > 1 and states:
            yield from self._run_pooled(states)
        else:
            yield from self._run_inline(states)
        if self._quarantined:
            raise StudyExecutionError(
                "supervised execution gave up on "
                f"{len(self._quarantined)} render class(es)",
                quarantined=self._quarantined,
                budget_spent=self.budget.spent,
                budget_limit=self.budget.limit,
                budget_exhausted=self.budget.exhausted)

    @property
    def retries(self) -> int:
        """Retries so far — read by the live progress heartbeat."""
        return self._counts["retries"]

    def summary(self) -> dict:
        """Report-shaped snapshot: the ``retry`` and ``degraded`` sections
        of the run report (see ``repro.obs.report``)."""
        c = self._counts
        return {
            "retry": {
                "attempts": c["attempts"], "retries": c["retries"],
                "timeouts": c["timeouts"], "crashes": c["crashes"],
                "worker_errors": c["worker_errors"],
                "corrupt_returns": c["corrupt_returns"],
                "bisections": c["bisections"],
                "quarantined": sorted(self._quarantined),
                "budget": {
                    "limit": self.budget.limit if self.budget else 0,
                    "spent": self.budget.spent if self.budget else 0,
                    "exhausted": bool(self.budget and self.budget.exhausted),
                },
            },
            "degraded": {
                "pool_rebuilds": c["pool_rebuilds"],
                "inline_fallback": self._inline_fallback,
            },
        }

    # -- shared failure handling ---------------------------------------------
    def _record_attempt(self) -> None:
        self._counts["attempts"] += 1
        if self._measuring:
            self._recorder.count("retry.attempts")

    def _fail(self, state: _JobState, kind: str, states: deque) -> None:
        """One failed attempt: count it, then bisect, quarantine, or
        schedule a backed-off retry."""
        counter_key = {"crash": "crashes", "timeout": "timeouts",
                       "corrupt": "corrupt_returns",
                       "error": "worker_errors"}[kind]
        self._counts[counter_key] += 1
        if self._measuring:
            self._recorder.count(_FAIL_COUNTERS[kind])
            self._recorder.event("job.failed", failure=kind,
                                 key=state.token,
                                 failures=state.failures + 1)
        state.failures += 1

        if self._splitter is not None \
                and state.failures >= self.policy.bisect_after:
            halves = self._splitter(state.job)
            if halves and len(halves) > 1:
                self._counts["bisections"] += 1
                if self._measuring:
                    self._recorder.count("retry.bisections")
                    self._recorder.event("job.bisected", key=state.token,
                                         halves=len(halves))
                for sub in reversed(halves):
                    states.appendleft(_JobState(sub, self._keys_of(sub)[0]))
                return

        if state.failures >= self.policy.max_attempts \
                or not self.budget.try_spend():
            keys = self._keys_of(state.job)
            self._quarantined.extend(keys)
            if self._measuring:
                self._recorder.count("retry.quarantined", len(keys))
                self._recorder.event("job.quarantined", keys=list(keys),
                                     failures=state.failures)
            return

        delay = self.policy.backoff_delay(state.failures, self._seed,
                                          state.token)
        self._counts["retries"] += 1
        if self._measuring:
            self._recorder.count("retry.retries")
            self._recorder.observe("retry.backoff_s", delay)
            self._recorder.event("job.retry", key=state.token,
                                 failures=state.failures, delay_s=delay)
        state.not_before = self._clock() + delay
        states.append(state)

    def _classify(self, exc: BaseException) -> str:
        return "crash" if isinstance(exc, (BrokenExecutor, SimulatedWorkerCrash)) \
            else "error"

    def _valid(self, state: _JobState, result) -> bool:
        if self._validator is None:
            return True
        try:
            return bool(self._validator(state.job, result))
        except Exception:
            return False

    def _pop_ready(self, states: deque, now: float) -> _JobState | None:
        """Next state whose backoff has elapsed (scans the queue once)."""
        for _ in range(len(states)):
            state = states.popleft()
            if state.not_before <= now:
                return state
            states.append(state)
        return None

    # -- inline execution ----------------------------------------------------
    def _run_inline(self, states: deque):
        """Render in the supervising process: the degraded path (and the
        natural one for small/unpooled runs). No deadlines — a genuine
        hang here is a genuine hang of the caller — but crashes surface
        as exceptions and go through the same retry machinery."""
        while states:
            now = self._clock()
            state = self._pop_ready(states, now)
            if state is None:
                self._sleep(max(0.0, min(s.not_before for s in states) - now))
                continue
            self._record_attempt()
            try:
                result = self._worker(state.job)
            except Exception as exc:
                self._fail(state, self._classify(exc), states)
                continue
            if not self._valid(state, result):
                self._fail(state, "corrupt", states)
                continue
            yield result

    # -- pooled execution ----------------------------------------------------
    def _new_pool(self) -> ProcessPoolExecutor | None:
        try:
            return ProcessPoolExecutor(max_workers=self.workers)
        except Exception:
            return None

    def _rebuild_pool(self, pool) -> ProcessPoolExecutor | None:
        """Tear down a broken/wedged pool; a fresh one, or None once the
        rebuild allowance is spent (inline fallback)."""
        if pool is not None:
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except Exception:
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
        self._counts["pool_rebuilds"] += 1
        if self._measuring:
            self._recorder.count("degraded.pool_rebuilds")
            self._recorder.event("pool.rebuild",
                                 rebuilds=self._counts["pool_rebuilds"])
        if self._counts["pool_rebuilds"] > self.policy.max_pool_rebuilds:
            return None
        return self._new_pool()

    def _run_pooled(self, states: deque):
        pool = self._new_pool()
        in_flight: dict = {}  # future -> (state, deadline)
        try:
            while states or in_flight:
                if pool is None:
                    # pool death past the rebuild allowance: drain what is
                    # left inline, in this process
                    if not self._inline_fallback:
                        self._inline_fallback = True
                        if self._measuring:
                            self._recorder.count("degraded.inline_fallbacks")
                            self._recorder.event("pool.inline_fallback")
                    for _, (state, _) in in_flight.items():
                        states.append(state)
                    in_flight.clear()
                    yield from self._run_inline(states)
                    return

                now = self._clock()
                while states and len(in_flight) < 2 * self.workers:
                    state = self._pop_ready(states, now)
                    if state is None:
                        break
                    self._record_attempt()
                    try:
                        future = pool.submit(self._worker, state.job)
                    except (BrokenExecutor, RuntimeError):
                        self._fail(state, "crash", states)
                        pool = self._rebuild_pool(pool)
                        break
                    in_flight[future] = (state, now + self.policy.job_deadline_s)
                if pool is None or not in_flight:
                    if states and not in_flight:
                        # everything queued is backing off — wait it out
                        now = self._clock()
                        self._sleep(max(0.0, min(s.not_before
                                                 for s in states) - now))
                    continue

                # wake at the earliest interesting instant: a job deadline
                # or a backed-off job becoming ready for a free slot
                wake_at = min(d for _, d in in_flight.values())
                if states and len(in_flight) < 2 * self.workers:
                    wake_at = min(wake_at,
                                  min(s.not_before for s in states))
                done, _ = wait(in_flight.keys(),
                               timeout=max(0.0, wake_at - self._clock()),
                               return_when=FIRST_COMPLETED)

                pool_broken = False
                for future in done:
                    state, _ = in_flight.pop(future)
                    try:
                        result = future.result()
                    except Exception as exc:
                        kind = self._classify(exc)
                        pool_broken = pool_broken or kind == "crash"
                        self._fail(state, kind, states)
                        continue
                    if not self._valid(state, result):
                        self._fail(state, "corrupt", states)
                        continue
                    yield result

                if pool_broken:
                    # the pool died under the remaining in-flight jobs too:
                    # charge them and start a fresh pool
                    for future, (state, _) in in_flight.items():
                        self._fail(state, "crash", states)
                    in_flight.clear()
                    pool = self._rebuild_pool(pool)
                    continue

                now = self._clock()
                expired = [f for f, (_, deadline) in in_flight.items()
                           if now >= deadline]
                if expired:
                    # a worker blew its deadline: presume it hung. There is
                    # no cancelling a running task, so the whole pool goes;
                    # the overdue jobs are charged, innocent in-flight
                    # siblings are requeued free of charge.
                    for future in expired:
                        state, _ = in_flight.pop(future)
                        self._fail(state, "timeout", states)
                    for future, (state, _) in in_flight.items():
                        states.append(state)
                    in_flight.clear()
                    pool = self._rebuild_pool(pool)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
