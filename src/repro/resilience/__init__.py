"""repro.resilience — fault-tolerant execution for the study pipeline.

Four cooperating pieces:

  executor    ``SupervisedExecutor``: individual job submission with
              per-job deadlines, retry with capped exponential backoff +
              deterministic jitter, batch bisection to corner poison
              classes, pool rebuild on crash/hang, inline fallback on
              repeated pool death, quarantine + ``StudyExecutionError``
              instead of ``BrokenProcessPool`` or a hang.
  policy      ``RetryPolicy`` (the knobs) and ``RetryBudget`` (the
              run-wide cap that bounds total retry work).
  checkpoint  crash-safe progress snapshots keyed by render-class key,
              resumed by ``run_study(checkpoint_path=...)``.
  faults      the seed-deterministic, env-gated (``$REPRO_FAULTS``)
              fault-injection plan — worker crash, hang, corrupted
              return, render delay, torn checkpoint write — that chaos
              tests and the chaos benchmark drive recovery paths with.

The invariant the whole package defends: whenever recovery succeeds, the
final dataset is bit-identical to a fault-free run's.
"""

from .checkpoint import (CHECKPOINT_FORMAT, CHECKPOINT_KIND,  # noqa: F401
                         load_checkpoint, study_fingerprint, write_checkpoint)
from .errors import SimulatedWorkerCrash, StudyExecutionError  # noqa: F401
from .executor import SupervisedExecutor  # noqa: F401
from .faults import CORRUPT_EFP, Fault, FaultPlan, render_fault  # noqa: F401
from .policy import RetryBudget, RetryPolicy  # noqa: F401

__all__ = [
    "SupervisedExecutor", "RetryPolicy", "RetryBudget",
    "StudyExecutionError", "SimulatedWorkerCrash",
    "Fault", "FaultPlan", "CORRUPT_EFP", "render_fault",
    "load_checkpoint", "write_checkpoint", "study_fingerprint",
    "CHECKPOINT_KIND", "CHECKPOINT_FORMAT",
]
