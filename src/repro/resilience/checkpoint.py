"""Study render checkpoints: crash-safe progress snapshots + resume.

A checkpoint is one JSON document mapping completed render-class keys to
their eFPs, stamped with the study fingerprint (seed/user_count/
iterations/vectors) that produced them. ``run_study(checkpoint_path=...)``
writes one every N completed render jobs through the shared atomic
writer, so a killed run resumes by re-rendering only the classes the
checkpoint doesn't already hold — the resumed dataset is byte-identical
to an uninterrupted one because eFPs are pure functions of their key.

Resume is defensive in both directions: a checkpoint whose fingerprint
belongs to a *different* study raises (silently mixing studies would
poison the dataset), while an unreadable/torn file — the artifact of a
kill mid-write predating the atomic writer, or an injected
``torn_checkpoint`` fault — is quarantined to ``<path>.corrupt`` and the
run simply starts cold.
"""
from __future__ import annotations

import json
import os

from ..io import atomic_write_text
from . import faults

CHECKPOINT_KIND = "repro.study.checkpoint"
CHECKPOINT_FORMAT = 1


def study_fingerprint(seed: int, user_count: int, iterations: int,
                      vectors) -> dict:
    return {"seed": seed, "user_count": user_count,
            "iterations": iterations, "vectors": list(vectors)}


def write_checkpoint(path: str, study: dict, rendered: dict,
                     completed_jobs: int) -> bool:
    """Atomically persist progress; False when an injected torn-write
    fault left a truncated file instead (simulating a crash mid-write)."""
    payload = {
        "kind": CHECKPOINT_KIND,
        "format": CHECKPOINT_FORMAT,
        "study": dict(study),
        "completed_jobs": completed_jobs,
        "rendered": dict(rendered),
    }
    text = json.dumps(payload) + "\n"
    if faults.torn_checkpoint(path, text):
        return False
    atomic_write_text(path, text)
    return True


def _quarantine(path: str) -> None:
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        pass  # quarantine is best-effort; the load already failed safely


def load_checkpoint(path: str, study: dict) -> tuple[dict[str, str], str | None]:
    """Load a checkpoint for resuming ``study``.

    Returns ``(rendered, problem)``: a missing file is a clean cold start
    (``({}, None)``); an unreadable or structurally invalid file is
    quarantined to ``<path>.corrupt`` and reported (``({}, reason)``); a
    *readable* checkpoint from a different study fingerprint raises
    ``ValueError`` naming the mismatched field.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return {}, None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        _quarantine(path)
        return {}, f"unreadable checkpoint ({exc.__class__.__name__})"

    if not isinstance(payload, dict) \
            or payload.get("kind") != CHECKPOINT_KIND \
            or payload.get("format") != CHECKPOINT_FORMAT \
            or not isinstance(payload.get("study"), dict) \
            or not isinstance(payload.get("rendered"), dict):
        _quarantine(path)
        return {}, "malformed checkpoint structure"

    theirs = payload["study"]
    # compare every field the expected fingerprint carries: the base
    # study identity, plus any extra scoping a caller stamped in (the
    # sharded driver adds a "shard" range so one shard's checkpoint can
    # never resume another's)
    for field in study:
        if theirs.get(field) != study[field]:
            raise ValueError(
                f"checkpoint at {path} belongs to a different study: "
                f"{field} is {theirs.get(field)!r}, this run has "
                f"{study[field]!r} — delete it (or point checkpoint_path "
                "elsewhere) to start fresh")

    rendered = payload["rendered"]
    if not all(isinstance(k, str) and isinstance(v, str)
               for k, v in rendered.items()):
        _quarantine(path)
        return {}, "checkpoint holds non-string render entries"
    return dict(rendered), None
