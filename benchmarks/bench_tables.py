#!/usr/bin/env python
"""Tables 2–5 pipeline benchmark: the full fingerprint battery (7 audio
vectors + 4 comparators) rendered through the study driver, then the
comparison analysis (``repro.analysis.tables``) timed and acceptance-
gated on the paper's qualitative invariants.

Measures:

  render   full-battery study wall clock (equivalence-class cached)
  tables   tables-report build wall clock and users/s throughput

and verifies the acceptance properties:

  - determinism: two table builds serialize byte-identically and the
    report passes its own schema check;
  - Table 2/3 shape: every audio vector's entropy sits far below the
    canvas/fonts/useragent comparators (ratio gate);
  - additive value: pairing audio with each comparator adds entropy,
    in the paper's ~+10% relative regime for the high-entropy bases;
  - match scores: >= the floor once training sees two iterations;
  - Table 4/5: the math library explains only part of the DC signal,
    overall and per platform.

The committed JSON is a regression-sentinel baseline: the watched gates
are dimensionless ratios/scores (scale-robust), plus the tables
throughput.

Usage: PYTHONPATH=src python benchmarks/bench_tables.py [--users N]
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import RenderCache, run_study  # noqa: E402
from repro.analysis.tables import (build_tables_report,  # noqa: E402
                                   dumps_tables_report,
                                   validate_tables_report)
from repro.vectors import FULL_BATTERY  # noqa: E402

#: acceptance floors/gates (checked against the fresh run itself)
MIN_COMPARATOR_OVER_AUDIO = 2.0   # canvas/fonts/ua H vs best audio H
MIN_MATCH_SCORE_S2 = 0.95         # revisit linkage once s >= 2
MIN_ADDITIVE_DELTA_PCT = 2.0      # audio must add measurable entropy


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=2093)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--out",
                        default=os.path.join(_HERE, "BENCH_tables.json"))
    args = parser.parse_args()

    grid_items = args.users * args.iterations * len(FULL_BATTERY)
    print(f"workload: {args.users} users x {args.iterations} iterations "
          f"x {len(FULL_BATTERY)} vectors = {grid_items} grid items")

    t0 = time.perf_counter()
    dataset = run_study(user_count=args.users, iterations=args.iterations,
                        vectors=FULL_BATTERY, seed=args.seed,
                        cache=RenderCache())
    render_wall = time.perf_counter() - t0
    print(f"render:  {render_wall:8.2f}s (full battery, cached study)")

    t0 = time.perf_counter()
    report = build_tables_report(dataset)
    tables_wall = time.perf_counter() - t0
    first_bytes = dumps_tables_report(report)
    second_bytes = dumps_tables_report(build_tables_report(dataset))
    byte_identical = first_bytes == second_bytes
    users_per_s = args.users / tables_wall if tables_wall > 0 else 0.0
    print(f"tables:  {tables_wall:8.4f}s ({users_per_s:,.0f} users/s, "
          f"{len(first_bytes)} bytes, byte_identical={byte_identical})")

    problems = validate_tables_report(report)

    audio = report["table2_audio"]["vectors"]
    comp = report["table3_comparators"]["vectors"]
    max_audio_bits = max(v["entropy_bits"] for v in audio.values())
    min_comp_bits = min(comp[name]["entropy_bits"]
                        for name in ("canvas", "fonts", "useragent"))
    comparator_over_audio = (min_comp_bits / max_audio_bits
                             if max_audio_bits > 0 else 0.0)

    pairs = {p["base"]: p for p in report["additive_value"]["pairs"]}
    additive_min = min(pairs[b]["delta_pct"]
                       for b in ("canvas", "fonts", "useragent"))
    scores = report["match_scores"]["scores"]
    match_min_s2 = min(v for per_split in scores.values()
                       for s, v in per_split.items() if int(s) >= 2)
    table4 = report["table4_mathjs"]
    table5_ok = all(row["dc_distinct"] >= row["mathjs_distinct"]
                    for row in report["table5_platforms"])

    print(f"gates:   comparator/audio H ratio {comparator_over_audio:.2f}, "
          f"additive min {additive_min:+.2f}%, "
          f"match(s>=2) min {match_min_s2:.4f}, "
          f"dc/mathjs H {table4['dc_over_mathjs_entropy']:.2f}")

    result = {
        "benchmark": "bench_tables",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "users": args.users,
            "iterations": args.iterations,
            "vectors": list(FULL_BATTERY),
            "grid_items": grid_items,
        },
        "render_wall_s": round(render_wall, 4),
        "tables": {
            "wall_s": round(tables_wall, 6),
            "users_per_s": round(users_per_s, 1),
            "report_bytes": len(first_bytes),
        },
        "gates": {
            "comparator_over_audio_entropy": round(comparator_over_audio, 4),
            "additive_min_delta_pct": round(additive_min, 4),
            "additive_canvas_delta_pct": round(
                pairs["canvas"]["delta_pct"], 4),
            "additive_useragent_delta_pct": round(
                pairs["useragent"]["delta_pct"], 4),
            "match_score_min_s2": round(match_min_s2, 6),
            "dc_over_mathjs_entropy": table4["dc_over_mathjs_entropy"],
        },
        "entropy": {
            "audio_max_bits": max_audio_bits,
            "comparator_min_bits": min_comp_bits,
            "combined_all_bits":
                report["combined_all"]["entropy_bits"],
        },
        "table5_dc_ge_mathjs_everywhere": table5_ok,
        "report_byte_identical": byte_identical,
        "schema_problems": problems,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"-> {args.out}")

    failures = []
    if problems:
        failures.append(f"tables report failed schema check: {problems[:3]}")
    if not byte_identical:
        failures.append("tables report is not byte-deterministic")
    if comparator_over_audio < MIN_COMPARATOR_OVER_AUDIO:
        failures.append(
            f"comparator/audio entropy ratio {comparator_over_audio:.2f} "
            f"< {MIN_COMPARATOR_OVER_AUDIO} (Table 2/3 shape lost)")
    if additive_min < MIN_ADDITIVE_DELTA_PCT:
        failures.append(f"additive value {additive_min:+.2f}% "
                        f"< +{MIN_ADDITIVE_DELTA_PCT}% floor")
    if match_min_s2 < MIN_MATCH_SCORE_S2:
        failures.append(f"match score (s>=2) {match_min_s2:.4f} "
                        f"< {MIN_MATCH_SCORE_S2} floor")
    if table4["dc_over_mathjs_entropy"] is None \
            or table4["dc_over_mathjs_entropy"] <= 1.0:
        failures.append("math library explains all of DC "
                        "(Table 4 attribution lost)")
    if not table5_ok:
        failures.append("a platform shows more mathjs than DC diversity "
                        "(Table 5 inverted)")
    if failures:
        print("ACCEPTANCE FAILED: " + "; ".join(failures))
        return 1
    print("acceptance: deterministic, Table 2-5 invariants hold  [ok]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
