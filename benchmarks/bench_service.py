#!/usr/bin/env python
"""Online matching-service benchmark: sustained throughput, overload
shedding, and crash-recovery replay speed.

Four phases over one seeded synthetic visit stream:

  sustained   ingest the full stream, then a lookup sweep — visits/s,
              lookups/s, p50/p99 lookup latency (recorder histograms)
  overload    offer 2x the queue capacity in concurrent bursts against
              a deliberately stalled consumer — the shed rate must be
              typed (every refused visit got an ``IngestShed``), and
              lookup p99 must stay bounded *while* shedding
  recovery    delete the snapshot and time a cold full-WAL replay —
              replayed visits/s, plus the byte-identity gate (replayed
              state == live state, byte for byte)
  gates       the incremental-vs-batch collation pin rechecked at bench
              scale

The JSON lands in ``BENCH_service.json`` and the regression sentinel
(``repro.obs.regress``) watches the scale-invariant rates/latencies.

Usage: PYTHONPATH=src python benchmarks/bench_service.py [--users N]
       [--iterations K] [--out PATH]
"""
from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import Recorder, run_study  # noqa: E402
from repro.analysis.collation import collate_vector  # noqa: E402
from repro.obs import NULL_RECORDER  # noqa: E402
from repro.resilience import faults  # noqa: E402
from repro.service import (FingerprintService, IncrementalCollator,  # noqa: E402
                           IngestShed, ServiceConfig, visits_from_dataset)

VECTORS = ("dc", "fft")

#: acceptance floors — generous (smoke scale, shared CI machines), they
#: catch step-function regressions (an accidental O(n) lookup, a lost
#: group commit), not noise
MIN_INGEST_PER_S = 300.0
MIN_LOOKUPS_PER_S = 2_000.0
MAX_OVERLOAD_P99_MS = 250.0
MIN_REPLAY_PER_S = 1_000.0


def _service(directory, recorder=None, **config):
    return FingerprintService(
        directory, VECTORS, config=ServiceConfig(**config),
        recorder=recorder if recorder is not None else NULL_RECORDER)


def bench_sustained(directory, visits, users):
    recorder = Recorder()
    service = _service(directory, recorder, snapshot_every=512,
                       sync_every=8)

    async def go():
        await service.start()
        t0 = time.perf_counter()
        for visit in visits:
            await service.ingest(visit)
        ingest_wall = time.perf_counter() - t0
        sweep = [u for _ in range(10) for u in users]
        t0 = time.perf_counter()
        for user in sweep:
            await service.lookup(user)
        lookup_wall = time.perf_counter() - t0
        await service.stop()
        return ingest_wall, lookup_wall, len(sweep)
    ingest_wall, lookup_wall, lookups = asyncio.run(go())
    hist = recorder.histograms["service.lookup_latency_s"]
    return service, {
        "ingest_wall_s": round(ingest_wall, 4),
        "ingest_visits_per_s": round(len(visits) / ingest_wall, 1),
        "lookup_wall_s": round(lookup_wall, 4),
        "lookups_per_s": round(lookups / lookup_wall, 1),
        "lookup_p50_ms": round(hist.approx_quantile(0.5) * 1e3, 4),
        "lookup_p99_ms": round(hist.approx_quantile(0.99) * 1e3, 4),
        "deadline_misses": service.counts["lookup_deadline_misses"],
        "breaker_trips": service.breaker.trips,
    }


def bench_overload(directory, visits, users):
    """2x overload: bursts of 2*queue_limit concurrent ingests against a
    stalled consumer; lookups interleave with the shedding."""
    recorder = Recorder()
    queue_limit = 32
    service = _service(directory, recorder, queue_limit=queue_limit,
                       batch_max=8, snapshot_every=512)
    stall = {"s": 0.002}
    real_hook = faults.slow_consumer
    faults.slow_consumer = lambda: stall["s"]
    try:
        async def go():
            await service.start()
            offered = sheds = 0
            untyped = 0
            lookup_count = 0
            rounds = max(1, len(visits) // (2 * queue_limit))
            for r in range(rounds):
                burst = [visits[(r * 2 * queue_limit + i) % len(visits)]
                         for i in range(2 * queue_limit)]
                tasks = [asyncio.create_task(service.ingest(v))
                         for v in burst]
                for user in users[:8]:
                    await service.lookup(user)
                    lookup_count += 1
                results = await asyncio.gather(*tasks)
                offered += len(results)
                for result in results:
                    if isinstance(result, IngestShed):
                        sheds += 1
                        if result.reason not in ("queue_full",
                                                 "deadline_exceeded"):
                            untyped += 1
                    elif result is None:
                        untyped += 1
            stall["s"] = 0.0
            await service.stop()
            return offered, sheds, untyped, lookup_count
        offered, sheds, untyped, lookups = asyncio.run(go())
    finally:
        faults.slow_consumer = real_hook
    hist = recorder.histograms["service.lookup_latency_s"]
    return {
        "queue_limit": queue_limit,
        "offered": offered,
        "sheds": sheds,
        "shed_rate": round(sheds / offered, 4),
        "all_refusals_typed": untyped == 0,
        "lookups_during_overload": lookups,
        "lookup_p99_ms": round(hist.approx_quantile(0.99) * 1e3, 4),
    }


def bench_recovery(directory, live_bytes):
    """Cold full-WAL replay speed (snapshot removed) + byte identity."""
    snapshot = os.path.join(directory, "snapshot.json")
    if os.path.exists(snapshot):
        os.unlink(snapshot)
    service = FingerprintService(directory, VECTORS)
    t0 = time.perf_counter()
    info = service.recover()
    wall = time.perf_counter() - t0
    return {
        "replayed": info["replayed"],
        "replay_wall_s": round(wall, 4),
        "replay_visits_per_s": round(info["replayed"] / wall, 1),
        "byte_identical": service.state_bytes() == live_bytes,
    }


def check_batch_equivalence(dataset) -> bool:
    for vector in dataset.vectors:
        collator = IncrementalCollator(vector)
        for uid, series in dataset.iter_user_series(vector):
            for efp in series:
                collator.observe(uid, efp)
        batch = collate_vector(dataset, vector)
        want = {u: int(c) for u, c in batch.user_component_ids().items()}
        if collator.user_component_ids() != want:
            return False
    return True


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--users", type=int, default=150)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--out", default=os.path.join(_HERE,
                                                      "BENCH_service.json"))
    parser.add_argument("--scratch", default=None,
                        help="service state directory (default: a temp dir)")
    args = parser.parse_args()

    import tempfile
    scratch = args.scratch or tempfile.mkdtemp(prefix="bench-service-")

    dataset = run_study(args.users, args.iterations, vectors=VECTORS,
                        seed=args.seed, workers=0)
    visits = visits_from_dataset(dataset, seed=args.seed, spoof_fraction=0.1,
                                 bot_fraction=0.05)
    users = dataset.user_ids()

    live, sustained = bench_sustained(os.path.join(scratch, "sustained"),
                                      visits, users)
    overload = bench_overload(os.path.join(scratch, "overload"), visits,
                              users)
    recovery = bench_recovery(os.path.join(scratch, "sustained"),
                              live.state_bytes())

    gates = {
        "incremental_matches_batch": check_batch_equivalence(dataset),
        "replay_byte_identical": recovery["byte_identical"],
        "overload_refusals_typed": overload["all_refusals_typed"],
        "ingest_floor_ok":
            sustained["ingest_visits_per_s"] >= MIN_INGEST_PER_S,
        "lookup_floor_ok": sustained["lookups_per_s"] >= MIN_LOOKUPS_PER_S,
        "overload_p99_bounded":
            overload["lookup_p99_ms"] <= MAX_OVERLOAD_P99_MS,
        "replay_floor_ok":
            recovery["replay_visits_per_s"] >= MIN_REPLAY_PER_S,
    }

    doc = {
        "benchmark": "bench_service",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "users": args.users,
            "iterations": args.iterations,
            "vectors": list(VECTORS),
            "visits": len(visits),
        },
        "sustained": sustained,
        "overload": overload,
        "recovery": {k: v for k, v in recovery.items()
                     if k != "byte_identical"},
        "detections": dict(live.state.detections),
        "gates": gates,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    print(json.dumps(doc, indent=1))

    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"GATE FAILURES: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
