#!/usr/bin/env python
"""Collation + entropy analysis benchmark: the paper's §4 measurement
layer on the default synthetic study (300 users x 30 iterations x 3
vectors = 27000 grid items; ``--users`` scales it).

Measures, per vector and end-to-end:

  collate   interning + graph edges + union-find + component resolution
  report    full analysis report build (collation + all entropy/
            anonymity/stability metrics + combined section)

and verifies the acceptance properties the analysis layer guarantees:

  - stability collapse: every user whose raw series is fickle collates
    to exactly one id per vector (and fickle users actually exist);
  - determinism: two report builds of the same dataset serialize to
    byte-identical JSON;
  - scaling: collation throughput stays above the acceptance floor
    (the union-find is linear in grid size — a half-scale run is also
    timed so the JSON records the growth rate).

Usage: PYTHONPATH=src python benchmarks/bench_collation.py [--users N]
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import RenderCache, run_study  # noqa: E402
from repro.analysis import (build_analysis_report, collate,  # noqa: E402
                            collate_vector, dumps_analysis_report,
                            validate_analysis_report)

VECTORS = ("dc", "fft", "hybrid")

#: acceptance floor: collation throughput in grid items per second —
#: generous (measured ~100x higher) but catches accidental quadratic or
#: per-string work sneaking back into the hot path
MIN_ITEMS_PER_S = 100_000


def _time_collation(dataset) -> tuple[float, dict]:
    per_vector = {}
    total = 0.0
    for name in dataset.vectors:
        t0 = time.perf_counter()
        col = collate_vector(dataset, name)
        wall = time.perf_counter() - t0
        total += wall
        per_vector[name] = {
            "efps": col.efp_count,
            "edges": col.edge_count,
            "components": col.component_count,
            "fickle_users": int((col.raw_distinct_per_user() > 1).sum()),
            "collate_ms": round(wall * 1e3, 3),
        }
    return total, per_vector


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=300)
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--out",
                        default=os.path.join(_HERE, "BENCH_collation.json"))
    args = parser.parse_args()

    grid_items = args.users * args.iterations * len(VECTORS)
    print(f"workload: {args.users} users x {args.iterations} iterations "
          f"x {len(VECTORS)} vectors = {grid_items} grid items")

    t0 = time.perf_counter()
    dataset = run_study(user_count=args.users, iterations=args.iterations,
                        vectors=VECTORS, seed=args.seed, cache=RenderCache())
    render_wall = time.perf_counter() - t0
    print(f"render:  {render_wall:8.2f}s (cached study)")

    collate_wall, per_vector = _time_collation(dataset)
    print(f"collate: {collate_wall:8.4f}s "
          f"({grid_items / collate_wall:,.0f} grid items/s)")
    for name, row in per_vector.items():
        print(f"  {name:8} efps={row['efps']:<6} edges={row['edges']:<6} "
              f"components={row['components']:<5} "
              f"fickle={row['fickle_users']:<5} {row['collate_ms']:8.3f} ms")

    t0 = time.perf_counter()
    report = build_analysis_report(dataset)
    report_wall = time.perf_counter() - t0
    first_bytes = dumps_analysis_report(report)
    second_bytes = dumps_analysis_report(build_analysis_report(dataset))
    byte_identical = first_bytes == second_bytes
    print(f"report:  {report_wall:8.4f}s "
          f"({len(first_bytes)} bytes, byte_identical={byte_identical})")

    # stability collapse: the acceptance property, checked structurally
    problems = validate_analysis_report(report)
    fickle_total = sum(row["fickle_users"] for row in per_vector.values())
    collapse_ok = all(
        report["vectors"][name]["stability"]["fickle_users_collapsed"]
        == report["vectors"][name]["stability"]["raw_fickle_users"]
        and report["vectors"][name]["stability"]["collated_stable_users"]
        == args.users
        for name in VECTORS)

    # half-scale run records the growth rate (linear => ratio ~2)
    half = run_study(user_count=max(args.users // 2, 1),
                     iterations=args.iterations, vectors=VECTORS,
                     seed=args.seed, cache=RenderCache())
    half_wall, _ = _time_collation(half)

    entropy_summary = {
        name: {
            "raw_entropy_bits":
                report["vectors"][name]["raw"]["first_observation"]["entropy_bits"],
            "collated_entropy_bits":
                report["vectors"][name]["collated"]["per_user"]["entropy_bits"],
            "collated_normalized":
                report["vectors"][name]["collated"]["per_user"]["normalized_entropy"],
            "unique_users":
                report["vectors"][name]["collated"]["per_user"]["unique_ids"],
        } for name in VECTORS}
    entropy_summary["combined"] = {
        "collated_entropy_bits": report["combined"]["collated"]["entropy_bits"],
        "collated_normalized": report["combined"]["collated"]["normalized_entropy"],
        "unique_users": report["combined"]["collated"]["unique_ids"],
    }

    items_per_s = grid_items / collate_wall
    result = {
        "benchmark": "bench_collation",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "users": args.users,
            "iterations": args.iterations,
            "vectors": list(VECTORS),
            "grid_items": grid_items,
        },
        "render_wall_s": round(render_wall, 4),
        "collate_wall_s": round(collate_wall, 6),
        "collate_items_per_s": round(items_per_s, 1),
        "report_wall_s": round(report_wall, 6),
        "report_bytes": len(first_bytes),
        "per_vector": per_vector,
        "entropy": entropy_summary,
        "half_scale": {
            "users": max(args.users // 2, 1),
            "collate_wall_s": round(half_wall, 6),
            "full_over_half_ratio": round(collate_wall / half_wall, 2)
            if half_wall > 0 else None,
        },
        "stability_collapse_ok": collapse_ok,
        "fickle_users_total": fickle_total,
        "report_byte_identical": byte_identical,
        "schema_problems": problems,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"-> {args.out}")

    failures = []
    if problems:
        failures.append(f"report failed schema check: {problems[:3]}")
    if not byte_identical:
        failures.append("analysis report is not byte-deterministic")
    if not collapse_ok:
        failures.append("a fickle user did not collapse to one collated id")
    if fickle_total == 0:
        failures.append("no fickle users in the default study "
                        "(stability claim would be vacuous)")
    if items_per_s < MIN_ITEMS_PER_S:
        failures.append(f"collation {items_per_s:,.0f} items/s "
                        f"< {MIN_ITEMS_PER_S:,} floor")
    if failures:
        print("ACCEPTANCE FAILED: " + "; ".join(failures))
        return 1
    print(f"acceptance: collapse ok, byte-identical, "
          f">= {MIN_ITEMS_PER_S:,} items/s  [ok]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
