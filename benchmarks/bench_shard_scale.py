#!/usr/bin/env python
"""Shard-scale benchmark: external memory really is external.

Every measured run happens in a child process (fresh interpreter) so
``ru_maxrss`` is the run's own peak RSS, not the parent's high-water
mark. Three stages:

  identity    the same study (2093 users) rendered monolithically and
              sharded; the merged shard analysis must be byte-identical
              (sha256) to the monolithic analysis report, and the
              sharded path's sustained renders/s must stay within
              tolerance of the monolithic fused-render baseline.
  scaling     sharded runs at increasing user counts (default 25k and
              100k) with a fixed shard size; peak RSS must grow
              sub-linearly in user count (the gate: RSS growth at most
              half the user-count growth), because completed shards
              stream to disk instead of accumulating.
  contrast    a monolithic run at the largest scale; the sharded run's
              peak RSS must not exceed it (the monolithic run holds
              every user's series in memory at once — that is exactly
              the cost sharding removes).

``--smoke-1m`` appends an opt-in million-user sharded run (1 iteration,
one vector, so it finishes in about a minute) and gates its peak RSS
against the 100k run's: a 10x population for at most 2x the memory.

Acceptance gates are asserted, so regressions fail loudly; the
scale-invariant ratios feed the ``repro.obs.regress`` sentinel.

Usage: PYTHONPATH=src python benchmarks/bench_shard_scale.py
         [--scales N N ...] [--identity-users N] [--smoke-1m]
"""
from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

IDENTITY_VECTORS = ("dc", "fft", "hybrid")
IDENTITY_ITERATIONS = 5
SCALE_VECTORS = ("dc", "fft")
SCALE_ITERATIONS = 3
SCALE_SHARD_SIZE = 4096
SMOKE_1M_USERS = 1_000_000

#: gate thresholds (asserted below, recorded in the committed document)
MAX_RSS_GROWTH_PER_USER_GROWTH = 0.5
MIN_THROUGHPUT_VS_MONOLITHIC = 0.4
MAX_SMOKE_1M_RSS_VS_100K = 2.0


# ---------------------------------------------------------------------------
# child process: one measured run, peak RSS reported from the inside

def _child(args: argparse.Namespace) -> int:
    import resource

    from repro import run_study
    from repro.analysis import build_analysis_report, dumps_analysis_report
    from repro.population import run_study_sharded

    vectors = tuple(args.vectors.split(","))
    start = time.perf_counter()
    if args.child == "sharded":
        result = run_study_sharded(args.users, args.shard_size, args.out_dir,
                                   iterations=args.iterations,
                                   vectors=vectors, seed=args.seed, workers=0)
        with open(result.merged_report_path, "rb") as fh:
            digest = hashlib.sha256(fh.read()).hexdigest()
        shards = len(result.shards)
    else:  # mono
        dataset = run_study(args.users, iterations=args.iterations,
                            vectors=vectors, seed=args.seed, workers=0)
        text = dumps_analysis_report(build_analysis_report(dataset))
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        shards = 0
    wall = time.perf_counter() - start

    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    renders = args.users * args.iterations * len(vectors)
    print(json.dumps({
        "mode": args.child, "users": args.users, "shards": shards,
        "iterations": args.iterations, "vectors": list(vectors),
        "wall_s": round(wall, 4), "ru_maxrss_kb": rss_kb,
        "renders": renders,
        "renders_per_s": round(renders / wall, 2) if wall > 0 else None,
        "analysis_sha256": digest,
    }))
    return 0


def _measure(mode: str, users: int, *, shard_size: int | None, iterations: int,
             vectors: tuple[str, ...], seed: int, out_dir: str) -> dict:
    argv = [sys.executable, os.path.abspath(__file__), "--child", mode,
            "--users", str(users), "--iterations", str(iterations),
            "--vectors", ",".join(vectors), "--seed", str(seed),
            "--out-dir", out_dir]
    if shard_size is not None:
        argv += ["--shard-size", str(shard_size)]
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(argv, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(f"{mode} child at {users} users failed:\n"
                           f"{proc.stderr}")
    return json.loads(proc.stdout)


# ---------------------------------------------------------------------------
# parent: stage the children, assert the gates, commit the document

def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--child", choices=("sharded", "mono"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--users", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--shard-size", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--iterations", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--vectors", help=argparse.SUPPRESS)
    parser.add_argument("--out-dir", help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--scales", type=int, nargs="+",
                        default=[25_000, 100_000],
                        help="sharded user counts for the RSS scaling series "
                             "(ascending; default 25000 100000)")
    parser.add_argument("--identity-users", type=int, default=2093,
                        help="user count for the monolithic-vs-sharded "
                             "bit-identity stage (default 2093)")
    parser.add_argument("--shard-size-scale", type=int,
                        default=SCALE_SHARD_SIZE)
    parser.add_argument("--smoke-1m", action="store_true",
                        help="append the opt-in million-user smoke run")
    parser.add_argument("--out", default=os.path.join(_HERE,
                                                      "BENCH_shard_scale.json"))
    args = parser.parse_args()
    if args.child:
        return _child(args)

    from repro.io import atomic_write_json
    from repro.webaudio import ENGINE_VERSION

    scales = sorted(args.scales)
    if len(scales) < 2:
        parser.error("--scales needs at least two ascending user counts")

    with tempfile.TemporaryDirectory(prefix="bench_shard_scale.") as tmp:
        # -- stage 1: bit-identity + throughput vs the fused monolithic path
        ident = dict(iterations=IDENTITY_ITERATIONS, vectors=IDENTITY_VECTORS,
                     seed=args.seed)
        shard_size = max(1, args.identity_users // 4)
        mono = _measure("mono", args.identity_users, shard_size=None,
                        out_dir=tmp, **ident)
        sharded = _measure("sharded", args.identity_users,
                           shard_size=shard_size,
                           out_dir=os.path.join(tmp, "identity"), **ident)
        bit_identical = mono["analysis_sha256"] == sharded["analysis_sha256"]
        assert bit_identical, (
            f"sharded merge diverged from the monolithic analysis at "
            f"{args.identity_users} users: {sharded['analysis_sha256']} != "
            f"{mono['analysis_sha256']}")
        throughput_ratio = round(
            sharded["renders_per_s"] / mono["renders_per_s"], 4)
        assert throughput_ratio >= MIN_THROUGHPUT_VS_MONOLITHIC, (
            f"sharded sustained throughput ({sharded['renders_per_s']} "
            f"renders/s) fell below {MIN_THROUGHPUT_VS_MONOLITHIC:.0%} of the "
            f"monolithic fused baseline ({mono['renders_per_s']} renders/s)")
        print(f"identity ok: {args.identity_users} users, sharded == "
              f"monolithic analysis ({mono['analysis_sha256'][:12]}…), "
              f"throughput ratio {throughput_ratio}")

        # -- stage 2: peak RSS vs user count, fixed shard size
        scale_runs = []
        for users in scales:
            run = _measure("sharded", users,
                           shard_size=args.shard_size_scale,
                           iterations=SCALE_ITERATIONS,
                           vectors=SCALE_VECTORS, seed=args.seed,
                           out_dir=os.path.join(tmp, f"scale_{users}"))
            scale_runs.append(run)
            print(f"scale {users}: rss {run['ru_maxrss_kb'] / 1024:.1f} MB, "
                  f"{run['renders_per_s']} renders/s, {run['shards']} shards")
        lo, hi = scale_runs[0], scale_runs[-1]
        user_growth = hi["users"] / lo["users"]
        rss_growth = round(hi["ru_maxrss_kb"] / lo["ru_maxrss_kb"], 4)
        rss_per_user_growth = round(rss_growth / user_growth, 4)
        assert rss_growth <= MAX_RSS_GROWTH_PER_USER_GROWTH * user_growth, (
            f"peak RSS grew {rss_growth}x over a {user_growth}x user-count "
            f"increase — the sharded path is accumulating per-user state "
            f"instead of streaming it to disk")

        # -- stage 3: contrast with the in-memory monolithic path at scale
        mono_scale = _measure("mono", hi["users"], shard_size=None,
                              iterations=SCALE_ITERATIONS,
                              vectors=SCALE_VECTORS, seed=args.seed,
                              out_dir=tmp)
        rss_vs_mono = round(
            hi["ru_maxrss_kb"] / mono_scale["ru_maxrss_kb"], 4)
        assert hi["ru_maxrss_kb"] <= mono_scale["ru_maxrss_kb"], (
            f"sharded peak RSS ({hi['ru_maxrss_kb']} KB) exceeded the "
            f"monolithic run's ({mono_scale['ru_maxrss_kb']} KB) at "
            f"{hi['users']} users — streaming bought nothing")
        print(f"contrast: sharded rss is {rss_vs_mono}x monolithic at "
              f"{hi['users']} users")

        # -- optional stage 4: the million-user smoke
        smoke_1m = None
        if args.smoke_1m:
            smoke = _measure("sharded", SMOKE_1M_USERS,
                             shard_size=2 * args.shard_size_scale,
                             iterations=1, vectors=("dc",), seed=args.seed,
                             out_dir=os.path.join(tmp, "smoke_1m"))
            ratio_vs_100k = round(
                smoke["ru_maxrss_kb"] / hi["ru_maxrss_kb"], 4)
            assert ratio_vs_100k <= MAX_SMOKE_1M_RSS_VS_100K, (
                f"1M-user peak RSS is {ratio_vs_100k}x the {hi['users']}-user "
                f"run's — RSS is not flat in population size")
            smoke_1m = {**smoke, "rss_vs_largest_scale": ratio_vs_100k}
            print(f"1M smoke: rss {smoke['ru_maxrss_kb'] / 1024:.1f} MB "
                  f"({ratio_vs_100k}x the {hi['users']}-user run), "
                  f"{smoke['renders_per_s']} renders/s, "
                  f"{smoke['shards']} shards")

    result = {
        "benchmark": "bench_shard_scale",
        "engine_version": ENGINE_VERSION,
        "python": platform.python_version(),
        "identity": {
            "users": args.identity_users,
            "iterations": IDENTITY_ITERATIONS,
            "vectors": list(IDENTITY_VECTORS),
            "bit_identical": bit_identical,
            "analysis_sha256": mono["analysis_sha256"],
            "monolithic": mono,
            "sharded": sharded,
        },
        "scaling": {
            "shard_size": args.shard_size_scale,
            "iterations": SCALE_ITERATIONS,
            "vectors": list(SCALE_VECTORS),
            "runs": scale_runs,
            "monolithic_at_largest": mono_scale,
        },
        "smoke_1m": smoke_1m,
        "gates": {
            "bit_identical": bit_identical,
            "renders_per_s": hi["renders_per_s"],
            "sharded_vs_monolithic_throughput": throughput_ratio,
            "user_growth": round(user_growth, 4),
            "rss_growth": rss_growth,
            "rss_growth_per_user_growth": rss_per_user_growth,
            "rss_vs_monolithic": rss_vs_mono,
        },
    }
    atomic_write_json(args.out, result, indent=2)
    print(json.dumps(result["gates"], indent=2))
    print(f"OK: merged analysis bit-identical at {args.identity_users} "
          f"users; peak RSS grew {rss_growth}x over {user_growth:.0f}x more "
          f"users ({rss_vs_mono}x the monolithic footprint at "
          f"{hi['users']} users)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
