#!/usr/bin/env python
"""Observability overhead benchmark: the disabled path must be ~free.

Three measurements, written to benchmarks/BENCH_obs_overhead.json:

  1. micro: the per-call cost of the NullRecorder's span/count/observe/
     event no-ops — the only thing a disabled study ever pays per
     phase — and of the live Recorder's, for contrast.
  2. end-to-end: the same seeded study run with observability off
     (null recorder) and on (Recorder + per-node profiling), with the
     off/on wall-clock ratio. Renders take the default fused path
     (REPRO_RENDER_PATH=auto), so the baseline reflects the production
     render speed — a faster render makes any fixed recorder cost
     *relatively* larger, which is the honest denominator.
  3. events: the same instrumented study with a streaming JSONL event
     log attached, as a ratio over the instrumented run without one —
     the isolated cost of event-log emission (one json.dumps + write +
     flush per event).

Acceptance (the "near-zero overhead when disabled" budget): the null
span round-trip stays under 2 µs/op, the fully-instrumented study costs
at most 1.5x the disabled one, and attaching the event log costs at
most 1.05x the instrumented run (best of 3 each). The disabled path
does a strict subset of the instrumented path's work, so bounding the
*enabled* overhead transitively certifies the disabled path — without
the flakiness of comparing a run against itself on a noisy machine.

Usage: PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--users N]
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import RenderCache, run_study  # noqa: E402
from repro.obs import NULL_RECORDER, Recorder  # noqa: E402
from repro.webaudio.config import get_default_render_path  # noqa: E402

MICRO_OPS = 200_000
NULL_SPAN_BUDGET_US = 2.0
ENABLED_OVERHEAD_BUDGET = 1.5
EVENTS_OVERHEAD_BUDGET = 1.05


def _time_ops(recorder, ops: int) -> dict:
    t0 = time.perf_counter()
    for _ in range(ops):
        with recorder.span("s"):
            pass
    span_us = (time.perf_counter() - t0) / ops * 1e6

    t0 = time.perf_counter()
    for _ in range(ops):
        recorder.count("c")
    count_us = (time.perf_counter() - t0) / ops * 1e6

    t0 = time.perf_counter()
    for _ in range(ops):
        recorder.observe("h", 0.001)
    observe_us = (time.perf_counter() - t0) / ops * 1e6

    t0 = time.perf_counter()
    for _ in range(ops):
        recorder.event("study.start")
    event_us = (time.perf_counter() - t0) / ops * 1e6
    return {"span_us": round(span_us, 4), "count_us": round(count_us, 4),
            "observe_us": round(observe_us, 4),
            "event_us": round(event_us, 4)}


def _study_wall(recorder_factory, event_log: bool = False, **kwargs) -> float:
    best = float("inf")
    for trial in range(3):
        log_path = None
        if event_log:
            log_path = os.path.join(tempfile.mkdtemp(), "events.jsonl")
        t0 = time.perf_counter()
        run_study(cache=RenderCache(), recorder=recorder_factory(),
                  event_log_path=log_path, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=40)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--out",
                        default=os.path.join(_HERE, "BENCH_obs_overhead.json"))
    args = parser.parse_args()

    micro_null = _time_ops(NULL_RECORDER, MICRO_OPS)
    micro_live = _time_ops(Recorder(), MICRO_OPS)
    print(f"micro ({MICRO_OPS} ops): null span {micro_null['span_us']:.3f} µs/op, "
          f"live span {micro_live['span_us']:.3f} µs/op, "
          f"live event {micro_live['event_us']:.3f} µs/op")

    study = dict(user_count=args.users, iterations=args.iterations,
                 seed=args.seed, workers=0)
    off = _study_wall(lambda: None, **study)      # null recorder (the default)
    on = _study_wall(Recorder, **study)           # spans + timing + profiling
    logged = _study_wall(Recorder, event_log=True, **study)  # + JSONL stream
    enabled_ratio = on / off
    events_ratio = logged / on
    print(f"study off {off:.3f}s, on {on:.3f}s (x{enabled_ratio:.3f}), "
          f"on+events {logged:.3f}s (x{events_ratio:.3f} vs on)")

    result = {
        "benchmark": "bench_obs_overhead",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workload": {"users": args.users, "iterations": args.iterations,
                     "renders_off": "per distinct class",
                     "render_path": get_default_render_path()},
        "micro_us_per_op": {"null": micro_null, "recorder": micro_live,
                            "ops": MICRO_OPS},
        "study_wall_s": {"disabled": round(off, 4),
                         "enabled": round(on, 4),
                         "enabled_ratio": round(enabled_ratio, 4),
                         "enabled_events": round(logged, 4),
                         "events_ratio": round(events_ratio, 4)},
        "budgets": {"null_span_us": NULL_SPAN_BUDGET_US,
                    "enabled_overhead_ratio": ENABLED_OVERHEAD_BUDGET,
                    "events_overhead_ratio": EVENTS_OVERHEAD_BUDGET},
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"-> {args.out}")

    failures = []
    if micro_null["span_us"] > NULL_SPAN_BUDGET_US:
        failures.append(f"null span {micro_null['span_us']:.3f} µs/op "
                        f"> {NULL_SPAN_BUDGET_US} µs budget")
    if enabled_ratio > ENABLED_OVERHEAD_BUDGET:
        failures.append(f"enabled/disabled wall ratio {enabled_ratio:.3f} "
                        f"> {ENABLED_OVERHEAD_BUDGET}")
    if events_ratio > EVENTS_OVERHEAD_BUDGET:
        failures.append(f"event-log/instrumented wall ratio "
                        f"{events_ratio:.3f} > {EVENTS_OVERHEAD_BUDGET}")
    if failures:
        print("ACCEPTANCE FAILED: " + "; ".join(failures))
        return 1
    print("acceptance: disabled observability within budget  [ok]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
