#!/usr/bin/env python
"""Render-performance benchmark: the equivalence-class cache vs the
honest per-item baseline, on the same 100-user x 30-iteration x 3-vector
workload (9000 grid items).

Writes benchmarks/BENCH_render.json with renders/sec, cache hit rate and
end-to-end wall times, and asserts this PR's acceptance floor
(>= 95% hit rate, >= 10x speedup) so later PRs have a perf trajectory
to beat. Both runs use the same worker configuration, and the datasets
are asserted bit-identical — the cache changes cost, never results.

Usage: PYTHONPATH=src python benchmarks/bench_render_perf.py [--users N]
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import RenderCache, run_study  # noqa: E402
from repro.webaudio import ENGINE_VERSION  # noqa: E402

VECTORS = ("dc", "fft", "hybrid")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=100)
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: auto)")
    parser.add_argument("--out", default=os.path.join(_HERE, "BENCH_render.json"))
    args = parser.parse_args()

    grid_items = args.users * args.iterations * len(VECTORS)
    common = dict(user_count=args.users, iterations=args.iterations,
                  vectors=VECTORS, seed=args.seed, workers=args.workers)

    print(f"workload: {args.users} users x {args.iterations} iterations "
          f"x {len(VECTORS)} vectors = {grid_items} grid items")

    cache = RenderCache()
    t0 = time.perf_counter()
    cached_dataset = run_study(cache=cache, **common)
    cached_wall = time.perf_counter() - t0
    stats = cache.stats()
    distinct_classes = stats["entries"]
    print(f"cached run:   {cached_wall:8.2f}s  "
          f"({distinct_classes} classes rendered, "
          f"hit rate {stats['hit_rate']:.4f})")

    baseline = RenderCache(disabled=True)
    t0 = time.perf_counter()
    baseline_dataset = run_study(cache=baseline, **common)
    baseline_wall = time.perf_counter() - t0
    print(f"baseline run: {baseline_wall:8.2f}s  ({grid_items} renders)")

    if cached_dataset != baseline_dataset:
        print("FATAL: cached dataset differs from baseline dataset")
        return 1

    speedup = baseline_wall / cached_wall
    result = {
        "benchmark": "bench_render_perf",
        "engine_version": ENGINE_VERSION,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "users": args.users,
            "iterations": args.iterations,
            "vectors": list(VECTORS),
            "grid_items": grid_items,
        },
        "cached": {
            "wall_s": round(cached_wall, 4),
            "distinct_classes": distinct_classes,
            "hit_rate": round(stats["hit_rate"], 6),
            "renders_performed": distinct_classes,
            "grid_items_per_s": round(grid_items / cached_wall, 2),
        },
        "baseline": {
            "wall_s": round(baseline_wall, 4),
            "renders_performed": grid_items,
            "renders_per_s": round(grid_items / baseline_wall, 2),
        },
        "speedup": round(speedup, 2),
        "datasets_bit_identical": True,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"speedup: {speedup:.1f}x  ->  {args.out}")

    failures = []
    if stats["hit_rate"] < 0.95:
        failures.append(f"hit rate {stats['hit_rate']:.4f} < 0.95")
    if speedup < 10.0:
        failures.append(f"speedup {speedup:.1f}x < 10x")
    if failures:
        print("ACCEPTANCE FAILED: " + "; ".join(failures))
        return 1
    print("acceptance: hit rate >= 0.95 and speedup >= 10x  [ok]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
