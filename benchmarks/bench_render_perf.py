#!/usr/bin/env python
"""Render-performance benchmark: cache + batched rendering vs the honest
per-class baseline, on the same 100-user x 30-iteration x 3-vector
workload (9000 grid items).

Three timed configurations, all producing bit-identical datasets:

  baseline  cache disabled, ``batched=False`` — one engine pass per grid
            item, one pool task per class: the pre-batching cost model.
  batched   cache disabled, ``batched=True`` — misses grouped by
            (vector, stack) and rendered through the engine's batch axis,
            at the same worker count as the baseline. This isolates the
            batching win from the caching win.
  cached    cache enabled (default driver config) — the production path;
            instrumented with repro.obs, its run report lands in
            benchmarks/.cache/BENCH_render_report.json and feeds the
            "breakdown" section (phases, per-vector latency, batch sizes,
            hot nodes, pool utilization).

A worker-scaling sweep re-times the batched cold render at workers =
1, 2, 4, 8 so the pool thresholds in repro.population.study
(``_POOL_THRESHOLD``, ``_POOL_GROUP_THRESHOLD``) and the group-count
chunksize heuristic are pinned to measurements, not folklore.

All of the above run with ``REPRO_RENDER_PATH=quantum`` so they stay the
128-frame-loop reference. A fourth timed configuration then re-runs the
batched cold render on the fused whole-buffer path:

  fused     cache disabled, ``batched=True``, ``REPRO_RENDER_PATH=fused``
            — same workload, whole-buffer segment kernels instead of the
            quantum loop. Its dataset must equal the baseline's byte for
            byte (the fused path is pure cost control, never an identity).

Acceptance floor (asserted, so later PRs have a trajectory to beat):
>= 95% hit rate, cached speedup >= 10x, batched cold throughput >= 3x
the per-class baseline at equal workers, fused throughput >= 3x batched,
datasets bit-identical across every configuration.

Usage: PYTHONPATH=src python benchmarks/bench_render_perf.py [--users N]
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import RenderCache, run_study  # noqa: E402
from repro.obs import Histogram  # noqa: E402
from repro.population.study import (  # noqa: E402
    _MAX_BATCH, _POOL_GROUP_THRESHOLD, _POOL_THRESHOLD)
from repro.webaudio import ENGINE_VERSION  # noqa: E402

VECTORS = ("dc", "fft", "hybrid")
SWEEP_WORKERS = (1, 2, 4, 8)


def _breakdown(report: dict) -> dict:
    """Condense a repro.obs run report into the BENCH breakdown section."""
    latency = {}
    for name, payload in report["histograms"].items():
        prefix = "render.latency_s."
        if not name.startswith(prefix):
            continue
        hist = Histogram.from_dict(payload)
        latency[name[len(prefix):]] = {
            "renders": hist.count,
            "mean_ms": round(hist.mean * 1e3, 3),
            "p95_ms": round(hist.approx_quantile(0.95) * 1e3, 3),
            "max_ms": round((hist.max or 0.0) * 1e3, 3),
        }
    batch_sizes = None
    if "render.batch_size" in report["histograms"]:
        hist = Histogram.from_dict(report["histograms"]["render.batch_size"])
        batch_sizes = {
            "batches": hist.count,
            "renders": int(hist.total),
            "mean": round(hist.mean, 2),
            "max": hist.max,
        }
    batch_wall = {}
    for name, payload in report["histograms"].items():
        prefix = "render.batch_wall_s."
        if not name.startswith(prefix):
            continue
        hist = Histogram.from_dict(payload)
        batch_wall[name[len(prefix):]] = {
            "batches": hist.count,
            "mean_ms": round(hist.mean * 1e3, 3),
            "max_ms": round((hist.max or 0.0) * 1e3, 3),
        }
    hot: dict[str, dict] = {}
    for nodes in report["node_profile"].values():
        for label, entry in nodes.items():
            agg = hot.setdefault(label, {"seconds": 0.0, "calls": 0})
            agg["seconds"] += entry["seconds"]
            agg["calls"] += entry["calls"]
    hot_nodes = [
        {"node": label, "wall_ms": round(agg["seconds"] * 1e3, 3),
         "calls": agg["calls"]}
        for label, agg in sorted(hot.items(), key=lambda kv: -kv[1]["seconds"])
    ][:8]
    return {
        "phases": {p["name"]: round(p["duration_s"], 4)
                   for p in report["phases"]},
        "render_latency": latency,
        "batch_sizes": batch_sizes,
        "batch_wall": batch_wall,
        "hot_nodes": hot_nodes,
        "pool": report["pool"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=100)
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: auto)")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the worker-scaling sweep")
    parser.add_argument("--out", default=os.path.join(_HERE, "BENCH_render.json"))
    args = parser.parse_args()

    grid_items = args.users * args.iterations * len(VECTORS)
    common = dict(user_count=args.users, iterations=args.iterations,
                  vectors=VECTORS, seed=args.seed, workers=args.workers)

    # pin the reference runs to the quantum loop (the env var also reaches
    # pool workers); the fused section flips this to "fused" at the end
    os.environ["REPRO_RENDER_PATH"] = "quantum"

    print(f"workload: {args.users} users x {args.iterations} iterations "
          f"x {len(VECTORS)} vectors = {grid_items} grid items")

    report_path = os.path.join(_HERE, ".cache", "BENCH_render_report.json")
    os.makedirs(os.path.dirname(report_path), exist_ok=True)

    cache = RenderCache()
    t0 = time.perf_counter()
    cached_dataset = run_study(cache=cache, report_path=report_path, **common)
    cached_wall = time.perf_counter() - t0
    stats = cache.stats()
    distinct_classes = stats["entries"]
    print(f"cached run:   {cached_wall:8.2f}s  "
          f"({distinct_classes} classes rendered, "
          f"hit rate {stats['hit_rate']:.4f})")

    batched = RenderCache(disabled=True)
    t0 = time.perf_counter()
    batched_dataset = run_study(cache=batched, **common)
    batched_wall = time.perf_counter() - t0
    print(f"batched run:  {batched_wall:8.2f}s  ({grid_items} renders, "
          f"batch axis, cache disabled)")

    baseline = RenderCache(disabled=True)
    t0 = time.perf_counter()
    baseline_dataset = run_study(cache=baseline, batched=False, **common)
    baseline_wall = time.perf_counter() - t0
    print(f"baseline run: {baseline_wall:8.2f}s  ({grid_items} renders, "
          f"per-class, cache disabled)")

    bit_identical = (cached_dataset == baseline_dataset == batched_dataset)
    if not bit_identical:
        print("FATAL: datasets differ between configurations")
        return 1

    sweep = []
    if not args.skip_sweep:
        print("worker sweep (batched, cache disabled):")
        for workers in SWEEP_WORKERS:
            sweep_common = dict(common, workers=workers)
            t0 = time.perf_counter()
            sweep_dataset = run_study(cache=RenderCache(disabled=True),
                                      **sweep_common)
            wall = time.perf_counter() - t0
            ok = sweep_dataset == baseline_dataset
            sweep.append({
                "workers": workers,
                "wall_s": round(wall, 4),
                "renders_per_s": round(grid_items / wall, 2),
                "bit_identical": ok,
            })
            print(f"  workers={workers}:  {wall:8.2f}s  "
                  f"({grid_items / wall:7.1f} renders/s)"
                  + ("" if ok else "  DATASET MISMATCH"))
            if not ok:
                print("FATAL: sweep dataset differs from baseline dataset")
                return 1

    os.environ["REPRO_RENDER_PATH"] = "fused"
    t0 = time.perf_counter()
    fused_dataset = run_study(cache=RenderCache(disabled=True), **common)
    fused_wall = time.perf_counter() - t0
    os.environ["REPRO_RENDER_PATH"] = "quantum"
    fused_identical = fused_dataset == baseline_dataset
    fused_speedup = batched_wall / fused_wall
    print(f"fused run:    {fused_wall:8.2f}s  ({grid_items} renders, "
          f"whole-buffer kernels, {fused_speedup:.2f}x batched)"
          + ("" if fused_identical else "  DATASET MISMATCH"))
    if not fused_identical:
        print("FATAL: fused dataset differs from baseline dataset")
        return 1

    batching_speedup = baseline_wall / batched_wall
    cache_speedup = baseline_wall / cached_wall
    result = {
        "benchmark": "bench_render_perf",
        "engine_version": ENGINE_VERSION,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "users": args.users,
            "iterations": args.iterations,
            "vectors": list(VECTORS),
            "grid_items": grid_items,
        },
        "cached": {
            "wall_s": round(cached_wall, 4),
            "distinct_classes": distinct_classes,
            "hit_rate": round(stats["hit_rate"], 6),
            "renders_performed": distinct_classes,
            "grid_items_per_s": round(grid_items / cached_wall, 2),
        },
        "batched": {
            "wall_s": round(batched_wall, 4),
            "renders_performed": grid_items,
            "renders_per_s": round(grid_items / batched_wall, 2),
            "max_batch": _MAX_BATCH,
        },
        "baseline": {
            "wall_s": round(baseline_wall, 4),
            "renders_performed": grid_items,
            "renders_per_s": round(grid_items / baseline_wall, 2),
        },
        "fused": {
            "wall_s": round(fused_wall, 4),
            "renders_performed": grid_items,
            "renders_per_s": round(grid_items / fused_wall, 2),
            "speedup_vs_batched": round(fused_speedup, 2),
            "bit_identical": fused_identical,
        },
        "speedup": round(cache_speedup, 2),
        "batching_speedup": round(batching_speedup, 2),
        "datasets_bit_identical": bit_identical,
        "pool_thresholds": {
            "per_class_jobs": _POOL_THRESHOLD,
            "batch_groups": _POOL_GROUP_THRESHOLD,
            "note": "pool engages at >= these job counts; the worker sweep "
                    "below measures where extra workers actually pay off "
                    "on this machine",
        },
        "worker_sweep": sweep,
    }
    with open(report_path, "r", encoding="utf-8") as fh:
        run_report = json.load(fh)
    result["breakdown"] = _breakdown(run_report)
    result["breakdown"]["report_path"] = os.path.relpath(report_path, _HERE)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"cache speedup: {cache_speedup:.1f}x  "
          f"batching speedup: {batching_speedup:.1f}x  ->  {args.out}")

    failures = []
    if stats["hit_rate"] < 0.95:
        failures.append(f"hit rate {stats['hit_rate']:.4f} < 0.95")
    if cache_speedup < 10.0:
        failures.append(f"cache speedup {cache_speedup:.1f}x < 10x")
    if batching_speedup < 3.0:
        failures.append(f"batching speedup {batching_speedup:.1f}x < 3x")
    if fused_speedup < 3.0:
        failures.append(f"fused speedup {fused_speedup:.1f}x < 3x batched")
    if failures:
        print("ACCEPTANCE FAILED: " + "; ".join(failures))
        return 1
    print("acceptance: hit rate >= 0.95, cache speedup >= 10x, "
          "batching speedup >= 3x, fused speedup >= 3x batched  [ok]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
