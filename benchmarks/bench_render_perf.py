#!/usr/bin/env python
"""Render-performance benchmark: the equivalence-class cache vs the
honest per-item baseline, on the same 100-user x 30-iteration x 3-vector
workload (9000 grid items).

Writes benchmarks/BENCH_render.json with renders/sec, cache hit rate and
end-to-end wall times, and asserts this PR's acceptance floor
(>= 95% hit rate, >= 10x speedup) so later PRs have a perf trajectory
to beat. Both runs use the same worker configuration, and the datasets
are asserted bit-identical — the cache changes cost, never results.

The cached run is instrumented (repro.obs): its run report lands in
benchmarks/.cache/BENCH_render_report.json and the BENCH JSON gains a
"breakdown" section (phase timings, per-vector latency, hot nodes, pool
utilization). The instrumented side pays the observation overhead, so
the reported speedup never flatters the cache.

Usage: PYTHONPATH=src python benchmarks/bench_render_perf.py [--users N]
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import RenderCache, run_study  # noqa: E402
from repro.obs import Histogram  # noqa: E402
from repro.webaudio import ENGINE_VERSION  # noqa: E402

VECTORS = ("dc", "fft", "hybrid")


def _breakdown(report: dict) -> dict:
    """Condense a repro.obs run report into the BENCH breakdown section."""
    latency = {}
    for name, payload in report["histograms"].items():
        prefix = "render.latency_s."
        if not name.startswith(prefix):
            continue
        hist = Histogram.from_dict(payload)
        latency[name[len(prefix):]] = {
            "renders": hist.count,
            "mean_ms": round(hist.mean * 1e3, 3),
            "p95_ms": round(hist.approx_quantile(0.95) * 1e3, 3),
            "max_ms": round((hist.max or 0.0) * 1e3, 3),
        }
    hot: dict[str, dict] = {}
    for nodes in report["node_profile"].values():
        for label, entry in nodes.items():
            agg = hot.setdefault(label, {"seconds": 0.0, "calls": 0})
            agg["seconds"] += entry["seconds"]
            agg["calls"] += entry["calls"]
    hot_nodes = [
        {"node": label, "wall_ms": round(agg["seconds"] * 1e3, 3),
         "calls": agg["calls"]}
        for label, agg in sorted(hot.items(), key=lambda kv: -kv[1]["seconds"])
    ][:8]
    return {
        "phases": {p["name"]: round(p["duration_s"], 4)
                   for p in report["phases"]},
        "render_latency": latency,
        "hot_nodes": hot_nodes,
        "pool": report["pool"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=100)
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: auto)")
    parser.add_argument("--out", default=os.path.join(_HERE, "BENCH_render.json"))
    args = parser.parse_args()

    grid_items = args.users * args.iterations * len(VECTORS)
    common = dict(user_count=args.users, iterations=args.iterations,
                  vectors=VECTORS, seed=args.seed, workers=args.workers)

    print(f"workload: {args.users} users x {args.iterations} iterations "
          f"x {len(VECTORS)} vectors = {grid_items} grid items")

    report_path = os.path.join(_HERE, ".cache", "BENCH_render_report.json")
    os.makedirs(os.path.dirname(report_path), exist_ok=True)

    cache = RenderCache()
    t0 = time.perf_counter()
    cached_dataset = run_study(cache=cache, report_path=report_path, **common)
    cached_wall = time.perf_counter() - t0
    stats = cache.stats()
    distinct_classes = stats["entries"]
    print(f"cached run:   {cached_wall:8.2f}s  "
          f"({distinct_classes} classes rendered, "
          f"hit rate {stats['hit_rate']:.4f})")

    baseline = RenderCache(disabled=True)
    t0 = time.perf_counter()
    baseline_dataset = run_study(cache=baseline, **common)
    baseline_wall = time.perf_counter() - t0
    print(f"baseline run: {baseline_wall:8.2f}s  ({grid_items} renders)")

    if cached_dataset != baseline_dataset:
        print("FATAL: cached dataset differs from baseline dataset")
        return 1

    speedup = baseline_wall / cached_wall
    result = {
        "benchmark": "bench_render_perf",
        "engine_version": ENGINE_VERSION,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "users": args.users,
            "iterations": args.iterations,
            "vectors": list(VECTORS),
            "grid_items": grid_items,
        },
        "cached": {
            "wall_s": round(cached_wall, 4),
            "distinct_classes": distinct_classes,
            "hit_rate": round(stats["hit_rate"], 6),
            "renders_performed": distinct_classes,
            "grid_items_per_s": round(grid_items / cached_wall, 2),
        },
        "baseline": {
            "wall_s": round(baseline_wall, 4),
            "renders_performed": grid_items,
            "renders_per_s": round(grid_items / baseline_wall, 2),
        },
        "speedup": round(speedup, 2),
        "datasets_bit_identical": True,
    }
    with open(report_path, "r", encoding="utf-8") as fh:
        run_report = json.load(fh)
    result["breakdown"] = _breakdown(run_report)
    result["breakdown"]["report_path"] = os.path.relpath(report_path, _HERE)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(f"speedup: {speedup:.1f}x  ->  {args.out}")

    failures = []
    if stats["hit_rate"] < 0.95:
        failures.append(f"hit rate {stats['hit_rate']:.4f} < 0.95")
    if speedup < 10.0:
        failures.append(f"speedup {speedup:.1f}x < 10x")
    if failures:
        print("ACCEPTANCE FAILED: " + "; ".join(failures))
        return 1
    print("acceptance: hit rate >= 0.95 and speedup >= 10x  [ok]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
