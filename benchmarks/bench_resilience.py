#!/usr/bin/env python
"""Resilience benchmark: what fault tolerance costs, and that it works.

Four runs on the same workload:

  clean       supervised pooled render, no faults — the production path.
  checkpoint  same, checkpointing every 8 completed jobs — prices the
              crash-safe snapshot cadence.
  chaos       a seed-deterministic ``FaultPlan`` injects worker crashes
              (real ``os._exit`` in pool workers), corrupted returns, and
              render delays across a fraction of the class keys; the
              supervisor must recover all of them.
  resume      the chaos run's checkpoint replayed from half its render
              map — prices resume and proves it skips completed work.

Acceptance gates (asserted, so regressions fail loudly):

  * every run's dataset is byte-identical to the clean run's;
  * the chaos run really was attacked (crashes + corrupt returns fired)
    and recovered everything (zero quarantined classes);
  * supervision bookkeeping on the clean run stays cheap relative to the
    render work itself (attempts == jobs, no retries).

Usage: PYTHONPATH=src python benchmarks/bench_resilience.py [--users N]
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import RenderCache, Recorder, run_study  # noqa: E402
from repro.io import atomic_write_json  # noqa: E402
from repro.resilience import Fault, FaultPlan, RetryPolicy  # noqa: E402
from repro.resilience.faults import ENV_VAR  # noqa: E402
from repro.webaudio import ENGINE_VERSION  # noqa: E402

VECTORS = ("dc", "fft", "hybrid")

#: fractions of class keys each chaos fault hits (seed-deterministic)
CRASH_FRACTION = 0.12
CORRUPT_FRACTION = 0.12
DELAY_FRACTION = 0.25

POLICY = RetryPolicy(base_delay_s=0.01, max_delay_s=0.1, job_deadline_s=60.0)


def _timed_study(tag, out_dir, **kwargs):
    recorder = Recorder()
    start = time.perf_counter()
    dataset = run_study(recorder=recorder, cache=RenderCache(), **kwargs)
    elapsed = time.perf_counter() - start
    path = os.path.join(out_dir, f"{tag}.json")
    dataset.save(path)
    with open(path, "rb") as fh:
        digest_bytes = fh.read()
    return {"tag": tag, "seconds": elapsed, "bytes": digest_bytes,
            "counters": dict(recorder.counters)}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--users", type=int, default=40)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2022)
    args = parser.parse_args()

    study = dict(user_count=args.users, iterations=args.iterations,
                 vectors=VECTORS, seed=args.seed, workers=args.workers,
                 retry_policy=POLICY)

    with tempfile.TemporaryDirectory(prefix="bench_resilience.") as tmp:
        os.environ.pop(ENV_VAR, None)
        clean = _timed_study("clean", tmp, **study)

        ckpt_path = os.path.join(tmp, "bench.ckpt")
        checkpoint = _timed_study("checkpoint", tmp,
                                  checkpoint_path=ckpt_path,
                                  checkpoint_every=8, **study)

        plan = FaultPlan(seed=args.seed, faults=(
            Fault(kind="crash", fraction=CRASH_FRACTION, times=1),
            Fault(kind="corrupt", fraction=CORRUPT_FRACTION, times=1),
            Fault(kind="delay", fraction=DELAY_FRACTION, times=1,
                  seconds=0.02),
        ))
        chaos_ckpt = os.path.join(tmp, "chaos.ckpt")
        os.environ[ENV_VAR] = plan.save(os.path.join(tmp, "plan.json"))
        try:
            chaos = _timed_study("chaos", tmp, checkpoint_path=chaos_ckpt,
                                 checkpoint_every=8, **study)
        finally:
            os.environ.pop(ENV_VAR, None)

        # replay the chaos checkpoint from half its render map: a
        # simulated mid-run kill, resumed fault-free
        payload = json.loads(open(chaos_ckpt, encoding="utf-8").read())
        keys = sorted(payload["rendered"])
        payload["rendered"] = {k: payload["rendered"][k]
                               for k in keys[:len(keys) // 2]}
        with open(chaos_ckpt, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        resume = _timed_study("resume", tmp, checkpoint_path=chaos_ckpt,
                              checkpoint_every=8, **study)

    runs = [clean, checkpoint, chaos, resume]
    for run in runs[1:]:
        assert run["bytes"] == clean["bytes"], \
            f"{run['tag']} dataset diverged from the clean run"

    cc = chaos["counters"]
    injected = cc.get("retry.crashes", 0) + cc.get("retry.corrupt_returns", 0)
    assert injected >= 1, "chaos plan injected no faults — nothing measured"
    assert cc.get("retry.quarantined", 0) == 0, \
        "chaos run quarantined classes instead of recovering them"
    assert clean["counters"].get("retry.retries", 0) == 0
    assert clean["counters"]["retry.attempts"] == \
        clean["counters"]["pool.jobs"]

    resumed = resume["counters"].get("checkpoint.resumed_classes", 0)
    assert resumed >= 1, "resume run resumed nothing"

    def _summary(run):
        c = run["counters"]
        return {
            "seconds": round(run["seconds"], 4),
            "overhead_vs_clean": round(run["seconds"] / clean["seconds"], 4)
            if clean["seconds"] > 0 else None,
            "attempts": c.get("retry.attempts", 0),
            "retries": c.get("retry.retries", 0),
            "crashes": c.get("retry.crashes", 0),
            "timeouts": c.get("retry.timeouts", 0),
            "corrupt_returns": c.get("retry.corrupt_returns", 0),
            "pool_rebuilds": c.get("degraded.pool_rebuilds", 0),
            "checkpoint_writes": c.get("checkpoint.writes", 0),
            "resumed_classes": c.get("checkpoint.resumed_classes", 0),
        }

    result = {
        "benchmark": "resilience",
        "engine_version": ENGINE_VERSION,
        "python": platform.python_version(),
        "workload": {"users": args.users, "iterations": args.iterations,
                     "vectors": list(VECTORS), "seed": args.seed,
                     "workers": args.workers},
        "fault_plan": {"crash_fraction": CRASH_FRACTION,
                       "corrupt_fraction": CORRUPT_FRACTION,
                       "delay_fraction": DELAY_FRACTION,
                       "delay_seconds": 0.02},
        "runs": {run["tag"]: _summary(run) for run in runs},
        "identical_datasets": True,
    }
    atomic_write_json(os.path.join(_HERE, "BENCH_resilience.json"), result,
                      indent=2)
    print(json.dumps(result["runs"], indent=2))
    print("OK: all four datasets byte-identical; chaos recovered "
          f"{injected} injected fault(s) with "
          f"{cc.get('degraded.pool_rebuilds', 0)} pool rebuild(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
