"""Make `src/` importable when pytest is run from the repo root.

The tier-1 command already sets PYTHONPATH=src; this keeps a bare
`python -m pytest` working too (and keeps forked pool workers happy).
"""
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
