"""Property-style checks: every custom FFT backend matches numpy.fft.fft
within its declared tolerance, on power-of-two sizes (native kernels) and
non-power-of-two sizes (Bluestein chirp-z path). Fixed seeds, no
hypothesis dependency.
"""
import numpy as np
import pytest

from repro.webaudio.fft import FFT_BACKENDS, get_fft_backend

POW2_SIZES = [8, 32, 128, 512, 2048]
NON_POW2_SIZES = [3, 12, 100, 441, 1000]
CUSTOM_BACKENDS = [n for n in FFT_BACKENDS if n != "numpy"]


def _rel_error(got, ref):
    scale = np.max(np.abs(ref))
    return np.max(np.abs(got - ref)) / (scale if scale else 1.0)


@pytest.mark.parametrize("name", CUSTOM_BACKENDS)
@pytest.mark.parametrize("n", POW2_SIZES)
def test_pow2_matches_numpy(name, n):
    rng = np.random.default_rng(1234 + n)
    backend = get_fft_backend(name)
    for _ in range(3):
        x = rng.standard_normal(n)
        tol = max(backend.tolerance, 1e-12)
        assert _rel_error(backend.fft(x), np.fft.fft(x)) < tol


@pytest.mark.parametrize("name", CUSTOM_BACKENDS)
@pytest.mark.parametrize("n", NON_POW2_SIZES)
def test_non_pow2_matches_numpy_via_bluestein(name, n):
    rng = np.random.default_rng(4321 + n)
    backend = get_fft_backend(name)
    x = rng.standard_normal(n)
    tol = max(backend.tolerance, 1e-10) * 10  # chirp-z loses a digit
    assert _rel_error(backend.fft(x), np.fft.fft(x)) < tol


@pytest.mark.parametrize("name", CUSTOM_BACKENDS)
def test_complex_input(name):
    rng = np.random.default_rng(77)
    x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
    backend = get_fft_backend(name)
    assert _rel_error(backend.fft(x), np.fft.fft(x)) < 1e-9


@pytest.mark.parametrize("name", list(FFT_BACKENDS))
def test_linearity_and_impulse(name):
    """DFT properties that hold regardless of tolerance: delta -> flat ones,
    and the transform is linear."""
    backend = get_fft_backend(name)
    delta = np.zeros(64)
    delta[0] = 1.0
    assert np.allclose(backend.fft(delta), np.ones(64), atol=1e-9)

    rng = np.random.default_rng(5)
    a, b = rng.standard_normal(64), rng.standard_normal(64)
    lhs = backend.fft(2.0 * a + 3.0 * b)
    rhs = 2.0 * backend.fft(a) + 3.0 * backend.fft(b)
    assert np.allclose(lhs, rhs, atol=1e-8)


def test_backends_bitwise_distinct():
    """The whole point of multiple backends: ulp-level divergence. The three
    custom kernels must NOT be bit-identical to numpy on a nontrivial input
    (if they were, stacks differing only in FFT backend would collide)."""
    rng = np.random.default_rng(9)
    x = rng.standard_normal(2048)
    ref = np.fft.fft(x).tobytes()
    distinct = {ref}
    for name in CUSTOM_BACKENDS:
        distinct.add(get_fft_backend(name).fft(x).tobytes())
    assert len(distinct) >= 3


def test_unknown_backend_raises():
    with pytest.raises(KeyError):
        get_fft_backend("fftw-4.0")


def test_empty_input():
    for name in FFT_BACKENDS:
        assert get_fft_backend(name).fft(np.zeros(0)).shape == (0,)
