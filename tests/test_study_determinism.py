"""The seeded-reproducibility contract (EXPERIMENTS.md): same seed ->
bit-identical dataset; different seed -> different stack assignments.
"""
import pytest

from repro import RenderCache, StudyDataset, run_study
from repro.population.sampler import sample_population

FAST = dict(user_count=50, iterations=6, vectors=("dc", "fft"), workers=0)


def test_same_seed_identical_dataset():
    a = run_study(seed=2021, **FAST)
    b = run_study(seed=2021, **FAST)
    assert a == b


def test_different_seed_different_assignments():
    a = run_study(seed=2021, **FAST)
    b = run_study(seed=2022, **FAST)
    assert a.stack_keys() != b.stack_keys()


def test_shared_cache_does_not_change_results():
    shared = RenderCache()
    first = run_study(seed=2021, cache=shared, **FAST)
    second = run_study(seed=2021, cache=shared, **FAST)  # 100% warm
    assert first == second
    assert shared.stats()["hit_rate"] > 0.9


def test_worker_count_does_not_change_results():
    serial = run_study(seed=2021, **FAST)
    pooled = run_study(seed=2021, user_count=50, iterations=6,
                       vectors=("dc", "fft"), workers=2)
    assert serial == pooled


def test_population_sampler_is_deterministic():
    a = sample_population(40, seed=5)
    b = sample_population(40, seed=5)
    assert a == b
    c = sample_population(40, seed=6)
    assert [d.stack for d in a] != [d.stack for d in c]


def test_vector_subset_keeps_other_streams():
    """Dropping the analyser-free DC vector must not shift the jitter
    streams of the analyser vectors."""
    both = run_study(seed=3, user_count=10, iterations=5,
                     vectors=("dc", "fft"), workers=0)
    only_fft = run_study(seed=3, user_count=10, iterations=5,
                         vectors=("fft",), workers=0)
    assert both.series["fft"] == only_fft.series["fft"]


def test_dataset_round_trips_through_json(tmp_path):
    dataset = run_study(seed=11, user_count=5, iterations=3,
                        vectors=("dc",), workers=0)
    path = str(tmp_path / "ds.json")
    dataset.save(path)
    assert StudyDataset.load(path) == dataset


def test_unknown_vector_rejected_before_sampling():
    with pytest.raises(KeyError):
        run_study(user_count=5, vectors=("dc", "nope"), workers=0)


def test_invalid_user_count():
    with pytest.raises(ValueError):
        run_study(user_count=0, workers=0)


@pytest.mark.parametrize("iterations", [0, -3])
def test_invalid_iterations_rejected_up_front(iterations):
    with pytest.raises(ValueError, match="iterations"):
        run_study(user_count=5, iterations=iterations, workers=0)


def test_empty_vectors_rejected_up_front():
    with pytest.raises(ValueError, match="vectors"):
        run_study(user_count=5, vectors=(), workers=0)
