"""The `python -m repro.analysis` CLI: dataset in -> deterministic
report out, schema-checked by the `repro.obs.report` CLI (kind
dispatch), with clean failures on corrupt inputs."""
import json

import pytest

from repro import run_study
from repro.analysis import validate_analysis_report
from repro.analysis.__main__ import main as analysis_main
from repro.obs.report import main as report_main

STUDY = dict(user_count=20, iterations=5, vectors=("dc", "fft"),
             seed=13, workers=0)


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("analysis") / "dataset.json"
    run_study(**STUDY).save(str(path))
    return str(path)


class TestCli:
    def test_out_writes_valid_report(self, dataset_path, tmp_path):
        out = tmp_path / "report.json"
        assert analysis_main([dataset_path, "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "repro.analysis.report"
        assert validate_analysis_report(payload) == []
        assert payload["dataset"]["user_count"] == STUDY["user_count"]

    def test_repeated_runs_are_byte_identical(self, dataset_path, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert analysis_main([dataset_path, "--out", str(a)]) == 0
        assert analysis_main([dataset_path, "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_worker_count_does_not_change_report_bytes(self, tmp_path):
        """The acceptance criterion: a dataset rendered at any worker
        count must analyse to the same bytes."""
        for workers, name in ((0, "serial"), (2, "pooled")):
            ds = tmp_path / f"{name}.json"
            run_study(user_count=30, iterations=6, vectors=("dc", "fft"),
                      seed=2021, workers=workers).save(str(ds))
            assert analysis_main([str(ds), "--out",
                                  str(tmp_path / f"{name}-rep.json")]) == 0
        assert (tmp_path / "serial-rep.json").read_bytes() \
            == (tmp_path / "pooled-rep.json").read_bytes()

    def test_stdout_json_mode(self, dataset_path, capsys):
        assert analysis_main([dataset_path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_analysis_report(payload) == []

    def test_render_mode(self, dataset_path, capsys):
        assert analysis_main([dataset_path, "--render"]) == 0
        out = capsys.readouterr().out
        assert "== analysis report ==" in out
        assert "diversity" in out and "stability" in out

    def test_check_mode_is_quiet(self, dataset_path, capsys):
        assert analysis_main([dataset_path, "--check"]) == 0
        assert capsys.readouterr().out == ""

    def test_timings_go_to_stderr_not_report(self, dataset_path, tmp_path,
                                             capsys):
        out = tmp_path / "rep.json"
        assert analysis_main([dataset_path, "--out", str(out),
                              "--timings"]) == 0
        err = capsys.readouterr().err
        assert "span" in err and "collation.edges" in err
        assert "span" not in out.read_text()  # timings never enter the report

    def test_missing_dataset_fails(self, tmp_path, capsys):
        assert analysis_main([str(tmp_path / "nope.json")]) == 2
        assert "no dataset" in capsys.readouterr().err

    def test_invalid_json_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{torn")
        assert analysis_main([str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_inconsistent_dataset_fails_with_field(self, dataset_path,
                                                   tmp_path, capsys):
        payload = json.loads(open(dataset_path).read())
        payload["meta"]["user_count"] += 1
        bad = tmp_path / "inconsistent.json"
        bad.write_text(json.dumps(payload))
        assert analysis_main([str(bad)]) == 2
        assert "user_count" in capsys.readouterr().err


class TestObsReportDispatch:
    @pytest.fixture()
    def report_path(self, dataset_path, tmp_path):
        out = tmp_path / "report.json"
        assert analysis_main([dataset_path, "--out", str(out)]) == 0
        return str(out)

    def test_check_passes(self, report_path, capsys):
        assert report_main([report_path, "--check"]) == 0
        assert capsys.readouterr().out == ""

    def test_renders_tables(self, report_path, capsys):
        assert report_main([report_path]) == 0
        assert "== analysis report ==" in capsys.readouterr().out

    def test_tampered_stability_rejected(self, report_path, tmp_path, capsys):
        """The validator enforces the collation invariant itself, not just
        types: a report claiming an uncollapsed fickle user fails."""
        payload = json.loads(open(report_path).read())
        stab = payload["vectors"]["fft"]["stability"]
        stab["collated_stable_users"] -= 1
        bad = tmp_path / "tampered.json"
        bad.write_text(json.dumps(payload))
        assert report_main([str(bad), "--check"]) == 2
        assert "collation invariant" in capsys.readouterr().err

    def test_tampered_anonymity_sets_rejected(self, report_path, tmp_path,
                                              capsys):
        payload = json.loads(open(report_path).read())
        sizes = payload["vectors"]["dc"]["collated"]["per_user"][
            "anonymity_sets"]["sizes"]
        first = next(iter(sizes))
        sizes[first] += 1  # sets no longer partition the population
        bad = tmp_path / "tampered.json"
        bad.write_text(json.dumps(payload))
        assert report_main([str(bad), "--check"]) == 2
        assert "anonymity_sets" in capsys.readouterr().err

    def test_wrong_kind_still_checked_as_run_report(self, report_path,
                                                    tmp_path, capsys):
        payload = json.loads(open(report_path).read())
        payload["kind"] = "something.else"
        bad = tmp_path / "unknown-kind.json"
        bad.write_text(json.dumps(payload))
        assert report_main([str(bad), "--check"]) == 2


class TestTablesCli:
    """`python -m repro.analysis --tables` plus its obs.report dispatch."""

    @pytest.fixture(scope="class")
    def battery_dataset(self, tmp_path_factory):
        from repro.vectors import FULL_BATTERY
        path = tmp_path_factory.mktemp("tables") / "dataset.json"
        run_study(user_count=40, iterations=6, vectors=FULL_BATTERY,
                  seed=17, workers=0).save(str(path))
        return str(path)

    def test_tables_out_is_valid_and_byte_identical(self, battery_dataset,
                                                    tmp_path):
        from repro.analysis.tables import validate_tables_report
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert analysis_main([battery_dataset, "--tables",
                              "--out", str(a)]) == 0
        assert analysis_main([battery_dataset, "--tables",
                              "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        payload = json.loads(a.read_text())
        assert payload["kind"] == "repro.analysis.tables"
        assert validate_tables_report(payload) == []

    def test_tables_render_mode(self, battery_dataset, capsys):
        assert analysis_main([battery_dataset, "--tables", "--render"]) == 0
        out = capsys.readouterr().out
        assert "tables report" in out and "additive value" in out

    def test_obs_report_dispatches_on_tables_kind(self, battery_dataset,
                                                  tmp_path, capsys):
        out = tmp_path / "tables.json"
        assert analysis_main([battery_dataset, "--tables",
                              "--out", str(out)]) == 0
        capsys.readouterr()
        assert report_main([str(out), "--check"]) == 0
        assert capsys.readouterr().out == ""
        assert report_main([str(out)]) == 0
        assert "tables report" in capsys.readouterr().out

    def test_obs_report_rejects_bad_schema_version(self, battery_dataset,
                                                   tmp_path, capsys):
        """The satellite: --check validates the tables kind's schema
        version instead of silently accepting any payload."""
        out = tmp_path / "tables.json"
        assert analysis_main([battery_dataset, "--tables",
                              "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        payload["format"] = 99
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        assert report_main([str(bad), "--check"]) == 2
        assert "format" in capsys.readouterr().err

    def test_unknown_vector_in_dataset_is_a_named_error(self, battery_dataset,
                                                        tmp_path, capsys):
        """The satellite: a dataset naming an unregistered vector fails
        with `error: unknown vector ...`, not a traceback."""
        payload = json.loads(open(battery_dataset).read())
        payload["meta"]["vectors"] = list(payload["meta"]["vectors"]) \
            + ["nope"]
        payload["series"]["nope"] = payload["series"]["dc"]
        bad = tmp_path / "unknown-vector.json"
        bad.write_text(json.dumps(payload))
        assert analysis_main([str(bad), "--tables"]) == 2
        err = capsys.readouterr().err
        assert "unknown vector 'nope'" in err
        assert "Traceback" not in err

    def test_tables_excludes_shard_modes(self, battery_dataset, capsys):
        with pytest.raises(SystemExit):
            analysis_main([battery_dataset, "--tables", "--shard"])
