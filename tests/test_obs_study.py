"""Observability x study driver contracts:

1. metric merging across process-pool workers — a seeded run with
   workers=2 reports the same aggregate counters (and a bit-identical
   dataset) as the same run inline;
2. the null-recorder fast path — with observability disabled, run_study
   makes a constant number of recorder calls per run and zero per render.
"""
import pytest

from repro import RenderCache, run_study
from repro.obs import NullRecorder, Recorder

# 4 users x 2 iterations x 3 vectors = 24 grid items: with the cache
# disabled that is exactly the pool threshold, so workers=2 really
# exercises the ProcessPoolExecutor merge path on this 1-CPU box.
POOLED = dict(user_count=4, iterations=2, vectors=("dc", "fft", "hybrid"),
              seed=5)


def _aggregates(recorder):
    return {
        "counters": dict(recorder.counters),
        "histogram_counts": {name: hist.count
                             for name, hist in recorder.histograms.items()},
        "node_calls": {stack: {label: entry["calls"]
                               for label, entry in nodes.items()}
                       for stack, nodes in recorder.node_profile.items()},
    }


class TestPoolMerge:
    @pytest.fixture(scope="class")
    def runs(self):
        results = {}
        for workers in (0, 2):
            recorder = Recorder()
            cache = RenderCache(disabled=True)
            dataset = run_study(cache=cache, workers=workers,
                                recorder=recorder, **POOLED)
            results[workers] = (dataset, recorder, cache)
        return results

    def test_datasets_bit_identical(self, runs):
        assert runs[0][0] == runs[2][0]

    def test_aggregate_counters_identical(self, runs):
        assert _aggregates(runs[0][1]) == _aggregates(runs[2][1])

    def test_cache_counters_identical(self, runs):
        assert runs[0][2].stats() == runs[2][2].stats()

    def test_every_render_was_measured(self, runs):
        _, recorder, cache = runs[2]
        assert recorder.counters["render.renders"] == 24 == cache.misses
        per_vector = sum(
            recorder.histograms[f"render.latency_s.{v}"].count
            for v in POOLED["vectors"])
        assert per_vector == 24

    def test_profiled_set_is_deterministic(self, runs):
        # first job per (vector, stack) carries the node profiler; the
        # planning order fixes that set regardless of worker count
        assert runs[0][1].node_profile.keys() == runs[2][1].node_profile.keys()
        assert runs[0][1].counters["render.profiled_renders"] == \
            runs[2][1].counters["render.profiled_renders"]

    def test_cached_run_counters_survive_the_pool(self):
        results = {}
        for workers in (0, 2):
            recorder = Recorder()
            run_study(user_count=30, iterations=4, vectors=("fft",), seed=9,
                      cache=RenderCache(), workers=workers, recorder=recorder)
            results[workers] = _aggregates(recorder)
        assert results[0] == results[2]
        # batched grouping ships one pooled task per (vector, stack) group:
        # enough groups to engage the pool, and every render accounted for
        counters = results[2]["counters"]
        assert counters["pool.jobs"] == counters["render.batches"] >= 4
        assert results[2]["histogram_counts"]["render.batch_size"] == \
            counters["render.batches"]


class SpyRecorder(NullRecorder):
    """Claims to be disabled (so the driver takes the fast path) while
    counting every recorder call the driver still makes. NullRecorder has
    empty __slots__, so the tallies live on the class."""

    span_calls = 0
    counter_calls = 0
    observe_calls = 0
    profile_calls = 0

    def span(self, name, **attrs):
        SpyRecorder.span_calls += 1
        return super().span(name, **attrs)

    def count(self, name, value=1):
        SpyRecorder.counter_calls += 1

    def observe(self, name, value):
        SpyRecorder.observe_calls += 1

    def record_node_profile(self, stack_key, seconds, calls=None):
        SpyRecorder.profile_calls += 1

    @classmethod
    def reset(cls):
        cls.span_calls = 0
        cls.counter_calls = 0
        cls.observe_calls = 0
        cls.profile_calls = 0


class TestNullFastPath:
    def _run(self, user_count, iterations):
        SpyRecorder.reset()
        dataset = run_study(user_count=user_count, iterations=iterations,
                            vectors=("dc", "fft"), seed=3, workers=0,
                            recorder=SpyRecorder())
        return dataset, (SpyRecorder.span_calls, SpyRecorder.counter_calls,
                         SpyRecorder.observe_calls, SpyRecorder.profile_calls)

    def test_zero_per_render_recorder_calls(self):
        _, small = self._run(user_count=3, iterations=2)
        _, large = self._run(user_count=9, iterations=4)
        # call counts are a constant per run — they must not scale with
        # the grid (6 renders vs 72 renders here)
        assert small == large
        span_calls, counter_calls, observe_calls, profile_calls = large
        assert counter_calls == observe_calls == profile_calls == 0
        assert span_calls <= 4  # plan / render / probe / assemble

    def test_disabled_observability_is_bit_identical(self):
        spy_dataset, _ = self._run(user_count=5, iterations=3)
        plain = run_study(user_count=5, iterations=3, vectors=("dc", "fft"),
                          seed=3, workers=0)
        assert spy_dataset == plain
