"""Collation: the fingerprint graph's connected components become stable
collated ids — edge cases (single user, fully stable, fully fickle,
cross-user sharing), union-find correctness, and exact permutation
invariance of the entropy metrics under user reordering."""
import numpy as np
import pytest

from repro import StudyDataset, run_study
from repro.analysis import (UnionFind, build_analysis_report, collate,
                            collate_vector, series_edges)


def make_dataset(series, iterations):
    """Build a StudyDataset straight from {vector: {uid: [eFPs]}}."""
    vectors = tuple(series)
    uids = list(next(iter(series.values())))
    return StudyDataset(
        seed=0, user_count=len(uids), iterations=iterations,
        vectors=vectors,
        users=[{"id": uid} for uid in uids],
        series=series,
    )


class TestUnionFind:
    def test_roots_match_naive_connectivity(self):
        rng = np.random.default_rng(3)
        n = 200
        edges = rng.integers(0, n, size=(150, 2))
        uf = UnionFind(n)
        uf.union_edges(edges)
        roots = uf.roots()
        # naive: repeated min-label propagation over an adjacency dict
        label = list(range(n))
        changed = True
        while changed:
            changed = False
            for a, b in edges.tolist():
                low = min(label[a], label[b])
                if label[a] != low or label[b] != low:
                    label[a] = label[b] = low
                    changed = True
        # same partition: equal roots <=> equal naive labels
        for i in range(n):
            for j in (0, n // 2, n - 1):
                assert (roots[i] == roots[j]) == (label[i] == label[j])

    def test_root_is_component_minimum_regardless_of_edge_order(self):
        for order in ([(2, 4), (4, 1), (1, 9)], [(1, 9), (4, 1), (2, 4)]):
            uf = UnionFind(10)
            for a, b in order:
                uf.union(a, b)
            roots = uf.roots()
            assert roots[1] == roots[2] == roots[4] == roots[9] == 1
            assert roots[0] == 0

    def test_union_reports_merges(self):
        uf = UnionFind(3)
        assert uf.union(0, 1) is True
        assert uf.union(0, 1) is False
        assert uf.union_edges(np.array([[1, 2], [0, 2]])) == 1


class TestSeriesEdges:
    def test_star_edges_deduplicated(self):
        codes = np.array([[0, 1, 0, 2], [3, 3, 3, 3]])
        assert series_edges(codes).tolist() == [[0, 1], [0, 2]]

    def test_single_iteration_has_no_edges(self):
        assert series_edges(np.array([[0], [1]])).shape == (0, 2)


class TestEdgeCases:
    def test_single_user_fickle_series_is_one_component(self):
        ds = make_dataset({"v": {"u0": ["a", "b", "c"]}}, iterations=3)
        col = collate_vector(ds, "v")
        assert col.efp_count == 3
        assert col.component_count == 1
        assert col.user_component_ids() == {"u0": 0}
        report = build_analysis_report(ds)
        per_user = report["vectors"]["v"]["collated"]["per_user"]
        assert per_user["entropy_bits"] == 0.0
        assert per_user["normalized_entropy"] == 0.0
        assert report["vectors"]["v"]["stability"]["fickle_users_collapsed"] == 1

    def test_fully_stable_distinct_users(self):
        ds = make_dataset(
            {"v": {f"u{i}": [f"e{i}"] * 4 for i in range(4)}}, iterations=4)
        col = collate_vector(ds, "v")
        assert col.edge_count == 0
        assert col.component_count == 4
        report = build_analysis_report(ds)
        dist = report["vectors"]["v"]["collated"]["per_user"]
        assert dist["entropy_bits"] == 2.0          # uniform over 4 users
        assert dist["normalized_entropy"] == 1.0    # everyone unique
        assert dist["unique_ids"] == 4
        stab = report["vectors"]["v"]["stability"]
        assert stab["raw_fickle_users"] == 0
        assert stab["collated_stable_users"] == 4

    def test_fully_fickle_every_iteration_differs(self):
        """Each user emits a fresh eFP every iteration (disjoint across
        users): collation must still collapse each user to one id."""
        ds = make_dataset(
            {"v": {f"u{i}": [f"e{i}.{k}" for k in range(5)]
                   for i in range(3)}}, iterations=5)
        col = collate_vector(ds, "v")
        assert col.efp_count == 15
        assert col.component_count == 3
        assert (col.raw_distinct_per_user() == 5).all()
        assert (col.collated_distinct_per_user() == 1).all()
        report = build_analysis_report(ds)
        stab = report["vectors"]["v"]["stability"]
        assert stab["raw_fickle_users"] == 3
        assert stab["fickle_users_collapsed"] == 3
        assert report["vectors"]["v"]["collated"]["per_user"]["distinct"] == 3

    def test_shared_efp_merges_users_into_one_anonymity_set(self):
        ds = make_dataset(
            {"v": {"uA": ["x", "y"], "uB": ["y", "z"], "uC": ["w", "w"]}},
            iterations=2)
        col = collate_vector(ds, "v")
        ids = col.user_component_ids()
        assert ids["uA"] == ids["uB"]       # share y -> one component
        assert ids["uC"] != ids["uA"]
        report = build_analysis_report(ds)
        sizes = report["vectors"]["v"]["collated"]["per_user"]["anonymity_sets"]
        assert sizes["sizes"] == {"1": 1, "2": 1}

    def test_transitive_merge_across_users(self):
        """A-B share b, B-C share c: all three users must collate to one
        id even though A and C share nothing directly."""
        ds = make_dataset(
            {"v": {"uA": ["a", "b"], "uB": ["b", "c"], "uC": ["c", "d"]}},
            iterations=2)
        col = collate_vector(ds, "v")
        assert col.component_count == 1
        assert len(set(col.user_component_ids().values())) == 1


@pytest.fixture(scope="module")
def study():
    return run_study(user_count=60, iterations=10,
                     vectors=("dc", "fft", "hybrid"), seed=2021, workers=0)


class TestOnRealStudy:
    def test_every_fickle_user_collapses(self, study):
        """The acceptance property: collated ids are strictly more stable
        than raw eFPs — every fickle raw series maps to exactly one
        collated id per vector."""
        saw_fickle = False
        for name, col in collate(study).items():
            raw = col.raw_distinct_per_user()
            assert (col.collated_distinct_per_user() == 1).all(), name
            saw_fickle = saw_fickle or bool((raw > 1).any())
        assert saw_fickle  # the study must actually contain fickle series

    def test_collation_is_deterministic(self, study):
        a = collate_vector(study, "fft")
        b = collate_vector(study, "fft")
        assert a.labels == b.labels
        assert np.array_equal(a.efp_components, b.efp_components)
        assert np.array_equal(a.user_components, b.user_components)
        assert a.edge_count == b.edge_count

    def test_dc_components_equal_distinct_efps(self, study):
        """DC is bit-stable, so its graph has no edges and components
        degenerate to the distinct raw eFPs."""
        col = collate_vector(study, "dc")
        assert col.edge_count == 0
        assert col.component_count == col.efp_count

    def test_entropy_is_permutation_invariant(self, study):
        """Reordering users must leave every entropy/anonymity/stability
        number exactly (bit-for-bit) unchanged."""
        report = build_analysis_report(study)

        order = list(range(study.user_count))
        rng = np.random.default_rng(7)
        rng.shuffle(order)
        shuffled = StudyDataset(
            seed=study.seed, user_count=study.user_count,
            iterations=study.iterations, vectors=study.vectors,
            users=[study.users[i] for i in order],
            series={v: {u["id"]: study.series[v][u["id"]]
                        for u in (study.users[i] for i in order)}
                    for v in study.vectors},
        )
        other = build_analysis_report(shuffled)
        for name in study.vectors:
            mine, theirs = report["vectors"][name], other["vectors"][name]
            assert mine["graph"] == theirs["graph"]
            assert mine["raw"] == theirs["raw"]
            assert mine["collated"] == theirs["collated"]
            assert mine["stability"] == theirs["stability"]
        assert report["combined"]["collated"] == other["combined"]["collated"]
        assert (report["combined"]["raw_first_observation"]
                == other["combined"]["raw_first_observation"])

    def test_combined_at_least_as_diverse_as_components(self, study):
        """The paper's Combined row: the cross-vector tuple can only
        refine the partition, never coarsen it."""
        report = build_analysis_report(study)
        combined = report["combined"]["collated"]["entropy_bits"]
        for name in study.vectors:
            single = report["vectors"][name]["collated"]["per_user"]["entropy_bits"]
            assert combined >= single - 1e-12
