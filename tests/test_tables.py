"""Tables 2–5 analysis: schema, determinism, and the paper's invariants.

The expensive fixture is a paper-scale 2093-user full-battery study
(cheap in wall clock thanks to the equivalence-class cache); the
qualitative assertions mirror the paper's published shape rather than
exact numbers — audio diversity far below canvas/fonts/UA, combination
only ever refining, additive value in the published regime, match
scores ~1 once a revisit sees two iterations, and the math library
explaining only part of the DC signal.
"""
import pytest

from repro import RenderCache, run_study
from repro.analysis.tables import (MATCH_SPLITS, TABLES_FORMAT, TABLES_KIND,
                                   build_tables_report, classify_vectors,
                                   dumps_tables_report, match_score,
                                   render_tables_report,
                                   validate_tables_report)
from repro.vectors import FULL_BATTERY, UnknownVectorError


@pytest.fixture(scope="module")
def paper_dataset():
    return run_study(2093, iterations=8, vectors=FULL_BATTERY, seed=2021,
                     cache=RenderCache(), workers=0)


@pytest.fixture(scope="module")
def tables(paper_dataset):
    return build_tables_report(paper_dataset)


class TestSchemaAndDeterminism:
    def test_kind_format_and_self_validation(self, tables):
        assert tables["kind"] == TABLES_KIND
        assert tables["format"] == TABLES_FORMAT
        assert validate_tables_report(tables) == []

    def test_byte_determinism(self, paper_dataset, tables):
        again = build_tables_report(paper_dataset)
        assert dumps_tables_report(again) == dumps_tables_report(tables)

    def test_renders_every_section(self, tables):
        text = render_tables_report(tables)
        for marker in ("table 2", "table 3", "additive value",
                       "match scores", "table 4", "table 5"):
            assert marker in text

    def test_validator_catches_corruption(self, tables):
        import copy
        bad = copy.deepcopy(tables)
        bad["format"] = 99
        assert any("format" in p for p in validate_tables_report(bad))
        bad = copy.deepcopy(tables)
        bad["table5_platforms"][0]["dc_distinct"] = 10 ** 6
        assert any("exceeds" in p for p in validate_tables_report(bad))

    def test_classify_rejects_unknown_vectors(self):
        with pytest.raises(UnknownVectorError):
            classify_vectors(("dc", "nope"))
        audio, comparator = classify_vectors(FULL_BATTERY)
        assert set(audio) == {"dc", "fft", "hybrid", "custom", "merged",
                              "am", "fm"}
        assert set(comparator) == {"mathjs", "canvas", "fonts", "useragent"}


class TestPaperInvariants:
    def test_audio_diversity_far_below_comparators(self, tables):
        """Table 2 vs Table 3: every audio vector's entropy sits well
        below canvas/fonts/useragent (the paper's core negative result)."""
        audio = tables["table2_audio"]["vectors"]
        comp = tables["table3_comparators"]["vectors"]
        max_audio = max(v["entropy_bits"] for v in audio.values())
        for name in ("canvas", "fonts", "useragent"):
            assert comp[name]["entropy_bits"] > 2 * max_audio

    def test_combined_refines_every_component(self, tables):
        for section in ("table2_audio", "table3_comparators"):
            combined = tables[section]["combined"]["entropy_bits"]
            for dist in tables[section]["vectors"].values():
                assert combined >= dist["entropy_bits"] - 1e-9
        overall = tables["combined_all"]["entropy_bits"]
        assert overall >= tables["table3_comparators"]["combined"][
            "entropy_bits"] - 1e-9

    def test_additive_value_in_published_regime(self, tables):
        """Canvas+Audio and UA+Audio land in the paper's ~+10% regime
        (published: +9.6% / +9.7%); audio always adds entropy."""
        pairs = {p["base"]: p for p in tables["additive_value"]["pairs"]}
        for base in ("canvas", "useragent", "fonts"):
            assert 4.0 <= pairs[base]["delta_pct"] <= 20.0
        for entry in pairs.values():
            assert entry["delta_bits"] >= 0.0
        # the low-entropy mathjs base gains proportionally far more
        assert pairs["mathjs"]["delta_pct"] > pairs["canvas"]["delta_pct"]

    def test_match_scores_high_for_two_plus_iterations(self, tables):
        """The paper's ≥ ~0.98 once training sees s >= 2 iterations."""
        scores = tables["match_scores"]["scores"]
        for name, per_split in scores.items():
            for split, value in per_split.items():
                if int(split) >= 2:
                    assert value >= 0.97, (name, split, value)
        # s=1 misses some jittery revisits: strictly below the s=2 score
        # for at least one analyser vector (otherwise the split sweep
        # isn't measuring anything)
        assert any(per_split.get("1", 1.0) < per_split.get("2", 1.0)
                   for per_split in scores.values())

    def test_table4_math_library_explains_only_part_of_dc(self, tables):
        table4 = tables["table4_mathjs"]
        assert table4["mathjs"]["entropy_bits"] < table4["dc"]["entropy_bits"]
        assert table4["mathjs"]["distinct"] < table4["dc"]["distinct"]
        assert table4["dc_over_mathjs_entropy"] > 1.0

    def test_table5_dc_out_diversifies_mathjs_per_platform(self, tables):
        rows = {row["platform"]: row for row in tables["table5_platforms"]}
        assert set(rows) == {"Windows", "macOS", "Linux", "Android"}
        for row in rows.values():
            assert row["dc_distinct"] >= row["mathjs_distinct"]
        # the paper's specific call-outs: macOS and Android show more DC
        # than math-library diversity (sample rate / compressor effects)
        for platform in ("macOS", "Android"):
            assert rows[platform]["dc_distinct"] \
                > rows[platform]["mathjs_distinct"]


class TestMatchScoreUnit:
    def test_too_short_series_returns_none(self):
        import numpy as np
        codes = np.zeros((4, 3), dtype=np.int64)
        assert match_score(codes, 2) is None

    def test_perfectly_stable_users_always_match(self):
        import numpy as np
        codes = np.arange(5, dtype=np.int64)[:, None].repeat(6, axis=1)
        for s in (1, 2, 3):
            assert match_score(codes, s) == 1.0

    def test_novel_revisit_efp_breaks_the_match(self):
        import numpy as np
        # user 0 revisits with an eFP never seen in training: no link
        codes = np.array([[0, 0, 7, 7], [1, 1, 1, 1]], dtype=np.int64)
        assert match_score(codes, 2) == 0.5

    def test_splits_cover_the_paper_axis(self):
        assert MATCH_SPLITS == (1, 2, 3, 5)


class TestStudyFrontDoor:
    def test_duplicate_vectors_rejected_before_rendering(self):
        with pytest.raises(ValueError, match="duplicate vector"):
            run_study(3, iterations=1, vectors=("dc", "fft", "dc"))

    def test_unknown_vector_rejected_with_typed_error(self):
        with pytest.raises(UnknownVectorError):
            run_study(3, iterations=1, vectors=("dc", "nope"))
        with pytest.raises(KeyError):
            run_study(3, iterations=1, vectors=("nope",))

    def test_sharded_driver_shares_the_front_door(self, tmp_path):
        from repro.population.shards import run_study_sharded
        with pytest.raises(ValueError, match="duplicate vector"):
            run_study_sharded(4, 2, str(tmp_path), iterations=1,
                              vectors=("dc", "dc"))
        with pytest.raises(UnknownVectorError):
            run_study_sharded(4, 2, str(tmp_path), iterations=1,
                              vectors=("nope",))
