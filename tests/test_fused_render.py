"""Fused render path contracts.

The fused whole-buffer path exists purely as cost control: it must be
*bit-identical* to the 128-frame quantum loop for every vector, FFT
backend, and batch composition — same eFP digests, same StudyDataset
bytes — or it may not run at all (segmentation declines and the quantum
loop takes over). These tests pin that invariant, the segmentation
decision rules, the JIT tier's distinct cache identity, the study
runner's pool clamp, and the render cache's stale-version pruning.
"""
import json

import numpy as np
import pytest

from repro import RenderCache, run_study
from repro.obs import Recorder
from repro.platform import AudioStack
from repro.platform.jitter import sample_path, sample_repertoire
from repro.population.cache import _stale_version
from repro.vectors import AUDIO_VECTORS, get_vector
from repro.webaudio import ENGINE_VERSION, OfflineAudioContext
from repro.webaudio.config import EngineConfig
from repro.webaudio.fft import FFT_BACKENDS
from repro.webaudio.jit import numba_available
from repro.webaudio.segments import plan_segments

BACKENDS = sorted(FFT_BACKENDS)


def _paths_under_load(rng, count):
    """Heavy-load jitter paths: duplicates dominate, so batches exercise
    the analyser's readout dedup alongside genuinely distinct rows."""
    repertoire = sample_repertoire(rng, 0.9)
    return [sample_path(rng, 0.9, repertoire) for _ in range(count)]


def _force_path(monkeypatch, path):
    monkeypatch.setenv("REPRO_RENDER_PATH", path)


class TestFusedMatchesQuantum:
    """Every digest the fused path produces equals the quantum loop's."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(AUDIO_VECTORS))
    def test_batched_digests_identical(self, name, backend, monkeypatch):
        vector = get_vector(name)
        stack = AudioStack("blink", "ucrt", backend, "blink")
        rng = np.random.default_rng(hash((name, backend, "fused")) % 2**32)
        paths = _paths_under_load(rng, 7)
        _force_path(monkeypatch, "quantum")
        quantum = vector.render_batch(stack, paths)
        _force_path(monkeypatch, "fused")
        fused = vector.render_batch(stack, paths)
        assert fused == quantum

    @pytest.mark.parametrize("batch", [1, 7, 256])
    def test_every_batch_size(self, batch, monkeypatch):
        vector = get_vector("hybrid")
        stack = AudioStack("gecko", "glibc", "splitradix", "gecko", 48000)
        rng = np.random.default_rng(batch)
        paths = _paths_under_load(rng, batch)
        _force_path(monkeypatch, "quantum")
        quantum = vector.render_batch(stack, paths)
        _force_path(monkeypatch, "fused")
        assert vector.render_batch(stack, paths) == quantum

    def test_single_render_identical(self, monkeypatch):
        vector = get_vector("fft")
        stack = AudioStack("webkit", "apple-libm", "bluestein", "webkit")
        _force_path(monkeypatch, "quantum")
        quantum = vector.render(stack, None)
        _force_path(monkeypatch, "fused")
        assert vector.render(stack, None) == quantum

    def test_rendered_buffer_bytes_identical(self, monkeypatch):
        """Not just digests: the raw (B, c, n) buffer is byte-equal."""
        def _render(path):
            _force_path(monkeypatch, path)
            ctx = OfflineAudioContext(1, 5000, 44100, batch_size=3)
            osc = ctx.create_oscillator()
            comp = ctx.create_dynamics_compressor()
            osc.connect(comp).connect(ctx.destination)
            osc.start(0.0)
            out = ctx.start_rendering_batch()
            assert ctx.render_path_used == path
            return out
        np.testing.assert_array_equal(_render("fused"), _render("quantum"))


STUDY = dict(user_count=6, iterations=3, vectors=("dc", "fft", "hybrid"),
             seed=13)


class TestStudyDatasetAcrossRenderPaths:
    def test_dataset_json_bytes_identical(self, tmp_path, monkeypatch):
        """The serialized study artifact cannot depend on the render path."""
        blobs = set()
        for path in ("quantum", "fused", "auto"):
            _force_path(monkeypatch, path)
            dataset = run_study(cache=RenderCache(), workers=0, **STUDY)
            out = tmp_path / f"{path}.json"
            dataset.save(str(out))
            blobs.add(out.read_bytes())
        assert len(blobs) == 1


class TestSegmentation:
    def _chain(self):
        ctx = OfflineAudioContext(1, 5000, 44100)
        osc = ctx.create_oscillator()
        comp = ctx.create_dynamics_compressor()
        analyser = ctx.create_analyser()
        gain = ctx.create_gain()
        osc.connect(comp).connect(analyser).connect(gain).connect(ctx.destination)
        osc.start(0.0)
        return ctx, osc, comp, analyser, gain

    def test_linear_chain_plans(self):
        ctx, osc, comp, analyser, gain = self._chain()
        plan = plan_segments(ctx._nodes, ctx.destination)
        assert plan is not None
        # stateful nodes are singleton segment boundaries
        for segment in plan.segments:
            if segment.stateful:
                assert len(segment.nodes) == 1
                assert segment.nodes[0] in (comp, analyser)
        stateful = [s.nodes[0] for s in plan.segments if s.stateful]
        assert stateful == [comp, analyser]

    def test_auto_picks_fused_for_fusible_graph(self):
        ctx, *_ = self._chain()
        ctx.start_rendering()
        assert ctx.render_path_used == "fused"

    def test_quantum_forced_by_config(self):
        ctx, *_ = self._chain()
        ctx.config = EngineConfig(render_path="quantum")
        ctx.start_rendering()
        assert ctx.render_path_used == "quantum"

    def test_automation_falls_back_to_quantum(self):
        ctx, osc, comp, analyser, gain = self._chain()
        gain.gain.set_value_at_time(0.5, 0.05)
        assert plan_segments(ctx._nodes, ctx.destination) is None
        ctx.config = EngineConfig(render_path="fused")  # forced, still declines
        ctx.start_rendering()
        assert ctx.render_path_used == "quantum"

    def test_fan_out_falls_back_to_quantum(self):
        ctx = OfflineAudioContext(1, 5000, 44100)
        osc = ctx.create_oscillator()
        g1, g2 = ctx.create_gain(), ctx.create_gain()
        osc.connect(g1).connect(ctx.destination)
        osc.connect(g2).connect(ctx.destination)
        osc.start(0.0)
        assert plan_segments(ctx._nodes, ctx.destination) is None
        ctx.start_rendering()
        assert ctx.render_path_used == "quantum"

    def test_fan_in_falls_back_to_quantum(self):
        ctx = OfflineAudioContext(1, 5000, 44100)
        o1, o2 = ctx.create_oscillator(), ctx.create_oscillator()
        gain = ctx.create_gain()
        o1.connect(gain)
        o2.connect(gain)
        gain.connect(ctx.destination)
        o1.start(0.0)
        o2.start(0.0)
        assert plan_segments(ctx._nodes, ctx.destination) is None
        ctx.start_rendering()
        assert ctx.render_path_used == "quantum"

    def test_fallback_is_bit_identical(self):
        """Non-fusible graphs render the same bytes whatever the knob says."""
        outs = []
        for path in ("auto", "fused", "quantum"):
            ctx = OfflineAudioContext(1, 5000, 44100,
                                      config=EngineConfig(render_path=path))
            o1, o2 = ctx.create_oscillator(), ctx.create_oscillator()
            o2.frequency.value = 880.0
            o1.connect(ctx.destination)
            o2.connect(ctx.destination)
            o1.start(0.0)
            o2.start(0.0)
            outs.append(ctx.start_rendering_batch())
            assert ctx.render_path_used == "quantum"
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])


class TestJITTier:
    def test_jit_tier_is_a_distinct_cache_identity(self):
        numpy_key = AudioStack("blink", "ucrt", "radix2", "blink").cache_key()
        jit_key = AudioStack("blink", "ucrt", "radix2", "blink",
                             render_tier="jit").cache_key()
        assert jit_key != numpy_key
        assert jit_key.startswith(numpy_key)  # historical keys stay valid
        assert jit_key.endswith("|jit")

    def test_invalid_render_backend_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(render_backend="cuda")
        with pytest.raises(ValueError):
            EngineConfig(render_path="warp")

    @pytest.mark.skipif(numba_available(),
                        reason="numba present: fallback branch unreachable")
    def test_numpy_fallback_is_deterministic_and_bit_identical(self):
        """Without numba, the jit tier silently runs the NumPy kernels:
        same digests every time, equal to the numpy tier's."""
        vector = get_vector("hybrid")
        jit_stack = AudioStack("blink", "ucrt", "radix2", "blink",
                               render_tier="jit")
        numpy_stack = AudioStack("blink", "ucrt", "radix2", "blink")
        first = vector.render(jit_stack, None)
        assert first == vector.render(jit_stack, None)
        assert first == vector.render(numpy_stack, None)

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_jit_tier_renders_deterministically(self):
        """With numba, the jit tier is a real, self-consistent identity."""
        vector = get_vector("hybrid")
        stack = AudioStack("blink", "ucrt", "radix2", "blink",
                           render_tier="jit")
        assert vector.render(stack, None) == vector.render(stack, None)


class TestPoolClamp:
    def _tiny(self, monkeypatch, cores, **kw):
        monkeypatch.setattr("repro.population.study.os.cpu_count", lambda: cores)
        recorder = Recorder()
        dataset = run_study(user_count=3, iterations=2, vectors=("dc",),
                            seed=7, cache=RenderCache(), recorder=recorder,
                            **kw)
        return dataset, recorder.counters

    def test_oversubscribed_request_is_clamped(self, monkeypatch):
        _, counters = self._tiny(monkeypatch, cores=1, workers=8)
        # clamped to max(cpu, 2) == 2: 6 workers shaved off
        assert counters.get("pool.workers_clamped") == 6

    def test_explicit_pool_request_never_drops_below_two(self, monkeypatch):
        """workers=2 must stay a real pool even on a 1-core box (hang
        recovery needs a process to interrupt)."""
        _, counters = self._tiny(monkeypatch, cores=1, workers=2)
        assert "pool.workers_clamped" not in counters

    def test_within_budget_request_untouched(self, monkeypatch):
        _, counters = self._tiny(monkeypatch, cores=8, workers=4)
        assert "pool.workers_clamped" not in counters
        assert "pool.fanout_skipped" not in counters

    def test_auto_on_one_core_skips_fanout(self, monkeypatch):
        monkeypatch.setattr("repro.population.study.os.cpu_count", lambda: 1)
        recorder = Recorder()
        run_study(user_count=10, iterations=3,
                  vectors=("dc", "fft", "hybrid"), seed=7,
                  cache=RenderCache(), recorder=recorder, workers=None)
        # enough group jobs to pool, but auto resolved to 1 worker
        assert recorder.counters.get("pool.fanout_skipped") == 1

    def test_clamp_never_changes_the_dataset(self, monkeypatch):
        plain, _ = self._tiny(monkeypatch, cores=8, workers=0)
        clamped, _ = self._tiny(monkeypatch, cores=1, workers=8)
        assert clamped == plain


class TestStaleCachePruning:
    CUR = f"e{ENGINE_VERSION}"

    def test_stale_version_predicate(self):
        assert _stale_version("dc|e999|blink|ucrt|radix2|blink|44100|1|-")
        assert not _stale_version(f"dc|{self.CUR}|blink|ucrt|radix2|blink|44100|1|-")
        assert not _stale_version("k1")          # ad-hoc keys are never stale
        assert not _stale_version("a|b|c")       # no version component
        assert not _stale_version("dc|e12x|rest")  # malformed != stale

    def _file_with(self, tmp_path, entries):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"format": 1, "entries": entries}))
        return str(path)

    def test_stale_entries_pruned_on_load(self, tmp_path):
        current = f"dc|{self.CUR}|blink|ucrt|radix2|blink|44100|1|-"
        stale = "dc|e999|blink|ucrt|radix2|blink|44100|1|-"
        path = self._file_with(tmp_path, {current: "a", stale: "b", "k1": "c"})
        cache = RenderCache(disk_path=path)
        assert cache.get(current) == "a"
        assert cache.get("k1") == "c"
        assert cache.get(stale) is None
        assert cache.stale_prunes == 1
        assert cache.disk_loads == 2
        assert cache.stats()["stale_prunes"] == 1

    def test_next_persist_drops_pruned_entries(self, tmp_path):
        stale = "fft|e999|gecko|glibc|splitradix|gecko|48000|1|-"
        path = self._file_with(tmp_path, {stale: "dead", "k1": "alive"})
        cache = RenderCache(disk_path=path)
        cache.persist()
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["entries"] == {"k1": "alive"}

    def test_reset_stats_clears_prune_counter(self, tmp_path):
        stale = "dc|e999|blink|ucrt|radix2|blink|44100|1|-"
        cache = RenderCache(disk_path=self._file_with(tmp_path, {stale: "x"}))
        assert cache.stale_prunes == 1
        cache.reset_stats()
        assert cache.stale_prunes == 0
