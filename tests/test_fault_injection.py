"""Chaos coverage for the supervised study: injected worker crashes,
hangs, and corrupted returns must be recovered bit-identically at any
worker count, surface in the run report's retry/degraded sections, and —
when unrecoverable — turn into StudyExecutionError naming the
quarantined classes instead of a hang or BrokenProcessPool."""
import json

import pytest

from repro import (FaultPlan, Recorder, RenderCache, StudyExecutionError,
                   run_study)
from repro.obs import validate_report
from repro.resilience import CORRUPT_EFP, Fault, RetryPolicy
from repro.resilience.faults import ENV_VAR

STUDY = dict(user_count=6, iterations=4, vectors=("dc", "fft", "hybrid"),
             seed=11)

#: fast supervision knobs for chaos runs
POLICY = RetryPolicy(base_delay_s=0.005, max_delay_s=0.05,
                     job_deadline_s=30.0)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


@pytest.fixture(scope="module")
def clean():
    """The fault-free reference: dataset bytes + the class keys it
    rendered (computed with the fault env guaranteed unset)."""
    mp = pytest.MonkeyPatch()
    mp.delenv(ENV_VAR, raising=False)
    try:
        cache = RenderCache()
        dataset = run_study(workers=0, cache=cache, **STUDY)
    finally:
        mp.undo()
    return dataset, sorted(cache._store)


def _install(monkeypatch, tmp_path, faults, seed=99):
    plan = FaultPlan(seed=seed, faults=tuple(faults))
    path = plan.save(str(tmp_path / "plan.json"))
    monkeypatch.setenv(ENV_VAR, path)
    return plan


def _dataset_bytes(dataset, tmp_path, name):
    path = tmp_path / name
    dataset.save(str(path))
    return path.read_bytes()


class TestRecoveryDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_crash_and_corrupt_recovery_is_byte_identical(
            self, clean, monkeypatch, tmp_path, workers):
        """The acceptance invariant: with a worker crash and a corrupted
        return injected (once each, on real class keys), the recovered
        dataset's JSON is byte-identical to the fault-free run's — at
        workers 1, 2 and 4."""
        clean_dataset, keys = clean
        _install(monkeypatch, tmp_path, [
            Fault(kind="crash", keys=(keys[0],), times=1),
            Fault(kind="corrupt", keys=(keys[-1],), times=1),
        ])
        recorder = Recorder()
        dataset = run_study(workers=workers, recorder=recorder,
                            retry_policy=POLICY, **STUDY)
        assert _dataset_bytes(dataset, tmp_path, "chaos.json") == \
            _dataset_bytes(clean_dataset, tmp_path, "clean.json")
        # the faults really fired and were really recovered
        assert recorder.counters["retry.crashes"] >= 1
        if workers == 1:
            # inline execution charges the corrupted return deterministically;
            # in pooled runs the crash may break the pool under the job that
            # claimed the corrupt fault, charging it as a crash instead
            assert recorder.counters["retry.corrupt_returns"] == 1
        assert recorder.counters.get("retry.quarantined", 0) == 0
        assert CORRUPT_EFP not in {
            efp for per_user in dataset.series.values()
            for series in per_user.values() for efp in series}

    def test_hang_recovery_pooled(self, clean, monkeypatch, tmp_path):
        """A render sleeping past the supervisor's deadline: the pool is
        torn down, the job retried, the dataset unchanged."""
        clean_dataset, keys = clean
        _install(monkeypatch, tmp_path, [
            Fault(kind="hang", keys=(keys[2],), seconds=30.0, times=1),
        ])
        recorder = Recorder()
        dataset = run_study(
            workers=2, recorder=recorder,
            retry_policy=RetryPolicy(job_deadline_s=1.5, base_delay_s=0.005),
            **STUDY)
        assert dataset == clean_dataset
        assert recorder.counters["retry.timeouts"] >= 1
        assert recorder.counters["degraded.pool_rebuilds"] >= 1

    def test_corrupt_recovery_inline(self, clean, monkeypatch, tmp_path):
        clean_dataset, keys = clean
        _install(monkeypatch, tmp_path, [
            Fault(kind="corrupt", keys=(keys[1],), times=1),
        ])
        recorder = Recorder()
        dataset = run_study(workers=0, recorder=recorder,
                            retry_policy=POLICY, **STUDY)
        assert dataset == clean_dataset
        assert recorder.counters["retry.corrupt_returns"] == 1


class TestUnrecoverable:
    def test_permanent_poison_is_quarantined_with_structured_error(
            self, clean, monkeypatch, tmp_path):
        """A class that corrupts its return on EVERY attempt: bisection
        corners it, then StudyExecutionError names exactly that class."""
        _, keys = clean
        poison = keys[3]
        _install(monkeypatch, tmp_path, [
            Fault(kind="corrupt", keys=(poison,), times=None),
        ])
        with pytest.raises(StudyExecutionError) as err:
            run_study(workers=0,
                      retry_policy=RetryPolicy(max_attempts=2, bisect_after=1,
                                               base_delay_s=0.005),
                      **STUDY)
        assert err.value.quarantined == [poison]
        assert poison in str(err.value)

    def test_budget_exhaustion_raises_not_hangs(self, clean, monkeypatch,
                                                tmp_path):
        _, keys = clean
        _install(monkeypatch, tmp_path, [
            Fault(kind="corrupt", keys=(keys[0],), times=None),
        ])
        with pytest.raises(StudyExecutionError) as err:
            run_study(workers=0, retry_policy=POLICY, retry_budget=0, **STUDY)
        assert err.value.budget_exhausted
        assert keys[0] in err.value.quarantined


class TestChaosReport:
    def test_report_sections_survive_schema_check(self, clean, monkeypatch,
                                                  tmp_path):
        _, keys = clean
        _install(monkeypatch, tmp_path, [
            Fault(kind="crash", keys=(keys[0],), times=1),
        ])
        report_path = tmp_path / "chaos-report.json"
        run_study(workers=2, report_path=str(report_path),
                  retry_policy=POLICY, **STUDY)
        report = json.loads(report_path.read_text())
        assert validate_report(report) == []
        assert report["retry"]["crashes"] >= 1
        assert report["retry"]["retries"] >= 1
        assert report["degraded"]["pool_rebuilds"] >= 1
        assert report["retry"]["budget"]["limit"] > 0

    def test_fault_free_report_sections_are_quiet(self, tmp_path):
        report_path = tmp_path / "report.json"
        run_study(user_count=3, iterations=2, vectors=("dc", "fft"), seed=5,
                  workers=0, report_path=str(report_path))
        report = json.loads(report_path.read_text())
        assert validate_report(report) == []
        retry = report["retry"]
        assert retry["attempts"] == report["pool"]["jobs"]
        assert retry["retries"] == retry["crashes"] == retry["timeouts"] == 0
        assert retry["quarantined"] == []
        assert report["degraded"] == {"pool_rebuilds": 0,
                                      "inline_fallback": False}
        assert report["checkpoint"]["enabled"] is False

    def test_validator_rejects_section_counter_drift(self, tmp_path):
        report_path = tmp_path / "report.json"
        run_study(user_count=3, iterations=2, vectors=("dc",), seed=5,
                  workers=0, report_path=str(report_path))
        report = json.loads(report_path.read_text())
        report["retry"]["attempts"] += 1
        assert any("retry.attempts" in p for p in validate_report(report))
        report = json.loads(report_path.read_text())
        del report["retry"]
        report["retry"] = None
        assert any("retry section missing" in p
                   for p in validate_report(report))


class TestStudyInputValidation:
    """Satellite: run_study must reject bad user_count/workers up front."""

    @pytest.mark.parametrize("user_count", [0, -3, 2.5, True])
    def test_rejects_bad_user_count(self, user_count):
        with pytest.raises(ValueError, match="user_count"):
            run_study(user_count=user_count, iterations=1, vectors=("dc",))

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="workers"):
            run_study(user_count=1, iterations=1, vectors=("dc",), workers=-1)

    def test_rejects_bad_checkpoint_cadence(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            run_study(user_count=1, iterations=1, vectors=("dc",),
                      checkpoint_every=0)
