"""The study event log: crash-safe JSONL emission, torn-tail repair,
deterministic sequences, worker-event shipping, heartbeat, and the
chaos-run fault accounting invariant."""
import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import FaultPlan, RenderCache, run_study
from repro.obs import (EVENT_KINDS, EVENT_SCHEMA, EventLog, NullRecorder,
                       Recorder, canonical_events, make_event,
                       normalize_events, read_events)
from repro.obs.progress import ProgressMeter
from repro.resilience import Fault, RetryPolicy
from repro.resilience.faults import ENV_VAR

STUDY = dict(user_count=6, iterations=3, vectors=("dc", "fft", "hybrid"),
             seed=11)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


class TestEventRecords:
    def test_make_event_stamps_identity(self):
        event = make_event("study.start", users=5)
        assert event["schema"] == EVENT_SCHEMA
        assert event["kind"] == "study.start"
        assert event["pid"] == os.getpid()
        assert event["users"] == 5
        assert "seq" not in event  # the recorder assigns seq on append

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            make_event("study.explode")

    def test_payload_may_not_shadow_reserved_fields(self):
        with pytest.raises(ValueError, match="reserved"):
            make_event("study.start", pid=1)

    def test_recorder_assigns_contiguous_seq(self):
        recorder = Recorder()
        recorder.event("study.start")
        recorder.event("phase.start", phase="plan")
        recorder.event("study.end")
        assert [e["seq"] for e in recorder.events] == [0, 1, 2]

    def test_null_recorder_event_is_a_noop(self):
        null = NullRecorder()
        null.event("study.start")
        null.merge_event({"kind": "study.end"})
        assert null.snapshot()["events"] == []


class TestEventLogFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            recorder = Recorder()
            recorder.attach_event_log(log)
            recorder.event("study.start", users=2)
            recorder.event("study.end")
        events, problems = read_events(path)
        assert problems == []
        assert [e["kind"] for e in events] == ["study.start", "study.end"]
        assert events[0]["users"] == 2

    def test_every_emit_is_flushed(self, tmp_path):
        """Crash safety hinges on each line being flushed as it is
        written — the file must be complete *before* close()."""
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        log.emit(make_event("study.start"))
        events, _ = read_events(path)  # read while the log is still open
        assert len(events) == 1
        log.close()

    def test_torn_tail_tolerated_by_reader(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            log.emit(make_event("study.start"))
            log.emit(make_event("study.end"))
        with open(path, "ab") as fh:
            fh.write(b'{"schema": 1, "kind": "cache.mi')  # cut mid-write
        events, problems = read_events(path)
        assert len(events) == 2
        assert len(problems) == 1 and "torn tail" in problems[0]

    def test_open_quarantines_torn_tail(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path) as log:
            log.emit(make_event("study.start"))
        with open(path, "ab") as fh:
            fh.write(b'{"half": ')
        log = EventLog(path)  # reopening repairs before appending
        assert log.torn_tail_repaired
        log.emit(make_event("study.end"))
        log.close()
        events, problems = read_events(path)
        assert problems == []
        assert [e["kind"] for e in events] == ["study.start", "study.end"]
        with open(path + ".corrupt", "rb") as fh:
            assert fh.read() == b'{"half": '

    def test_midfile_corruption_is_a_hard_problem(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        lines = [json.dumps(make_event("study.start")), "not json",
                 json.dumps(make_event("study.end"))]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        events, problems = read_events(path)
        assert len(events) == 2
        assert any("corrupt event at line 2" in p for p in problems)

    def test_unknown_kind_and_foreign_schema_are_problems(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"schema": EVENT_SCHEMA,
                                 "kind": "study.explode"}) + "\n")
            fh.write(json.dumps({"schema": 99,
                                 "kind": "study.start"}) + "\n")
        events, problems = read_events(path)
        assert events == []
        assert any("unknown kind" in p for p in problems)
        assert any("schema" in p for p in problems)


class TestStudyEventStream:
    def test_study_emits_lifecycle_and_sidecar_matches_report(self, tmp_path):
        events_path = str(tmp_path / "events.jsonl")
        report_path = str(tmp_path / "report.json")
        run_study(cache=RenderCache(), workers=0, report_path=report_path,
                  event_log_path=events_path, **STUDY)
        events, problems = read_events(events_path)
        assert problems == []
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "study.start"
        assert kinds[-1] == "study.end"
        for phase in ("plan", "render", "assemble"):
            assert {"kind": "phase.start", "phase": phase}.items() <= \
                next(e for e in events if e["kind"] == "phase.start"
                     and e.get("phase") == phase).items()
        assert "cache.miss" in kinds and "render.batch" in kinds
        assert [e["seq"] for e in events] == list(range(len(events)))
        report = json.load(open(report_path))
        assert report["events"]["count"] == len(events)
        assert report["events"]["path"] == events_path
        tally = {}
        for kind in kinds:
            tally[kind] = tally.get(kind, 0) + 1
        assert report["events"]["kinds"] == tally

    def test_inline_runs_are_byte_identical_after_normalization(self, tmp_path):
        logs = []
        for name in ("a", "b"):
            path = str(tmp_path / f"{name}.jsonl")
            run_study(cache=RenderCache(), workers=0, event_log_path=path,
                      **STUDY)
            events, problems = read_events(path)
            assert problems == []
            logs.append(json.dumps(normalize_events(events), sort_keys=True))
        assert logs[0] == logs[1]

    def test_pooled_runs_agree_on_the_canonical_form(self, tmp_path):
        logs = []
        for name in ("a", "b"):
            path = str(tmp_path / f"{name}.jsonl")
            run_study(cache=RenderCache(), workers=2, event_log_path=path,
                      **STUDY)
            events, problems = read_events(path)
            assert problems == []
            logs.append(json.dumps(canonical_events(events), sort_keys=True))
        assert logs[0] == logs[1]

    def test_worker_events_keep_the_worker_pid(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        run_study(cache=RenderCache(), workers=2, event_log_path=path, **STUDY)
        events, _ = read_events(path)
        batches = [e for e in events if e["kind"] == "render.batch"]
        assert batches, "pooled run must ship render.batch events home"
        parent = next(e["pid"] for e in events if e["kind"] == "study.start")
        assert any(e["pid"] != parent for e in batches)
        # merged worker events still get parent-local contiguous seq
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_event_log_implies_a_recorder(self, tmp_path):
        """event_log_path alone (no report, no recorder) must activate
        instrumentation — an empty sidecar would be a silent lie."""
        path = str(tmp_path / "events.jsonl")
        run_study(cache=RenderCache(), workers=0, event_log_path=path, **STUDY)
        events, _ = read_events(path)
        assert len(events) > 0

    def test_checkpoint_and_resume_events(self, tmp_path):
        events_path = str(tmp_path / "events.jsonl")
        ckpt = str(tmp_path / "ckpt.json")
        run_study(cache=RenderCache(), workers=0, checkpoint_path=ckpt,
                  checkpoint_every=2, event_log_path=events_path, **STUDY)
        events, _ = read_events(events_path)
        assert any(e["kind"] == "checkpoint.write" for e in events)
        # second run resumes: same log appends a checkpoint.resume event
        run_study(cache=RenderCache(), workers=0, checkpoint_path=ckpt,
                  checkpoint_every=2, event_log_path=events_path, **STUDY)
        events, problems = read_events(events_path)
        assert problems == []
        resumes = [e for e in events if e["kind"] == "checkpoint.resume"]
        assert len(resumes) == 1 and resumes[0]["classes"] > 0


class TestSigkillSurvival:
    def test_sigkill_mid_run_leaves_a_readable_log(self, tmp_path):
        """Kill -9 a study mid-render: every flushed line must survive;
        at most the final line is torn, and reopening quarantines it."""
        events_path = str(tmp_path / "events.jsonl")
        code = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro import RenderCache, run_study\n"
            "run_study(40, iterations=8, cache=RenderCache(), workers=0,\n"
            "          event_log_path=%r)\n"
            % (os.path.join(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), "src"), events_path)
        )
        proc = subprocess.Popen([sys.executable, "-c", code])
        deadline = time.time() + 30.0
        while time.time() < deadline:
            if os.path.exists(events_path) \
                    and os.path.getsize(events_path) > 200:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.01)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        events, problems = read_events(events_path)
        assert len(events) > 0
        assert all("torn tail" in p for p in problems)  # at most a torn tail
        log = EventLog(events_path)  # reopen repairs whatever was torn
        log.close()
        _events, problems = read_events(events_path)
        assert problems == []


class TestChaosFaultAccounting:
    def test_event_sequence_accounts_for_every_injected_fault(
            self, monkeypatch, tmp_path):
        """Every fault the FaultPlan ledger proves fired must be visible
        in the event sequence: crash/corrupt failures as job.failed (with
        matching job.retry recoveries), torn checkpoint writes as
        checkpoint.torn_write."""
        events_path = str(tmp_path / "events.jsonl")
        probe_cache = RenderCache()
        run_study(cache=probe_cache, workers=0, **STUDY)
        keys = sorted(probe_cache._store)
        plan = FaultPlan(seed=7, faults=(
            Fault(kind="crash", keys=(keys[0],), times=1),
            Fault(kind="corrupt", keys=(keys[-1],), times=1),
            Fault(kind="torn_checkpoint", times=1),
        ))
        plan_path = plan.save(str(tmp_path / "plan.json"))
        monkeypatch.setenv(ENV_VAR, plan_path)
        run_study(cache=RenderCache(), workers=0,
                  checkpoint_path=str(tmp_path / "ckpt.json"),
                  checkpoint_every=2, event_log_path=events_path,
                  retry_policy=RetryPolicy(base_delay_s=0.005,
                                           max_delay_s=0.05),
                  **STUDY)
        fired = len(os.listdir(plan.ledger_dir))
        assert fired == 3, "all three injected faults must have fired"
        events, problems = read_events(events_path)
        assert problems == []
        kinds = [e["kind"] for e in events]
        failures = [e for e in events if e["kind"] == "job.failed"]
        assert len(failures) == 2  # one crash + one corrupt return
        assert {e["failure"] for e in failures} == {"crash", "corrupt"}
        assert kinds.count("job.retry") >= 2  # both recovered
        assert kinds.count("checkpoint.torn_write") == 1


class TestProgressMeter:
    def test_heartbeat_lines_carry_the_vitals(self):
        stream = io.StringIO()
        clock = iter([0.0, 1.0, 2.0, 3.0]).__next__
        meter = ProgressMeter(total_jobs=4, total_classes=8, stream=stream,
                              interval_s=0.5, clock=clock)
        meter.update(2, 4, retries=1, hit_rate=0.25)
        meter.finish(8, retries=1, hit_rate=0.25)
        out = stream.getvalue()
        assert "classes 4/8" in out
        assert "renders/s" in out
        assert "cache 25.0% hit" in out
        assert "retries 1" in out
        assert "eta" in out
        assert "done in" in out

    def test_throttled_between_intervals_but_final_job_always_prints(self):
        stream = io.StringIO()
        ticks = iter([0.0] + [0.01 * i for i in range(1, 50)]).__next__
        meter = ProgressMeter(total_jobs=10, total_classes=10, stream=stream,
                              interval_s=10.0, clock=ticks)
        for done in range(1, 10):
            meter.update(done, done)
        assert meter.lines_written == 1  # first sample emits, rest throttled
        meter.update(10, 10)
        assert meter.lines_written == 2  # the final job always emits

    def test_study_heartbeat_writes_to_the_given_stream(self, tmp_path):
        stream = io.StringIO()
        run_study(cache=RenderCache(), workers=0, progress=stream, **STUDY)
        out = stream.getvalue()
        assert "[repro.study]" in out and "done in" in out

    def test_progress_off_touches_no_stream(self, tmp_path, capsys):
        run_study(cache=RenderCache(), workers=0, **STUDY)
        captured = capsys.readouterr()
        assert "[repro.study]" not in captured.err
