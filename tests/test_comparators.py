"""Comparator stacks and the extended population sampler.

The comparator identities (UA, canvas, fonts) ride the same per-user
seeded rng streams as the audio stack pick, drawn strictly *after* the
original stack/load draws — so pre-existing audio devices (and every
cached audio eFP) stay bit-identical, slicing stays exact, and the
comparator marginals correlate with OS/browser the way the models say.
"""
import json

import numpy as np
import pytest

from repro.platform import REFERENCE_PATH
from repro.platform.browsers import (BROWSER_VERSIONS, OS_BUILDS,
                                     pick_weighted, sample_ua)
from repro.platform.canvas_stack import GPU_POOLS, sample_canvas
from repro.platform.font_stack import BASE_FONTS, FONT_PACKS, sample_fonts
from repro.population.sampler import (sample_population,
                                      sample_population_slice)
from repro.vectors import COMPARATOR_VECTORS, get_vector


class TestWeightedDraws:
    def test_pick_weighted_is_deterministic_and_exhaustive(self):
        table = (("a", 0.7), ("b", 0.2), ("c", 0.1))
        rng = np.random.default_rng(3)
        picks = [pick_weighted(rng, table) for _ in range(400)]
        assert set(picks) == {"a", "b", "c"}
        counts = {k: picks.count(k) for k in "abc"}
        assert counts["a"] > counts["b"] > counts["c"]

    def test_sample_ua_uses_exactly_two_draws(self):
        """The frozen draw-order contract: UA consumes 2 uniforms."""
        rng1 = np.random.default_rng(9)
        rng2 = np.random.default_rng(9)
        sample_ua(rng1, "Windows", "Chrome")
        rng2.random(), rng2.random()
        assert rng1.random() == rng2.random()

    def test_sample_canvas_uses_exactly_four_draws(self):
        rng1 = np.random.default_rng(10)
        rng2 = np.random.default_rng(10)
        sample_canvas(rng1, "macOS", "Safari")
        for _ in range(4):
            rng2.random()
        assert rng1.random() == rng2.random()

    def test_sample_fonts_uses_one_draw_per_pack(self):
        """One uniform per pack regardless of install outcome, so the
        stream position never depends on earlier pack results."""
        rng1 = np.random.default_rng(11)
        rng2 = np.random.default_rng(11)
        sample_fonts(rng1, "Linux", "Firefox")
        for _ in range(len(FONT_PACKS)):
            rng2.random()
        assert rng1.random() == rng2.random()


class TestComparatorModels:
    def test_ua_correlates_with_os_and_browser(self):
        rng = np.random.default_rng(1)
        ua = sample_ua(rng, "Windows", "Firefox")
        assert ua.os == "Windows" and ua.browser == "Firefox"
        assert ua.os_build in [b for b, _ in OS_BUILDS["Windows"]]
        assert ua.browser_version in [v for v, _ in
                                      BROWSER_VERSIONS["Firefox"]]
        assert "Firefox" in ua.ua_string()
        assert "Windows NT" in ua.ua_string()

    def test_canvas_gpu_pool_follows_os(self):
        rng = np.random.default_rng(2)
        for os_name in GPU_POOLS:
            canvas = sample_canvas(rng, os_name, "Chrome")
            assert canvas.os == os_name
            assert canvas.gpu in [g for g, _ in GPU_POOLS[os_name]]

    def test_fonts_superset_of_base_and_sorted(self):
        rng = np.random.default_rng(4)
        stack = sample_fonts(rng, "macOS", "Safari")
        assert set(BASE_FONTS["macOS"]) <= set(stack.fonts)
        assert list(stack.fonts) == sorted(stack.fonts)

    def test_cache_keys_are_namespaced(self):
        rng = np.random.default_rng(6)
        assert sample_ua(rng, "Linux", "Chrome").cache_key() \
            .startswith("ua|")
        assert sample_canvas(rng, "Linux", "Chrome").cache_key() \
            .startswith("canvas|")
        assert sample_fonts(rng, "Linux", "Chrome").cache_key() \
            .startswith("fonts|")


class TestSamplerIntegration:
    def test_slice_stays_exact_with_comparator_fields(self):
        full = sample_population(40, seed=123)
        part = sample_population_slice(40, 123, 15, 30)
        assert [d.describe() for d in part] \
            == [d.describe() for d in full[15:30]]

    def test_describe_round_trips_exact_load(self):
        """The satellite bugfix: describe() must emit the exact float
        (round(load, 6) silently broke describe/rebuild round-trips)."""
        devices = sample_population(20, seed=77)
        for device in devices:
            desc = device.describe()
            assert desc["load"] == device.load  # bit-exact, not rounded
            # and JSON round-trips it losslessly (repr-based float encoding)
            assert json.loads(json.dumps(desc))["load"] == device.load
        assert any(round(d.load, 6) != d.load for d in devices), \
            "population too small to witness the rounding bug"

    def test_describe_carries_comparator_keys(self):
        device = sample_population(3, seed=1)[0]
        desc = device.describe()
        assert desc["ua_key"] == device.ua.cache_key()
        assert desc["canvas_key"] == device.canvas.cache_key()
        assert desc["fonts_key"] == device.fonts.cache_key()

    def test_comparator_distributions_permutation_invariant(self):
        """Rendering the comparators over a reshuffled population yields
        the same eFP multiset — identity depends on the device alone."""
        devices = sample_population(60, seed=8)
        shuffled = list(devices)
        np.random.default_rng(0).shuffle(shuffled)
        for name in COMPARATOR_VECTORS:
            vector = get_vector(name)

            def multiset(devs):
                return sorted(
                    vector.render(vector.stack_of(d),
                                  vector.canonical_path(REFERENCE_PATH))
                    for d in devs)

            assert multiset(devices) == multiset(shuffled)

    def test_comparator_stacks_pickle_for_pool_workers(self):
        import pickle
        device = sample_population(2, seed=3)[1]
        for name in COMPARATOR_VECTORS:
            stack = get_vector(name).stack_of(device)
            clone = pickle.loads(pickle.dumps(stack))
            assert clone == stack and clone.cache_key() == stack.cache_key()

    def test_ua_stacks_are_frozen(self):
        device = sample_population(1, seed=2)[0]
        with pytest.raises(AttributeError):
            device.ua.browser = "Edge"
