"""The tentpole's pinned invariant: the service's incremental collation
is *byte-identical* to the batch ``repro.analysis.collation`` on the
same stream — same dense collated ids, same eFP component labels, same
JSON bytes — plus order-independence of the partition and canonical
state round-trips."""
import json

import numpy as np
import pytest

from repro import run_study
from repro.analysis.collation import collate_vector
from repro.service import (IncrementalCollator, ServiceState,
                           visits_from_dataset)

STUDY = dict(user_count=25, iterations=8, vectors=("dc", "fft", "hybrid"),
             seed=11)


@pytest.fixture(scope="module")
def dataset():
    return run_study(workers=0, **STUDY)


def _stream_canonically(dataset, vector) -> IncrementalCollator:
    collator = IncrementalCollator(vector)
    for uid, series in dataset.iter_user_series(vector):
        for efp in series:
            collator.observe(uid, efp)
    return collator


class TestBatchEquivalence:
    @pytest.mark.parametrize("vector", STUDY["vectors"])
    def test_user_assignment_is_byte_identical_to_batch(self, dataset,
                                                        vector):
        """THE acceptance pin: stream a dataset's visits in canonical
        order and the final collated-id assignment, JSON-dumped, is
        byte-for-byte the batch collation's."""
        incremental = _stream_canonically(dataset, vector)
        batch = collate_vector(dataset, vector)
        online = json.dumps(incremental.user_component_ids(),
                            sort_keys=True).encode()
        offline = json.dumps(
            {u: int(c) for u, c in batch.user_component_ids().items()},
            sort_keys=True).encode()
        assert online == offline

    @pytest.mark.parametrize("vector", STUDY["vectors"])
    def test_efp_components_match_batch(self, dataset, vector):
        """Interning in arrival order reproduces the batch ``intern()``
        id space exactly, so per-eFP component labels line up too."""
        incremental = _stream_canonically(dataset, vector)
        batch = collate_vector(dataset, vector)
        assert incremental.efp_component_ids() \
            == [int(c) for c in batch.efp_components]

    def test_anonymity_sets_match_batch_component_sizes(self, dataset):
        """``anonymity_set_size`` (the service's lookup answer) equals
        the number of users sharing the user's batch component."""
        vector = "dc"
        incremental = _stream_canonically(dataset, vector)
        batch_ids = collate_vector(dataset, vector).user_component_ids()
        sizes = np.bincount(np.array(list(batch_ids.values())))
        for user, component in batch_ids.items():
            assert incremental.anonymity_set_size(user) \
                == int(sizes[component])


class TestOrderIndependence:
    def test_interleaved_arrival_yields_identical_assignment(self, dataset):
        """Iteration-major arrival (all users' visit 0, then visit 1, …)
        lands on the identical dense assignment: min-root
        canonicalization makes the partition order-independent, and
        because every user's component contains that user's visit-0 eFP,
        the components' first-appearance ranks (hence dense labels)
        agree between the two orders."""
        canonical = ServiceState(dataset.vectors)
        interleaved = ServiceState(dataset.vectors)
        for visit in visits_from_dataset(dataset, seed=3):
            canonical.apply(visit.to_record())
        for visit in visits_from_dataset(dataset, seed=3, interleave=True):
            interleaved.apply(visit.to_record())
        for vector in dataset.vectors:
            assert canonical.collators[vector].user_component_ids() \
                == interleaved.collators[vector].user_component_ids()


class TestCanonicalState:
    def test_state_round_trips_byte_identically(self, dataset):
        state = ServiceState(dataset.vectors)
        for visit in visits_from_dataset(dataset, seed=3,
                                         spoof_fraction=0.2,
                                         bot_fraction=0.2):
            state.apply(visit.to_record())
        rebuilt = ServiceState.from_state(json.loads(state.canonical_bytes()))
        assert rebuilt.canonical_bytes() == state.canonical_bytes()

    def test_serialization_is_find_history_independent(self, dataset):
        """Path halving mutates parent pointers on lookup; canonical
        serialization resolves them away, so a heavily-queried collator
        serializes identically to an untouched clone."""
        queried = _stream_canonically(dataset, "dc")
        untouched = _stream_canonically(dataset, "dc")
        for user in queried.users():  # churn the find history
            queried.identity(user)
            queried.anonymity_set_size(user)
        assert queried.state_dict() == untouched.state_dict()

    def test_duplicate_visit_does_not_mutate_state(self, dataset):
        state = ServiceState(dataset.vectors)
        visits = visits_from_dataset(dataset, seed=3)
        for visit in visits:
            state.apply(visit.to_record())
        before = state.canonical_bytes()
        identities, anonymity, detections, duplicate = \
            state.apply(visits[0].to_record())
        assert duplicate
        assert detections == ()
        assert identities  # the duplicate is still answered
        assert state.canonical_bytes() == before
