"""repro.obs unit coverage: spans, counters, histograms, merge protocol,
node profiler scoping, and the null object's contract."""
import json

import pytest

from repro.obs import (Histogram, NULL_RECORDER, NullRecorder, Recorder,
                       current_node_profiler, profile_nodes)


class TestSpans:
    def test_span_records_duration_and_name(self):
        rec = Recorder()
        with rec.span("plan") as span:
            pass
        assert span.duration_s >= 0.0
        assert [s["name"] for s in rec.spans] == ["plan"]
        assert rec.spans[0]["parent"] is None
        assert rec.spans[0]["duration_s"] >= 0.0

    def test_nested_spans_carry_parent_ids(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        by_name = {s["name"]: s for s in rec.spans}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        # inner closes first, but ids follow open order
        assert by_name["inner"]["id"] > by_name["outer"]["id"]

    def test_span_attrs_and_set(self):
        rec = Recorder()
        with rec.span("render", jobs=3) as span:
            span.set(pooled=False)
        assert rec.spans[0]["attrs"] == {"jobs": 3, "pooled": False}

    def test_span_closed_on_exception(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError
        assert rec.spans[0]["name"] == "boom"
        assert rec._open_spans == []

    def test_monotonic_start_offsets(self):
        rec = Recorder()
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        a, b = (s for s in rec.spans)
        assert b["start_s"] >= a["start_s"] >= 0.0


class TestCountersAndHistograms:
    def test_counters_accumulate(self):
        rec = Recorder()
        rec.count("renders")
        rec.count("renders", 4)
        assert rec.counters["renders"] == 5

    def test_histogram_summary_stats(self):
        hist = Histogram()
        for value in (0.001, 0.002, 0.004):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 0.001
        assert hist.max == 0.004
        assert hist.mean == pytest.approx(0.007 / 3)
        assert sum(hist.buckets.values()) == 3

    def test_bucket_bounds_cover_value(self):
        for value in (1e-9, 1e-6, 3e-6, 0.01, 1.0, 500.0):
            index = Histogram.bucket_index(value)
            assert value <= Histogram.bucket_upper_bound(index)
            if index > 0:
                assert value > Histogram.bucket_upper_bound(index - 1)

    def test_quantiles_bracket_the_data(self):
        hist = Histogram()
        for value in (0.001,) * 9 + (1.0,):
            hist.observe(value)
        assert hist.approx_quantile(0.5) <= 0.01
        assert hist.approx_quantile(0.99) == 1.0
        assert hist.approx_quantile(0.0) == 0.001

    def test_round_trip_and_merge(self):
        a, b = Histogram(), Histogram()
        for value in (0.001, 0.002):
            a.observe(value)
        for value in (0.004, 0.2):
            b.observe(value)
        merged = Histogram.from_dict(a.to_dict())
        merged.merge(b.to_dict())
        assert merged.count == 4
        assert merged.total == pytest.approx(0.207)
        assert merged.min == 0.001
        assert merged.max == 0.2


class TestMergeProtocol:
    def test_snapshot_is_json_serializable(self):
        rec = Recorder()
        with rec.span("plan"):
            rec.count("n")
            rec.observe("lat", 0.002)
            rec.record_node_profile("stack-a", {"Oscillator": 0.1},
                                    {"Oscillator": 40})
        payload = json.loads(json.dumps(rec.snapshot()))
        assert payload["counters"] == {"n": 1}
        assert payload["node_profile"]["stack-a"]["Oscillator"]["calls"] == 40

    def test_merge_snapshot_sums_everything(self):
        worker = Recorder()
        worker.count("renders", 2)
        worker.observe("lat", 0.001)
        worker.record_node_profile("s", {"Gain": 0.5}, {"Gain": 10})

        parent = Recorder()
        parent.count("renders", 3)
        parent.observe("lat", 0.004)
        parent.record_node_profile("s", {"Gain": 0.25}, {"Gain": 5})
        parent.merge_snapshot(worker.snapshot())

        assert parent.counters["renders"] == 5
        assert parent.histograms["lat"].count == 2
        assert parent.node_profile["s"]["Gain"] == {"seconds": 0.75, "calls": 15}

    def test_node_profile_without_calls_defaults_to_one(self):
        rec = Recorder()
        rec.record_node_profile("s", {"Gain": 0.5})
        assert rec.node_profile["s"]["Gain"]["calls"] == 1


class TestNodeProfiler:
    def test_scoped_activation(self):
        assert current_node_profiler() is None
        with profile_nodes() as prof:
            assert current_node_profiler() is prof
            prof.add("Oscillator", 0.25)
            prof.add("Oscillator", 0.25)
        assert current_node_profiler() is None
        assert prof.seconds == {"Oscillator": 0.5}
        assert prof.calls == {"Oscillator": 2}

    def test_nested_scopes_restore_outer(self):
        with profile_nodes() as outer:
            with profile_nodes() as inner:
                assert current_node_profiler() is inner
            assert current_node_profiler() is outer


class TestNullRecorder:
    def test_null_is_disabled_and_inert(self):
        rec = NULL_RECORDER
        assert isinstance(rec, NullRecorder)
        assert rec.enabled is False
        with rec.span("anything", attr=1) as span:
            span.set(more=2)
        rec.count("n")
        rec.observe("lat", 1.0)
        rec.record_node_profile("s", {"Gain": 1.0})
        rec.merge_snapshot({"counters": {"n": 5}})
        snap = rec.snapshot()
        assert snap["enabled"] is False
        assert snap["counters"] == {} and snap["spans"] == []

    def test_null_span_handle_is_shared(self):
        # the fast-path guarantee: repeated span() calls allocate nothing
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")


class TestHistogramProperties:
    """Property tests over seeded random observation sets: the merge
    algebra the pool protocol relies on, and quantile sanity."""

    @staticmethod
    def _hist(values):
        hist = Histogram()
        for value in values:
            hist.observe(value)
        return hist

    @staticmethod
    def _samples(seed, n):
        import random
        rng = random.Random(seed)
        return [rng.lognormvariate(mu=-8.0, sigma=2.5) for _ in range(n)]

    @staticmethod
    def _same(a: Histogram, b: Histogram):
        assert a.count == b.count
        assert a.buckets == b.buckets
        assert a.min == b.min and a.max == b.max
        assert a.total == pytest.approx(b.total, rel=1e-12)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_merge_is_commutative(self, seed):
        xs = self._samples(seed, 300)
        ys = self._samples(seed + 100, 200)
        ab = self._hist(xs)
        ab.merge(self._hist(ys))
        ba = self._hist(ys)
        ba.merge(self._hist(xs))
        self._same(ab, ba)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_merge_is_associative(self, seed):
        parts = [self._samples(seed * 10 + i, 150) for i in range(3)]
        left = self._hist(parts[0])
        left.merge(self._hist(parts[1]))
        left.merge(self._hist(parts[2]))
        inner = self._hist(parts[1])
        inner.merge(self._hist(parts[2]))
        right = self._hist(parts[0])
        right.merge(inner)
        self._same(left, right)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_merge_equals_observing_everything_once(self, seed):
        xs = self._samples(seed, 250)
        ys = self._samples(seed + 7, 250)
        merged = self._hist(xs)
        merged.merge(self._hist(ys))
        self._same(merged, self._hist(xs + ys))

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_quantiles_are_monotone_in_q(self, seed):
        hist = self._hist(self._samples(seed, 400))
        qs = [i / 20 for i in range(21)]
        estimates = [hist.approx_quantile(q) for q in qs]
        assert estimates == sorted(estimates)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_quantiles_stay_inside_the_observed_range(self, seed):
        values = self._samples(seed, 100)
        hist = self._hist(values)
        for q in (0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0):
            assert min(values) <= hist.approx_quantile(q) <= max(values)
        assert hist.approx_quantile(0.0) == min(values)
        assert hist.approx_quantile(1.0) == max(values)

    def test_interior_quantile_interpolates_below_the_bucket_bound(self):
        # the median bucket holds 98 of 100 observations (outliers keep
        # the min/max clamp from binding): the estimate must be the
        # geometric midpoint (upper/sqrt(2)), not the pessimistic bound
        hist = self._hist([1e-5] + [0.0015] * 98 + [0.1])
        import math
        upper = Histogram.bucket_upper_bound(Histogram.bucket_index(0.0015))
        assert hist.approx_quantile(0.5) == pytest.approx(upper / math.sqrt(2))
        assert hist.approx_quantile(0.5) < upper
