"""The bench-regression sentinel: committed baselines pass verbatim, a
degraded run fails naming the metric and baseline, tolerance bands are
direction-aware and one-sided."""
import copy
import json
import os

import pytest

from repro.obs.regress import (BASELINES, SPECS, build_verdict, compare,
                               main)

BENCH_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks")


def _baseline(name: str) -> dict:
    with open(os.path.join(BENCH_DIR, BASELINES[name]),
              encoding="utf-8") as fh:
        return json.load(fh)


def _write(tmp_path, name, payload):
    path = str(tmp_path / f"{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return path


class TestCompare:
    def test_identical_run_is_all_ok_or_skipped(self):
        for name in BASELINES:
            baseline = _baseline(name)
            results = compare(baseline, baseline, SPECS[name])
            assert all(r["status"] in ("ok", "skipped") for r in results)

    def test_higher_is_better_band_is_one_sided(self):
        baseline = {"benchmark": "x", "rate": 100.0}
        specs = [("rate", "higher", 0.4)]
        assert compare({"rate": 61.0}, baseline, specs)[0]["status"] == "ok"
        assert compare({"rate": 59.0}, baseline, specs)[0]["status"] == \
            "regression"
        # improvements never fail
        assert compare({"rate": 1000.0}, baseline, specs)[0]["status"] == "ok"

    def test_lower_is_better_band_is_one_sided(self):
        baseline = {"ratio": 1.0}
        specs = [("ratio", "lower", 0.5)]
        assert compare({"ratio": 1.4}, baseline, specs)[0]["status"] == "ok"
        assert compare({"ratio": 1.6}, baseline, specs)[0]["status"] == \
            "regression"
        assert compare({"ratio": 0.01}, baseline, specs)[0]["status"] == "ok"

    def test_tolerance_scale_widens_the_band(self):
        baseline = {"rate": 100.0}
        specs = [("rate", "higher", 0.2)]
        assert compare({"rate": 70.0}, baseline, specs)[0]["status"] == \
            "regression"
        assert compare({"rate": 70.0}, baseline, specs,
                       tolerance_scale=2.0)[0]["status"] == "ok"

    def test_metric_missing_from_baseline_is_skipped(self):
        results = compare({"new_metric": 5.0}, {}, [("new_metric", "higher",
                                                     0.1)])
        assert results[0]["status"] == "skipped"

    def test_metric_missing_from_fresh_fails(self):
        results = compare({}, {"rate": 100.0}, [("rate", "higher", 0.1)])
        assert results[0]["status"] == "missing"
        verdict = build_verdict([{"benchmark": "x", "fresh_path": "f",
                                  "baseline_path": "b", "results": results}])
        assert not verdict["ok"]


class TestSentinelCLI:
    def test_committed_baselines_pass_verbatim(self, capsys):
        paths = [os.path.join(BENCH_DIR, BASELINES[name])
                 for name in sorted(BASELINES)]
        assert main(paths + ["--baseline-dir", BENCH_DIR]) == 0
        out = capsys.readouterr().out
        assert "within tolerance" in out

    def test_degraded_throughput_fails_naming_metric_and_baseline(
            self, tmp_path, capsys):
        degraded = copy.deepcopy(_baseline("bench_render_perf"))
        degraded["batched"]["renders_per_s"] *= 0.5
        path = _write(tmp_path, "fresh_render", degraded)
        verdict_path = str(tmp_path / "verdict.json")
        rc = main([path, "--baseline-dir", BENCH_DIR,
                   "--out", verdict_path])
        assert rc == 1
        err = capsys.readouterr().err
        assert "batched.renders_per_s" in err
        assert "BENCH_render.json" in err
        verdict = json.load(open(verdict_path))
        assert verdict["kind"] == "repro.obs.regress"
        assert verdict["ok"] is False
        failing = [(f["benchmark"], f["metric"]) for f in verdict["failures"]]
        assert failing == [("bench_render_perf", "batched.renders_per_s")]

    def test_degraded_overhead_ratio_fails(self, tmp_path, capsys):
        degraded = copy.deepcopy(_baseline("bench_obs_overhead"))
        degraded["study_wall_s"]["enabled_ratio"] *= 2.0
        path = _write(tmp_path, "fresh_obs", degraded)
        assert main([path, "--baseline-dir", BENCH_DIR]) == 1
        assert "enabled_ratio" in capsys.readouterr().err

    def test_unknown_benchmark_is_a_usage_error(self, tmp_path, capsys):
        path = _write(tmp_path, "mystery", {"benchmark": "bench_mystery"})
        assert main([path, "--baseline-dir", BENCH_DIR]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_missing_fresh_file_is_a_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        assert "no fresh benchmark" in capsys.readouterr().err

    def test_verdict_artifact_written_even_on_pass(self, tmp_path, capsys):
        path = os.path.join(BENCH_DIR, BASELINES["bench_collation"])
        verdict_path = str(tmp_path / "verdict.json")
        assert main([path, "--baseline-dir", BENCH_DIR,
                     "--out", verdict_path]) == 0
        verdict = json.load(open(verdict_path))
        assert verdict["ok"] is True and verdict["checked"] >= 1
