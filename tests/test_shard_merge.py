"""Mergeable analysis: shard reports merge to the byte-identical
monolithic analysis report, in any order; torn inputs and cross-study
mixes are rejected with named errors; the CLI modes and the obs --check
dispatch cover the same artefacts; and a chaos (fault-injected) sharded
run still merges to the fault-free bytes."""
import itertools
import json
import os
import subprocess
import sys

import pytest

from repro import run_study, run_study_sharded
from repro.analysis import build_analysis_report, dumps_analysis_report
from repro.analysis.shards import (SHARD_REPORT_KIND, dumps_shard_or_merged,
                                   merge_shard_reports,
                                   validate_shard_report)
from repro.population import RenderCache
from repro.resilience import Fault, FaultPlan, RetryPolicy
from repro.resilience.faults import ENV_VAR

STUDY = dict(iterations=5, vectors=("dc", "fft", "hybrid"), seed=7)
USERS = 30
SHARD = 9

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

POLICY = RetryPolicy(base_delay_s=0.005, max_delay_s=0.05,
                     job_deadline_s=30.0)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    mp = pytest.MonkeyPatch()
    mp.delenv(ENV_VAR, raising=False)
    try:
        out = str(tmp_path_factory.mktemp("shards"))
        result = run_study_sharded(USERS, SHARD, out, workers=0, **STUDY)
    finally:
        mp.undo()
    return result


@pytest.fixture(scope="module")
def shard_reports(sharded):
    return [json.load(open(path)) for path in sharded.shard_report_paths()]


@pytest.fixture(scope="module")
def monolithic_bytes():
    mp = pytest.MonkeyPatch()
    mp.delenv(ENV_VAR, raising=False)
    try:
        dataset = run_study(USERS, workers=0, **STUDY)
    finally:
        mp.undo()
    return dumps_analysis_report(build_analysis_report(dataset))


class TestMergeDeterminism:
    def test_merged_equals_monolithic_bytes(self, sharded, monolithic_bytes):
        assert open(sharded.merged_report_path).read() == monolithic_bytes

    def test_merge_is_permutation_invariant(self, shard_reports,
                                            monolithic_bytes):
        for perm in itertools.permutations(shard_reports):
            merged = merge_shard_reports(list(perm))
            assert dumps_shard_or_merged(merged) == monolithic_bytes

    def test_shard_reports_validate(self, shard_reports):
        for report in shard_reports:
            assert report["kind"] == SHARD_REPORT_KIND
            assert validate_shard_report(report) == []

    def test_shard_report_building_is_deterministic(self, sharded):
        from repro.analysis.shards import build_shard_report
        from repro.population.shards import dataset_from_records, load_shard
        manifest, records = load_shard(sharded.shards[0].paths.manifest)
        rebuilt = build_shard_report(dataset_from_records(manifest, records),
                                     manifest)
        assert dumps_shard_or_merged(rebuilt) \
            == open(sharded.shards[0].paths.report).read()


class TestMergeValidation:
    def test_gap_rejected(self, shard_reports):
        with pytest.raises(ValueError, match="partition"):
            merge_shard_reports([shard_reports[0], shard_reports[2],
                                 shard_reports[3]])

    def test_duplicate_shard_rejected(self, shard_reports):
        with pytest.raises(ValueError, match="overlap"):
            merge_shard_reports(shard_reports + [shard_reports[1]])

    def test_incomplete_coverage_rejected(self, shard_reports):
        with pytest.raises(ValueError, match="users"):
            merge_shard_reports(shard_reports[:-1])

    def test_mixed_study_rejected(self, shard_reports):
        foreign = json.loads(json.dumps(shard_reports[1]))
        foreign["study"]["seed"] = 999
        with pytest.raises(ValueError, match="seed"):
            merge_shard_reports([shard_reports[0], foreign,
                                 *shard_reports[2:]])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="no shard reports"):
            merge_shard_reports([])

    def test_tampered_counts_caught(self, shard_reports):
        tampered = json.loads(json.dumps(shard_reports[0]))
        tampered["vectors"]["dc"]["first"][0] += 1
        problems = validate_shard_report(tampered)
        assert any("first" in p for p in problems)
        with pytest.raises(ValueError, match="invalid shard report"):
            merge_shard_reports([tampered, *shard_reports[1:]])

    def test_edge_index_out_of_range_caught(self, shard_reports):
        tampered = json.loads(json.dumps(shard_reports[0]))
        tampered["vectors"]["dc"]["edges"].append([0, 10 ** 6])
        assert any("edges" in p for p in validate_shard_report(tampered))

    def test_tuple_count_mismatch_caught(self, shard_reports):
        tampered = json.loads(json.dumps(shard_reports[0]))
        tampered["combined"]["tuples"][0][1] += 1
        assert any("tuples" in p for p in validate_shard_report(tampered))


class TestCLI:
    def _run(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.pop(ENV_VAR, None)
        return subprocess.run([sys.executable, "-m", *argv],
                              env=env, capture_output=True, text=True)

    def test_shard_mode_matches_driver_report(self, sharded, tmp_path):
        out = tmp_path / "sr.json"
        proc = self._run("repro.analysis", "--shard",
                         sharded.shards[0].paths.manifest, "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert out.read_text() \
            == open(sharded.shards[0].paths.report).read()

    def test_merge_mode_matches_monolithic(self, sharded, monolithic_bytes,
                                           tmp_path):
        out = tmp_path / "merged.json"
        proc = self._run("repro.analysis", "--merge",
                         *reversed(sharded.shard_report_paths()),
                         "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert out.read_text() == monolithic_bytes

    def test_merge_mode_rejects_gap(self, sharded):
        paths = sharded.shard_report_paths()
        proc = self._run("repro.analysis", "--merge", paths[0], paths[2])
        assert proc.returncode == 2
        assert "partition" in proc.stderr

    def test_obs_check_dispatches_both_kinds(self, sharded):
        for path in (sharded.shards[0].paths.report,
                     sharded.merged_report_path):
            proc = self._run("repro.obs.report", path, "--check")
            assert proc.returncode == 0, (path, proc.stderr)

    def test_obs_render_shard_report(self, sharded):
        proc = self._run("repro.obs.report", sharded.shards[0].paths.report)
        assert proc.returncode == 0
        assert "shard report" in proc.stdout


class TestChaosSharded:
    def test_faulted_sharded_run_merges_to_clean_bytes(
            self, sharded, monolithic_bytes, monkeypatch, tmp_path):
        """A sharded run with injected crash + corrupt faults (on real
        class keys) recovers to the byte-identical merged analysis."""
        cache = RenderCache()
        probe = run_study_sharded(USERS, SHARD, str(tmp_path / "probe"),
                                  workers=0, cache=cache, **STUDY)
        keys = sorted(cache._store)
        plan = FaultPlan(seed=99, faults=(
            Fault(kind="crash", keys=(keys[0],), times=1),
            Fault(kind="corrupt", keys=(keys[-1],), times=1),
        ))
        monkeypatch.setenv(ENV_VAR, plan.save(str(tmp_path / "plan.json")))
        chaotic = run_study_sharded(USERS, SHARD, str(tmp_path / "chaos"),
                                    workers=2, retry_policy=POLICY, **STUDY)
        assert open(chaotic.merged_report_path).read() == monolithic_bytes
        monkeypatch.delenv(ENV_VAR)
        assert probe.merged_report_path  # probe partition completed too
