"""Sharded study pipeline: slice-sampler determinism, shard geometry
validation, crash-safe shard format (manifest commit point, torn-file
quarantine), resume semantics, and the headline invariant — a sharded
run reassembles to the byte-identical monolithic dataset."""
import json
import os

import pytest

from repro import run_study, run_study_sharded
from repro.population import ShardIntegrityError, shard_ranges
from repro.population.dataset import StudyDataset
from repro.population.sampler import sample_population, sample_population_slice
from repro.population.shards import (check_shard_study, load_manifest,
                                     load_shard)
from repro.resilience import load_checkpoint, study_fingerprint
from repro.resilience.faults import ENV_VAR
from repro.webaudio import ENGINE_VERSION

STUDY = dict(iterations=5, vectors=("dc", "fft", "hybrid"), seed=7)
USERS = 30
SHARD = 9  # 30/9 -> shards of 9, 9, 9, 3


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("shards"))
    result = run_study_sharded(USERS, SHARD, out, workers=0, **STUDY)
    return result


@pytest.fixture(scope="module")
def monolithic():
    return run_study(USERS, workers=0, **STUDY)


class TestSliceSampler:
    def test_slice_equals_full_population_slice(self):
        full = sample_population(40, seed=2021)
        for start, stop in [(0, 40), (0, 1), (17, 33), (39, 40)]:
            part = sample_population_slice(40, 2021, start, stop)
            assert [d.describe() for d in part] \
                == [d.describe() for d in full[start:stop]]

    def test_slice_bounds_validated(self):
        with pytest.raises(ValueError):
            sample_population_slice(10, 2021, 5, 5)
        with pytest.raises(ValueError):
            sample_population_slice(10, 2021, -1, 5)
        with pytest.raises(ValueError):
            sample_population_slice(10, 2021, 0, 11)


class TestShardGeometry:
    def test_ranges_partition(self):
        assert shard_ranges(30, 9) == [(0, 9), (9, 18), (18, 27), (27, 30)]
        assert shard_ranges(9, 9) == [(0, 9)]
        assert shard_ranges(8, 9) == [(0, 8)]

    @pytest.mark.parametrize("bad", [0, -1, True, 2.5, "9"])
    def test_non_positive_shard_size_rejected(self, bad, tmp_path):
        with pytest.raises(ValueError, match="shard_size"):
            run_study_sharded(10, bad, str(tmp_path), workers=0, **STUDY)

    def test_empty_range_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            run_study_sharded(10, None, str(tmp_path), workers=0,
                              ranges=[(0, 5), (5, 5)], **STUDY)

    def test_overlapping_ranges_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="overlap"):
            run_study_sharded(10, None, str(tmp_path), workers=0,
                              ranges=[(0, 6), (4, 10)], **STUDY)

    def test_out_of_bounds_range_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="outside"):
            run_study_sharded(10, None, str(tmp_path), workers=0,
                              ranges=[(0, 11)], **STUDY)

    def test_front_door_validation_mirrors_run_study(self, tmp_path):
        with pytest.raises(ValueError, match="user_count"):
            run_study_sharded(0, 5, str(tmp_path), workers=0, **STUDY)
        with pytest.raises(ValueError, match="iterations"):
            run_study_sharded(10, 5, str(tmp_path), workers=0, iterations=0,
                              vectors=("dc",), seed=7)
        with pytest.raises(KeyError):
            run_study_sharded(10, 5, str(tmp_path), workers=0, iterations=2,
                              vectors=("nope",), seed=7)


class TestShardedBitIdentity:
    def test_combined_dataset_equals_monolithic(self, sharded, monolithic,
                                                tmp_path):
        combined = sharded.to_dataset()
        a, b = tmp_path / "sharded.json", tmp_path / "mono.json"
        combined.save(str(a))
        monolithic.save(str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_manifest_stamps(self, sharded):
        for shard in sharded.shards:
            manifest = load_manifest(shard.paths.manifest)
            assert manifest["engine_version"] == ENGINE_VERSION
            assert manifest["study"] == study_fingerprint(
                STUDY["seed"], USERS, STUDY["iterations"], STUDY["vectors"])
            assert manifest["shard"]["users"] == shard.stop - shard.start
            assert manifest["data"]["records"] == shard.stop - shard.start
            assert os.path.getsize(shard.paths.data) \
                == manifest["data"]["bytes"]

    def test_shard_checkpoints_removed_after_commit(self, sharded):
        for shard in sharded.shards:
            assert not os.path.exists(shard.paths.checkpoint)

    def test_resume_skips_completed_shards(self, sharded):
        before = open(sharded.merged_report_path).read()
        again = run_study_sharded(USERS, SHARD, sharded.out_dir, workers=0,
                                  **STUDY)
        assert all(s.resumed for s in again.shards)
        assert open(again.merged_report_path).read() == before


class TestShardIntegrity:
    def _shard_copy(self, sharded, tmp_path, index=1):
        """A private copy of one rendered shard (so module-scoped state
        stays pristine) plus a full rerun directory."""
        import shutil
        out = tmp_path / "shards"
        shutil.copytree(sharded.out_dir, out)
        result = run_study_sharded(USERS, SHARD, str(out), workers=0, **STUDY)
        return result, result.shards[index]

    def test_truncated_shard_quarantined_with_named_error(
            self, sharded, tmp_path):
        _, shard = self._shard_copy(sharded, tmp_path)
        data = open(shard.paths.data, "rb").read()
        with open(shard.paths.data, "wb") as fh:
            fh.write(data[: len(data) // 2])
        with pytest.raises(ShardIntegrityError, match="torn or truncated"):
            load_shard(shard.paths.manifest)
        assert os.path.exists(shard.paths.data + ".corrupt")
        assert not os.path.exists(shard.paths.data)
        assert not os.path.exists(shard.paths.manifest)

    def test_bitrot_quarantined_with_named_error(self, sharded, tmp_path):
        _, shard = self._shard_copy(sharded, tmp_path)
        data = bytearray(open(shard.paths.data, "rb").read())
        data[len(data) // 2] ^= 0xFF  # same size, different bytes
        with open(shard.paths.data, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(ShardIntegrityError, match="sha256"):
            load_shard(shard.paths.manifest)
        assert os.path.exists(shard.paths.data + ".corrupt")

    def test_driver_rerenders_quarantined_shard_identically(
            self, sharded, tmp_path):
        result, shard = self._shard_copy(sharded, tmp_path)
        before = open(result.merged_report_path).read()
        with open(shard.paths.data, "ab") as fh:
            fh.write(b"torn garbage\n")
        again = run_study_sharded(USERS, SHARD, result.out_dir, workers=0,
                                  **STUDY)
        redone = again.shards[shard.index]
        assert redone.requarantined and not redone.resumed
        assert os.path.exists(shard.paths.data + ".corrupt")
        assert open(again.merged_report_path).read() == before

    def test_foreign_study_manifest_raises_named_field(self, sharded,
                                                       tmp_path):
        result, _ = self._shard_copy(sharded, tmp_path)
        with pytest.raises(ValueError, match="seed"):
            run_study_sharded(USERS, SHARD, result.out_dir, workers=0,
                              iterations=STUDY["iterations"],
                              vectors=STUDY["vectors"], seed=99)

    def test_engine_version_mismatch_raises(self, sharded, tmp_path):
        result, shard = self._shard_copy(sharded, tmp_path)
        manifest = json.load(open(shard.paths.manifest))
        manifest["engine_version"] = "0-stale"
        with open(shard.paths.manifest, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ValueError, match="engine_version"):
            run_study_sharded(USERS, SHARD, result.out_dir, workers=0,
                              **STUDY)

    def test_check_shard_study_names_each_field(self, sharded):
        manifest = load_manifest(sharded.shards[0].paths.manifest)
        good = dict(manifest["study"])
        for field in ("seed", "user_count", "iterations", "vectors"):
            bad = dict(good)
            bad[field] = [9, 9] if field == "vectors" else 999
            with pytest.raises(ValueError, match=field):
                check_shard_study(manifest, bad, "m")

    def test_shard_checkpoint_cannot_resume_other_shard(self, tmp_path):
        base = study_fingerprint(7, 30, 5, ("dc",))
        from repro.resilience import write_checkpoint
        path = str(tmp_path / "s.ckpt")
        write_checkpoint(path, dict(base, shard=[0, 9]), {"k": "a" * 32}, 1)
        with pytest.raises(ValueError, match="shard"):
            load_checkpoint(path, dict(base, shard=[9, 18]))


class TestStreamingSave:
    def test_streamed_bytes_equal_whole_document_dump(self, monolithic,
                                                      tmp_path):
        path = tmp_path / "ds.json"
        monolithic.save(str(path))
        assert path.read_text() \
            == json.dumps(monolithic.to_dict()) + "\n"
        assert StudyDataset.load(str(path)) == monolithic

    def test_empty_dataset_streams_valid_json(self, tmp_path):
        ds = StudyDataset(seed=1, user_count=0, iterations=1,
                          vectors=("dc",), users=[], series={"dc": {}})
        path = tmp_path / "empty.json"
        ds.save(str(path))
        assert path.read_text() == json.dumps(ds.to_dict()) + "\n"
