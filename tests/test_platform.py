"""Platform layer: stacks are frozen/hashable identities; math backends
diverge at the ulp level; jitter paths round-trip and transform."""
import numpy as np
import pytest

from repro.platform import (
    AudioStack,
    MATH_BACKENDS,
    REFERENCE_PATH,
    default_stack_pool,
    get_math_backend,
    parse_path,
    sample_load,
    sample_path,
)
from repro.platform.jitter import JitterPath, sample_repertoire
from repro.webaudio import ENGINE_VERSION


class TestAudioStack:
    def test_frozen_and_hashable(self):
        stack = AudioStack("blink", "ucrt", "radix2", "blink")
        with pytest.raises(Exception):
            stack.engine = "gecko"
        assert stack == AudioStack("blink", "ucrt", "radix2", "blink")
        assert len({stack, AudioStack("blink", "ucrt", "radix2", "blink")}) == 1

    def test_cache_key_is_stable_and_versioned(self):
        stack = AudioStack("blink", "ucrt", "radix2", "blink", 48000)
        key = stack.cache_key()
        assert key == stack.cache_key()
        assert key.startswith(f"e{ENGINE_VERSION}|")
        assert "48000" in key

    def test_cache_key_separates_every_field(self):
        base = AudioStack("blink", "ucrt", "radix2", "blink")
        variants = [
            AudioStack("gecko", "ucrt", "radix2", "blink"),
            AudioStack("blink", "glibc", "radix2", "blink"),
            AudioStack("blink", "ucrt", "bluestein", "blink"),
            AudioStack("blink", "ucrt", "radix2", "gecko"),
            AudioStack("blink", "ucrt", "radix2", "blink", 48000),
            AudioStack("blink", "ucrt", "radix2", "blink", 44100, 2),
        ]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_realize_wires_backends(self):
        stack = AudioStack("gecko", "glibc", "splitradix", "gecko")
        config = stack.realize()
        assert config.math.name == "glibc"
        assert config.fft.name == "splitradix"
        assert config.compressor.knee_db == 28.0
        assert config.jitter_transform is None

    def test_pool_shape(self):
        pool = default_stack_pool()
        assert len(pool) >= 20
        # Edge deliberately shares Chrome's stack (the Table 5 collapse)
        keys = [s.cache_key() for (s, _, _, _) in pool]
        assert len(set(keys)) < len(keys)
        assert all(w > 0 for (_, _, _, w) in pool)


class TestMathBackends:
    def test_reference_backend_is_exact(self):
        x = np.linspace(0.0, 3.0, 100)
        assert np.array_equal(get_math_backend("ucrt").sin(x), np.sin(x))

    def test_variants_diverge_by_ulps(self):
        x = np.linspace(0.1, 3.0, 100)
        outputs = {name: MATH_BACKENDS[name].sin(x).tobytes() for name in MATH_BACKENDS}
        assert len(set(outputs.values())) == len(MATH_BACKENDS)
        # ... but only by ulps: numerically they all agree tightly
        for name in MATH_BACKENDS:
            assert np.allclose(MATH_BACKENDS[name].sin(x), np.sin(x), rtol=1e-13)

    def test_all_operations_covered(self):
        backend = get_math_backend("bionic")
        x = np.array([0.5, 1.5])
        for op in ("sin", "cos", "exp", "log10", "tanh"):
            assert getattr(backend, op)(x).shape == x.shape
        assert backend.pow(x, 2.0).shape == x.shape

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_math_backend("quickmath")


class TestJitter:
    def test_reference_path_round_trip(self):
        path = parse_path(REFERENCE_PATH)
        assert path == JitterPath()
        assert path.encode() == REFERENCE_PATH
        assert path.readout_offset == 0

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_path("under-load")

    def test_transforms_change_bits(self):
        rng = np.random.default_rng(3)
        frames = rng.standard_normal(2048) * 1e-3
        ref = JitterPath().transform(frames)
        assert np.array_equal(ref, frames)
        for jp in (JitterPath(fused_multiply=True), JitterPath(f32_precision=True)):
            assert jp.transform(frames).tobytes() != frames.tobytes()
        flushed = JitterPath(denormal_flush=True).transform(
            np.array([1e-15, 0.5, -1e-20]))
        assert np.array_equal(flushed, [0.0, 0.5, 0.0])

    def test_zero_load_always_reference(self):
        rng = np.random.default_rng(11)
        assert all(sample_path(rng, 0.0) == REFERENCE_PATH for _ in range(50))

    def test_heavy_load_perturbs(self):
        rng = np.random.default_rng(12)
        repertoire = sample_repertoire(rng, 0.9)
        paths = {sample_path(rng, 0.9, repertoire) for _ in range(100)}
        assert len(paths) >= 2
        assert paths - {REFERENCE_PATH}  # at least one perturbed path
        assert paths - {REFERENCE_PATH} <= set(repertoire)

    def test_sample_load_bounded(self):
        rng = np.random.default_rng(13)
        loads = [sample_load(rng) for _ in range(200)]
        assert all(0.0 <= l < 1.0 for l in loads)
