"""SupervisedExecutor unit coverage: retry/backoff, validation, bisection,
quarantine, budget, pool crash/hang recovery, inline fallback — all on
synthetic workers, independent of the render pipeline."""
import os
import time

import pytest

from repro.obs import Recorder
from repro.resilience import (RetryBudget, RetryPolicy, StudyExecutionError,
                              SupervisedExecutor)

#: fast knobs so failure paths converge in milliseconds
FAST = RetryPolicy(base_delay_s=0.001, max_delay_s=0.005, job_deadline_s=10.0)


def _double(job):
    return job * 2


def _crash_once(job):
    """Pool worker: hard-dies (os._exit) the first time each marker is
    seen; clean on retry. The marker file is the cross-process ledger."""
    value, marker = job
    if marker and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(5)
    return value * 2


def _hang_once(job):
    value, marker, seconds = job
    if marker and not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(seconds)
    return value * 2


class _FlakyInline:
    """Raises for selected jobs until their failure allowance runs out."""

    def __init__(self, fail_jobs, failures=1, bad_value=None):
        self.fail_jobs = set(fail_jobs)
        self.failures = failures
        self.bad_value = bad_value
        self.calls = {}

    def __call__(self, job):
        count = self.calls.get(job, 0)
        self.calls[job] = count + 1
        if job in self.fail_jobs and count < self.failures:
            if self.bad_value is not None:
                return self.bad_value  # corrupted return, not an exception
            raise RuntimeError(f"injected failure for {job}")
        return job * 2


class TestInline:
    def test_happy_path_yields_every_job(self):
        ex = SupervisedExecutor(_double, workers=0, policy=FAST)
        assert sorted(ex.run(range(5))) == [0, 2, 4, 6, 8]
        summary = ex.summary()
        assert summary["retry"]["attempts"] == 5
        assert summary["retry"]["retries"] == 0
        assert summary["retry"]["quarantined"] == []
        assert summary["degraded"] == {"pool_rebuilds": 0,
                                       "inline_fallback": False}

    def test_retries_worker_exceptions(self):
        worker = _FlakyInline(fail_jobs={3}, failures=2)
        ex = SupervisedExecutor(worker, workers=0, policy=FAST)
        assert sorted(ex.run(range(5))) == [0, 2, 4, 6, 8]
        summary = ex.summary()["retry"]
        assert summary["worker_errors"] == 2
        assert summary["retries"] == 2
        assert summary["attempts"] == 7

    def test_corrupted_return_detected_and_retried(self):
        worker = _FlakyInline(fail_jobs={1}, failures=1, bad_value="garbage")
        ex = SupervisedExecutor(worker, workers=0, policy=FAST,
                                validator=lambda job, res: res == job * 2)
        assert sorted(ex.run(range(3))) == [0, 2, 4]
        assert ex.summary()["retry"]["corrupt_returns"] == 1

    def test_quarantines_after_max_attempts(self):
        worker = _FlakyInline(fail_jobs={2}, failures=99)
        ex = SupervisedExecutor(worker, workers=0,
                                policy=RetryPolicy(max_attempts=2,
                                                   base_delay_s=0.001),
                                keys_of=lambda job: [f"job-{job}"])
        results = []
        with pytest.raises(StudyExecutionError) as err:
            for result in ex.run(range(4)):
                results.append(result)
        # the healthy siblings all completed before the failure surfaced
        assert sorted(results) == [0, 2, 6]
        assert err.value.quarantined == ["job-2"]
        assert "job-2" in str(err.value)

    def test_budget_exhaustion_stops_retrying(self):
        worker = _FlakyInline(fail_jobs={0}, failures=99)
        ex = SupervisedExecutor(worker, workers=0, policy=FAST,
                                budget=RetryBudget(0),
                                keys_of=lambda job: [f"job-{job}"])
        with pytest.raises(StudyExecutionError) as err:
            list(ex.run(range(2)))
        assert err.value.quarantined == ["job-0"]
        assert err.value.budget_exhausted
        # one single failed attempt: the budget forbade any retry at all
        assert ex.summary()["retry"]["retries"] == 0

    def test_bisection_corners_the_poison_member(self):
        """A splittable job with one poison member quarantines exactly
        that member; every sibling still renders."""
        def worker(job):
            if "poison" in job:
                raise RuntimeError("poison member")
            return list(job)

        def splitter(job):
            if len(job) < 2:
                return None
            mid = len(job) // 2
            return [job[:mid], job[mid:]]

        ex = SupervisedExecutor(
            worker, workers=0,
            policy=RetryPolicy(max_attempts=2, bisect_after=1,
                               base_delay_s=0.001),
            splitter=splitter, keys_of=lambda job: list(job))
        done = []
        with pytest.raises(StudyExecutionError) as err:
            for result in ex.run([("a", "b", "poison", "c", "d")]):
                done.extend(result)
        assert sorted(done) == ["a", "b", "c", "d"]
        assert err.value.quarantined == ["poison"]
        assert ex.summary()["retry"]["bisections"] >= 2

    def test_deterministic_backoff_jitter(self):
        policy = RetryPolicy()
        first = policy.backoff_delay(3, seed=7, token="k")
        assert first == policy.backoff_delay(3, seed=7, token="k")
        assert first != policy.backoff_delay(3, seed=8, token="k")
        assert first != policy.backoff_delay(3, seed=7, token="other")
        assert first <= policy.max_delay_s * (1 + policy.jitter_fraction)

    def test_recorder_counters_mirror_summary(self):
        recorder = Recorder()
        worker = _FlakyInline(fail_jobs={1}, failures=1)
        ex = SupervisedExecutor(worker, workers=0, policy=FAST,
                                recorder=recorder)
        list(ex.run(range(3)))
        summary = ex.summary()["retry"]
        assert recorder.counters["retry.attempts"] == summary["attempts"]
        assert recorder.counters["retry.retries"] == summary["retries"]
        assert recorder.counters["retry.worker_errors"] == \
            summary["worker_errors"]


class TestPooled:
    def test_happy_path(self):
        ex = SupervisedExecutor(_double, workers=2, policy=FAST)
        assert sorted(ex.run(range(12))) == [2 * n for n in range(12)]
        assert ex.summary()["degraded"]["pool_rebuilds"] == 0

    def test_recovers_from_worker_crash(self, tmp_path):
        """os._exit in a worker breaks the whole pool; the supervisor
        harvests survivors, rebuilds, and retries to completion."""
        marker = str(tmp_path / "crashed")
        jobs = [(n, marker if n == 3 else None) for n in range(8)]
        ex = SupervisedExecutor(_crash_once, workers=2, policy=FAST)
        assert sorted(ex.run(jobs)) == [2 * n for n in range(8)]
        summary = ex.summary()
        assert summary["retry"]["crashes"] >= 1
        assert summary["degraded"]["pool_rebuilds"] >= 1
        assert summary["retry"]["quarantined"] == []

    def test_recovers_from_hung_worker(self, tmp_path):
        """A worker sleeping past its deadline is presumed hung: its pool
        is torn down and the job retried on a fresh one."""
        marker = str(tmp_path / "hung")
        jobs = [(n, marker if n == 1 else None, 30.0) for n in range(4)]
        ex = SupervisedExecutor(
            _hang_once, workers=2,
            policy=RetryPolicy(job_deadline_s=1.0, base_delay_s=0.01))
        start = time.monotonic()
        assert sorted(ex.run(jobs)) == [2 * n for n in range(4)]
        # recovery must not wait out the 30s sleep
        assert time.monotonic() - start < 20.0
        summary = ex.summary()
        assert summary["retry"]["timeouts"] >= 1
        assert summary["degraded"]["pool_rebuilds"] >= 1

    def test_falls_back_inline_after_repeated_pool_death(self, tmp_path):
        # one poison job, rebuild allowance zero: the first pool death
        # pushes everything (poison included, its marker now claimed)
        # onto the inline path, which must finish the run
        marker = str(tmp_path / "m0")
        jobs = [(n, marker if n == 0 else None) for n in range(6)]
        ex = SupervisedExecutor(
            _crash_once, workers=2,
            policy=RetryPolicy(max_pool_rebuilds=0, base_delay_s=0.001,
                               max_attempts=6))
        assert sorted(ex.run(jobs)) == [2 * n for n in range(6)]
        summary = ex.summary()["degraded"]
        assert summary["inline_fallback"] is True
        assert summary["pool_rebuilds"] >= 1
