"""Batched rendering contracts.

The whole batching optimisation rests on one invariant: a batched render
is *bit-identical* to the per-class renders it replaces — same digests,
same dataset bytes, at any batch composition, batch split, worker count,
or FFT backend. These tests pin that invariant, plus the crash-safety of
the render cache's disk persistence.
"""
import json
import os

import numpy as np
import pytest

from repro import RenderCache, run_study
from repro.platform import AudioStack
from repro.platform.jitter import sample_path, sample_repertoire
from repro.vectors import AUDIO_VECTORS, FULL_BATTERY, get_vector
from repro.webaudio.fft import FFT_BACKENDS, get_fft_backend

BACKENDS = sorted(FFT_BACKENDS)


def _random_paths(rng, count):
    """Jitter paths under heavy load: duplicates and the reference path
    both occur, so batches mix repeated and distinct rows."""
    repertoire = sample_repertoire(rng, 0.9)
    return [sample_path(rng, 0.9, repertoire) for _ in range(count)]


class TestBatchedDigestsMatchSerial:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(AUDIO_VECTORS))
    def test_randomized_paths_every_backend(self, name, backend):
        vector = get_vector(name)
        stack = AudioStack("blink", "ucrt", backend, "blink")
        rng = np.random.default_rng(hash((name, backend)) % 2**32)
        paths = _random_paths(rng, 6)
        batched = vector.render_batch(stack, paths)
        assert batched == [vector.render(stack, p) for p in paths]

    def test_single_row_batch(self):
        vector = get_vector("hybrid")
        stack = AudioStack("webkit", "apple-libm", "bluestein", "webkit", 48000)
        assert vector.render_batch(stack, [None]) == [vector.render(stack, None)]

    def test_empty_batch(self):
        stack = AudioStack("blink", "ucrt", "radix2", "blink")
        assert get_vector("fft").render_batch(stack, []) == []

    def test_batch_rows_do_not_interact(self):
        """A row's digest must not depend on which rows share its batch."""
        vector = get_vector("fft")
        stack = AudioStack("gecko", "glibc", "splitradix", "gecko")
        rng = np.random.default_rng(77)
        paths = _random_paths(rng, 5)
        alone = vector.render_batch(stack, [paths[2]])[0]
        together = vector.render_batch(stack, paths)[2]
        shuffled = vector.render_batch(stack, paths[::-1])[2]
        assert alone == together == shuffled


class TestBatchedFFTBitIdentity:
    """fft((B, n)) rows must equal fft((n,)) of each row, bit for bit."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pow2(self, backend):
        fft = get_fft_backend(backend)
        rng = np.random.default_rng(11)
        x = rng.standard_normal((4, 256))
        rows = fft.fft(x)
        for b in range(x.shape[0]):
            np.testing.assert_array_equal(rows[b], fft.fft(x[b]))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_non_pow2_via_bluestein(self, backend):
        fft = get_fft_backend(backend)
        rng = np.random.default_rng(12)
        x = rng.standard_normal((3, 60))
        rows = fft.fft(x)
        for b in range(x.shape[0]):
            np.testing.assert_array_equal(rows[b], fft.fft(x[b]))


STUDY = dict(user_count=6, iterations=3, vectors=("dc", "fft", "hybrid"),
             seed=13)


class TestGroupingNeverChangesTheDataset:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_study(cache=RenderCache(), workers=0, batched=False, **STUDY)

    @pytest.mark.parametrize("workers", [0, 1, 2])
    def test_batched_equals_serial_at_any_worker_count(self, serial, workers):
        batched = run_study(cache=RenderCache(), workers=workers, **STUDY)
        assert batched == serial

    @pytest.mark.parametrize("workers", [0, 2])
    def test_disabled_cache_baselines_agree(self, serial, workers):
        cold = run_study(cache=RenderCache(disabled=True), workers=workers,
                         **STUDY)
        assert cold == serial

    def test_dataset_json_bytes_identical(self, serial, tmp_path):
        """Not just ==: the serialized artifact is byte-for-byte stable."""
        blobs = set()
        for workers, batched in ((0, True), (2, True), (0, False)):
            dataset = run_study(cache=RenderCache(), workers=workers,
                                batched=batched, **STUDY)
            path = tmp_path / f"w{workers}_b{batched}.json"
            dataset.save(str(path))
            blobs.add(path.read_bytes())
        serial_path = tmp_path / "serial.json"
        serial.save(str(serial_path))
        blobs.add(serial_path.read_bytes())
        assert len(blobs) == 1

    def test_sub_batch_split_is_invisible(self, serial, monkeypatch):
        """Forcing tiny sub-batches (_MAX_BATCH=2) must not change bytes —
        splitting a group can only change amortization, never rows."""
        import repro.population.study as study_mod
        monkeypatch.setattr(study_mod, "_MAX_BATCH", 2)
        tiny = run_study(cache=RenderCache(), workers=0, **STUDY)
        assert tiny == serial

    def test_full_battery_batched_equals_serial(self):
        """All 11 vectors — audio and comparator — through the driver:
        grouping by (vector, stack) must not change a single byte."""
        kw = dict(user_count=12, iterations=3, vectors=FULL_BATTERY, seed=29)
        serial = run_study(cache=RenderCache(), workers=0, batched=False, **kw)
        batched = run_study(cache=RenderCache(), workers=0, **kw)
        assert batched == serial


class TestCacheCrashSafety:
    def _populated(self, path):
        cache = RenderCache(disk_path=path)
        cache.put("k1", "v1")
        cache.put("k2", "v2")
        return cache

    def test_persist_then_load_round_trips(self, tmp_path):
        path = str(tmp_path / "cache.json")
        self._populated(path).persist()
        fresh = RenderCache(disk_path=path)
        assert fresh.get("k1") == "v1" and fresh.get("k2") == "v2"
        assert fresh.disk_loads == 2

    def test_persist_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "cache.json")
        self._populated(path).persist()
        assert sorted(os.listdir(tmp_path)) == ["cache.json"]

    def test_persist_replaces_atomically(self, tmp_path):
        """An existing file is replaced whole — never appended or truncated
        in place — so a reader mid-persist sees old or new, not torn."""
        path = str(tmp_path / "cache.json")
        self._populated(path).persist()
        cache = RenderCache(disk_path=path)
        cache.get("k1")
        cache.put("k3", "v3")
        cache.persist()
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)  # valid JSON, complete new content
        assert payload["entries"] == {"k1": "v1", "k2": "v2", "k3": "v3"}

    @pytest.mark.parametrize("garbage", [
        b"",                         # truncated to nothing
        b'{"format": 1, "entries"',  # torn mid-write (pre-atomic-writer file)
        b"[1, 2, 3]",                # not an object
        b'{"format": 1, "entries": [1, 2]}',  # entries wrong shape
        b"\x00\xff\x00\xff",         # binary garbage
    ])
    def test_unreadable_file_degrades_to_cold_cache(self, tmp_path, garbage):
        path = tmp_path / "cache.json"
        path.write_bytes(garbage)
        cache = RenderCache(disk_path=str(path))
        assert len(cache) == 0 and cache.disk_loads == 0
        cache.put("k", "v")
        cache.persist()  # and the bad file is recoverable by persisting over it
        assert RenderCache(disk_path=str(path)).get("k") == "v"

    def test_unreadable_directory_degrades_to_cold_cache(self, tmp_path):
        unreadable = tmp_path / "dir-not-file"
        unreadable.mkdir()
        cache = RenderCache(disk_path=str(unreadable))
        assert len(cache) == 0

    def test_non_string_entries_are_skipped(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps(
            {"format": 1, "entries": {"good": "v", "bad": 7}}))
        cache = RenderCache(disk_path=str(path))
        assert len(cache) == 1 and cache.disk_loads == 1
