"""The service's robustness envelope: typed load shedding under
backpressure, monotonic deadlines, circuit-breaker degradation serving
stale-snapshot answers, front-door validation, and the satellite pin
that wall-clock steps can never fire deadlines early."""
import asyncio
import glob
import os
import time

import pytest

from repro import FaultPlan, Recorder, run_study
from repro.resilience import Fault
from repro.resilience.faults import ENV_VAR
from repro.service import (SHED_DEADLINE, SHED_QUEUE_FULL, SHED_STOPPING,
                           CircuitBreaker, FingerprintService, IngestAccepted,
                           IngestShed, MalformedVisitError, ServiceConfig,
                           ServiceStopped, UnknownVectorError, Visit,
                           visits_from_dataset)

STUDY = dict(user_count=8, iterations=4, vectors=("dc",), seed=31)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


@pytest.fixture(scope="module")
def visits():
    dataset = run_study(workers=0, **STUDY)
    return visits_from_dataset(dataset, seed=5)


class FakeClock:
    """A controllable monotonic clock: advances by ``step`` per call,
    plus whatever the test adds to ``t`` directly."""

    def __init__(self, step=0.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


def _visit(visit_id="v1", user="u1", vector="dc", efp="a" * 32, **over):
    base = dict(visit_id=visit_id, user=user, os="linux", browser="chrome",
                efps={vector: efp})
    base.update(over)
    return base


class TestFrontDoorValidation:
    def _service(self, tmp_path):
        return FingerprintService(str(tmp_path / "svc"), ("dc",))

    @pytest.mark.parametrize("field", ["visit_id", "user", "os", "browser"])
    def test_missing_or_empty_field_named(self, tmp_path, field):
        service = self._service(tmp_path)
        with pytest.raises(MalformedVisitError) as err:
            service._validate(_visit(**{field: ""}))
        assert err.value.field == field

    def test_unknown_vector_reuses_registry_error(self, tmp_path):
        """The service front door and ``run_study`` speak the same typed
        error for the same mistake."""
        service = self._service(tmp_path)
        with pytest.raises(UnknownVectorError):
            service._validate(_visit(efps={"no-such-vector": "a" * 32}))

    def test_registered_but_unserved_vector_is_malformed(self, tmp_path):
        service = self._service(tmp_path)
        with pytest.raises(MalformedVisitError) as err:
            service._validate(_visit(efps={"fft": "a" * 32}))
        assert err.value.field == "efps"

    @pytest.mark.parametrize("bad", ["", "xyz", "A" * 32, "a" * 31, 7, None])
    def test_non_hex_efp_rejected(self, tmp_path, bad):
        service = self._service(tmp_path)
        with pytest.raises(MalformedVisitError) as err:
            service._validate(_visit(efps={"dc": bad}))
        assert "hex" in err.value.reason

    def test_empty_efps_rejected(self, tmp_path):
        service = self._service(tmp_path)
        with pytest.raises(MalformedVisitError):
            service._validate(_visit(efps={}))

    def test_unknown_service_vector_rejected_at_construction(self, tmp_path):
        with pytest.raises(UnknownVectorError):
            FingerprintService(str(tmp_path / "svc"), ("dc", "bogus"))

    def test_requests_before_start_and_after_stop_raise(self, tmp_path):
        service = self._service(tmp_path)

        async def go():
            with pytest.raises(ServiceStopped):
                await service.ingest(_visit())
            with pytest.raises(ServiceStopped):
                await service.lookup("u1")
            await service.start()
            await service.stop()
            with pytest.raises(ServiceStopped):
                await service.ingest(_visit())
        asyncio.run(go())


class TestIngestAndDetection:
    def test_stream_ingest_answers_and_detects(self, tmp_path):
        dataset = run_study(workers=0, **STUDY)
        stream = visits_from_dataset(dataset, seed=2, spoof_fraction=0.3,
                                     bot_fraction=0.2)
        service = FingerprintService(str(tmp_path / "svc"), STUDY["vectors"])

        async def go():
            await service.start()
            results = [await service.ingest(v) for v in stream]
            await service.stop()
            return results
        results = asyncio.run(go())
        assert all(isinstance(r, IngestAccepted) for r in results)
        assert all(r.identities and r.anonymity_sets for r in results)
        detections = [d for r in results for d in r.detections]
        assert "spoof_inconsistency" in detections
        assert "bot_signature" in detections
        assert service.state.detections["spoof_inconsistency"] > 0
        assert service.state.detections["bot_signature"] > 0

    def test_duplicate_visit_acks_without_reapplying(self, tmp_path, visits):
        service = FingerprintService(str(tmp_path / "svc"), STUDY["vectors"])

        async def go():
            await service.start()
            first = await service.ingest(visits[0])
            applied = service.state.applied
            again = await service.ingest(visits[0])
            await service.stop()
            return first, again, applied
        first, again, applied = asyncio.run(go())
        assert not first.duplicate and again.duplicate
        assert again.identities == first.identities
        assert service.state.applied == applied == 1
        assert service.counts["duplicates"] == 1

    def test_lookup_answers_identity_and_anonymity(self, tmp_path, visits):
        service = FingerprintService(str(tmp_path / "svc"), STUDY["vectors"])

        async def go():
            await service.start()
            for visit in visits:
                await service.ingest(visit)
            hit = await service.lookup(visits[0].user)
            miss = await service.lookup("never-seen")
            await service.stop()
            return hit, miss
        hit, miss = asyncio.run(go())
        assert hit.found and not hit.degraded
        assert hit.identities["dc"] \
            == service.state.collators["dc"].identity(visits[0].user)
        assert hit.anonymity_sets["dc"] >= 1
        assert not miss.found


class TestBackpressure:
    def test_queue_full_sheds_typed_at_front_door(self, tmp_path, visits,
                                                  monkeypatch):
        """With the consumer stalled and a 2-slot queue, the overflow
        visit is refused synchronously with ``queue_full`` — typed,
        unlogged, never silently dropped."""
        monkeypatch.setattr("repro.resilience.faults.slow_consumer",
                            lambda: 0.2)
        service = FingerprintService(
            str(tmp_path / "svc"), STUDY["vectors"],
            config=ServiceConfig(queue_limit=2, batch_max=1))

        async def go():
            await service.start()
            # the four tasks run in creation order on the next loop tick:
            # the first two fill the 2-slot queue, the last two find it
            # full before the (stalled) consumer frees anything
            tasks = [asyncio.create_task(service.ingest(v))
                     for v in visits[:4]]
            results = await asyncio.gather(*tasks)
            await service.stop()
            return results
        results = asyncio.run(go())
        assert [isinstance(r, IngestAccepted) for r in results] \
            == [True, True, False, False]
        assert all(r.reason == SHED_QUEUE_FULL for r in results[2:])
        assert service.counts["shed_queue_full"] == 2
        # the shed visits never reached the WAL
        assert visits[2].visit_id not in service.state.seen
        assert visits[3].visit_id not in service.state.seen

    def test_expired_queue_entries_shed_with_deadline_reason(self, tmp_path,
                                                             visits,
                                                             monkeypatch):
        """A visit whose monotonic deadline passes while it waits in the
        queue is answered ``deadline_exceeded`` and is neither logged
        nor applied."""
        monkeypatch.setattr("repro.resilience.faults.slow_consumer",
                            lambda: 0.05)
        clock = FakeClock()
        service = FingerprintService(
            str(tmp_path / "svc"), STUDY["vectors"],
            config=ServiceConfig(batch_max=8, ingest_deadline_s=2.0),
            clock=clock)

        async def go():
            await service.start()
            task = asyncio.create_task(service.ingest(visits[0]))
            await asyncio.sleep(0)       # enqueued; consumer stalling
            clock.t += 10.0              # its deadline sails past
            result = await task
            await service.stop()
            return result
        result = asyncio.run(go())
        assert isinstance(result, IngestShed)
        assert result.reason == SHED_DEADLINE
        assert service.counts["shed_deadline"] == 1
        assert service.state.applied == 0

    def test_ingest_during_stop_sheds_stopping(self, tmp_path, visits,
                                               monkeypatch):
        monkeypatch.setattr("repro.resilience.faults.slow_consumer",
                            lambda: 0.1)
        service = FingerprintService(str(tmp_path / "svc"), STUDY["vectors"])

        async def go():
            await service.start()
            await service.ingest(visits[0])
            stopper = asyncio.create_task(service.stop())
            await asyncio.sleep(0.02)  # stop() is draining the sentinel
            late = await service.ingest(visits[1])
            await stopper
            return late
        late = asyncio.run(go())
        assert isinstance(late, IngestShed)
        assert late.reason == SHED_STOPPING

    def test_slow_consumer_fault_plan_drives_backpressure(self, tmp_path,
                                                          visits,
                                                          monkeypatch):
        """The same $REPRO_FAULTS plan machinery the render pipeline uses
        stalls the service consumer (seed-deterministic, ledger-counted)."""
        plan = FaultPlan(seed=4, faults=(
            Fault(kind="slow_consumer", keys=("consumer",), times=2,
                  seconds=0.05),))
        monkeypatch.setenv(ENV_VAR, plan.save(str(tmp_path / "plan.json")))
        service = FingerprintService(str(tmp_path / "svc"), STUDY["vectors"])

        async def go():
            await service.start()
            t0 = time.monotonic()
            for visit in visits[:3]:
                await service.ingest(visit)
            stalled = time.monotonic() - t0
            await service.stop()
            return stalled
        stalled = asyncio.run(go())
        assert stalled >= 0.05  # the injected stall really happened
        # the ledger capped it at `times` occurrences
        assert len(glob.glob(os.path.join(
            str(tmp_path), "plan.json.ledger", "*"))) == 2


class TestCircuitBreaker:
    def _miss_driven_service(self, tmp_path, clock):
        return FingerprintService(
            str(tmp_path / "svc"), STUDY["vectors"],
            config=ServiceConfig(breaker_window=8, breaker_min_samples=4,
                                 breaker_threshold=0.5,
                                 breaker_cooldown_s=5.0,
                                 snapshot_every=4),
            clock=clock)

    def test_unit_transitions(self):
        clock = FakeClock()
        breaker = CircuitBreaker(window=4, min_samples=2, threshold=0.5,
                                 cooldown_s=10.0, clock=clock)
        assert breaker.allow_live()
        breaker.record(True)
        assert breaker.state == breaker.CLOSED  # below min_samples
        breaker.record(True)
        assert breaker.state == breaker.OPEN and breaker.trips == 1
        assert not breaker.allow_live()         # cooling down
        clock.t += 11.0
        assert breaker.allow_live()             # the half-open probe
        assert breaker.state == breaker.HALF_OPEN
        assert not breaker.allow_live()         # only one probe at a time
        breaker.record(False)
        assert breaker.state == breaker.CLOSED

    def test_probe_miss_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(window=4, min_samples=2, threshold=0.5,
                                 cooldown_s=10.0, clock=clock)
        breaker.record(True)
        breaker.record(True)
        clock.t += 11.0
        assert breaker.allow_live()
        breaker.record(True)                    # the probe missed too
        assert breaker.state == breaker.OPEN and breaker.trips == 2

    def test_sustained_misses_degrade_then_recover(self, tmp_path, visits):
        """The integration arc: slow lookups trip the breaker; open-state
        lookups are served from the last snapshot flagged
        ``degraded=True`` (answered, not errored); after cooldown the
        half-open probe closes it and answers go live again."""
        clock = FakeClock()
        service = self._miss_driven_service(tmp_path, clock)
        user = visits[0].user

        async def go():
            await service.start()
            for visit in visits:
                await service.ingest(visit)
            assert service.counts["snapshot_writes"] >= 1

            clock.step = 1.0  # every live lookup now blows its deadline
            slow = [await service.lookup(user) for _ in range(4)]
            assert all(r.deadline_missed and r.degraded for r in slow)
            assert service.breaker.state == service.breaker.OPEN

            clock.step = 0.0  # latency recovers, but the breaker is open
            degraded = await service.lookup(user)
            assert degraded.degraded and not degraded.deadline_missed
            assert degraded.found
            assert degraded.identities["dc"] \
                == service.state.collators["dc"].identity(user)

            clock.t += 10.0   # cooldown elapses: next lookup is the probe
            probe = await service.lookup(user)
            assert not probe.degraded
            assert service.breaker.state == service.breaker.CLOSED
            live = await service.lookup(user)
            assert not live.degraded
            await service.stop()
        asyncio.run(go())
        assert service.counts["lookup_deadline_misses"] == 4
        assert service.counts["lookups_degraded"] == 1
        assert service.breaker.trips == 1

    def test_degraded_staleness_is_reported(self, tmp_path, visits):
        """Visits applied after the last snapshot show up as
        ``stale_by_visits`` on degraded answers."""
        clock = FakeClock()
        service = FingerprintService(
            str(tmp_path / "svc"), STUDY["vectors"],
            config=ServiceConfig(breaker_min_samples=2, breaker_window=4,
                                 breaker_cooldown_s=100.0,
                                 snapshot_every=10 ** 6),
            clock=clock)

        async def go():
            await service.start()
            for visit in visits[:6]:
                await service.ingest(visit)
            clock.step = 1.0
            for _ in range(2):
                await service.lookup(visits[0].user)
            clock.step = 0.0
            degraded = await service.lookup(visits[0].user)
            await service.stop()
            return degraded
        degraded = asyncio.run(go())
        assert degraded.degraded
        # no snapshot ever written: the stale view is recovery-time (empty
        # dir => zero applied), so staleness equals everything since then
        assert degraded.stale_by_visits == 6
        assert not degraded.found


class TestMonotonicClockDiscipline:
    def test_wall_clock_step_cannot_fire_deadlines_early(self, tmp_path,
                                                         visits,
                                                         monkeypatch):
        """Satellite pin: step the *wall* clock wildly (NTP jump, DST,
        leap smear) during a run — deadlines, the breaker, and shedding
        are all driven by ``time.monotonic`` and must not notice."""
        jump = {"n": 0}
        real_time = time.time

        def stepping_wall_clock():
            jump["n"] += 1
            return real_time() + (10 ** 6 if jump["n"] % 2 else -(10 ** 6))
        monkeypatch.setattr(time, "time", stepping_wall_clock)

        service = FingerprintService(str(tmp_path / "svc"), STUDY["vectors"],
                                     recorder=Recorder())

        async def go():
            await service.start()
            for visit in visits:
                await service.ingest(visit)
            results = [await service.lookup(v.user) for v in visits[:5]]
            await service.stop()
            return results
        results = asyncio.run(go())
        assert all(not r.degraded and not r.deadline_missed for r in results)
        assert service.counts["shed_deadline"] == 0
        assert service.counts["lookup_deadline_misses"] == 0
        assert service.breaker.trips == 0

    def test_no_wall_clock_in_deadline_sources(self):
        """Tripwire: nothing under repro.resilience or repro.service may
        call ``time.time()`` — every deadline/backoff instant must come
        from the monotonic clock. (The obs layer legitimately stamps
        events with wall time.)"""
        root = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
        offenders = []
        for package in ("resilience", "service"):
            for path in glob.glob(os.path.join(root, package, "*.py")):
                with open(path, encoding="utf-8") as fh:
                    if "time.time(" in fh.read():
                        offenders.append(os.path.basename(path))
        assert offenders == []


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"queue_limit": 0}, {"batch_max": -1}, {"sync_every": 0},
        {"snapshot_every": 0}, {"ingest_deadline_s": 0.0},
        {"lookup_deadline_s": -1.0}, {"breaker_cooldown_s": 0.0},
        {"breaker_threshold": 0.0}, {"breaker_threshold": 1.5},
        {"breaker_window": 0}, {"breaker_min_samples": 0},
    ])
    def test_bad_config_rejected_by_name(self, kwargs):
        with pytest.raises(ValueError, match=next(iter(kwargs))):
            ServiceConfig(**kwargs)

    def test_vectors_must_be_nonempty_and_unique(self, tmp_path):
        with pytest.raises(ValueError):
            FingerprintService(str(tmp_path / "a"), ())
        with pytest.raises(ValueError):
            FingerprintService(str(tmp_path / "b"), ("dc", "dc"))
