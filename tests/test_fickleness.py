"""Fickleness smoke test — Table 1's shape criterion, asserted cheaply:
with the jitter model enabled, DC yields exactly 1 distinct eFP per user
over 30 iterations while FFT yields >= 2 for at least one user in a
100-user study.
"""
import pytest

from repro import run_study

pytestmark = pytest.mark.fickleness


@pytest.fixture(scope="module")
def study():
    return run_study(user_count=100, iterations=30,
                     vectors=("dc", "fft"), seed=2021)


def test_dc_perfectly_stable(study):
    counts = study.distinct_counts("dc")
    assert len(counts) == 100
    assert set(counts.values()) == {1}


def test_fft_fickle_for_someone(study):
    counts = study.distinct_counts("fft")
    assert max(counts.values()) >= 2


def test_fft_stable_for_someone(study):
    """The other side of Table 1: Min = 1 — unloaded users leave exactly
    one print even on the fickle vectors."""
    counts = study.distinct_counts("fft")
    assert min(counts.values()) == 1


def test_fickleness_has_a_tail(study):
    """Most users leave few prints; the loaded tail leaves more (the
    paper's Fig. 3 shape, coarsely)."""
    counts = sorted(study.distinct_counts("fft").values())
    assert counts[len(counts) // 2] <= 4   # median small
    assert counts[-1] >= 3                 # tail exists
