"""The shared crash-safe writer (repro.io): torn-write simulations prove
datasets, run reports and analysis reports are never left partial."""
import json
import os

import pytest

from repro import RenderCache, run_study
from repro.io import atomic_write_json, atomic_write_text


class TestAtomicWriteHelpers:
    def test_writes_newline_terminated_json(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write_json(str(path), {"a": 1})
        assert path.read_text() == '{"a": 1}\n'
        assert list(tmp_path.iterdir()) == [path]  # no stray temp files

    def test_creates_missing_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "x.json"
        atomic_write_json(str(path), [1, 2])
        assert json.loads(path.read_text()) == [1, 2]

    def test_unserializable_payload_never_touches_target(self, tmp_path):
        """Serialization happens before any file I/O: a payload that blows
        up mid-encode leaves the previous complete file in place."""
        path = tmp_path / "x.json"
        atomic_write_json(str(path), {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(str(path), {"ok": True, "boom": object()})
        assert json.loads(path.read_text()) == {"ok": True}
        assert list(tmp_path.iterdir()) == [path]

    def test_crash_during_write_keeps_old_file(self, tmp_path, monkeypatch):
        """Simulated crash between write and rename (fsync raises): the
        target keeps its old complete contents, the temp file is gone."""
        path = tmp_path / "x.json"
        atomic_write_text(str(path), "old complete contents")

        def exploding_fsync(fd):
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(str(path), "new partial contents")
        assert path.read_text() == "old complete contents"
        assert list(tmp_path.iterdir()) == [path]

    def test_failed_replace_cleans_up_temp_file(self, tmp_path, monkeypatch):
        """The rename itself failing (read-only target dir, ENOSPC on some
        filesystems) must not strand the fully-written temp file."""
        path = tmp_path / "x.json"
        atomic_write_text(str(path), "old complete contents")

        def exploding_replace(src, dst):
            raise OSError("simulated replace failure")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated replace"):
            atomic_write_text(str(path), "never lands")
        monkeypatch.undo()
        assert path.read_text() == "old complete contents"
        assert list(tmp_path.iterdir()) == [path]

    def test_unlink_failure_does_not_mask_write_error(self, tmp_path,
                                                      monkeypatch):
        """When cleanup itself fails, the caller still sees the original
        write error, not the secondary unlink error."""
        path = tmp_path / "x.json"
        monkeypatch.setattr(os, "fsync", lambda fd: (_ for _ in ()).throw(
            OSError("the real failure")))
        monkeypatch.setattr(os, "unlink", lambda p: (_ for _ in ()).throw(
            OSError("cleanup also failed")))
        with pytest.raises(OSError, match="the real failure"):
            atomic_write_text(str(path), "doomed")

    def test_fdopen_failure_closes_descriptor(self, tmp_path, monkeypatch):
        """If wrapping the raw fd fails, the fd is closed (no descriptor
        leak) and no temp file is left behind."""
        closed = []
        real_close = os.close

        def counting_close(fd):
            closed.append(fd)
            real_close(fd)

        def exploding_fdopen(fd, *args, **kwargs):
            monkeypatch.setattr(os, "close", counting_close)
            raise LookupError("unknown encoding: simulated")

        monkeypatch.setattr(os, "fdopen", exploding_fdopen)
        with pytest.raises(LookupError):
            atomic_write_text(str(tmp_path / "x.json"), "text")
        monkeypatch.undo()
        assert len(closed) == 1
        assert list(tmp_path.iterdir()) == []


class TestDatasetSave:
    def test_torn_save_keeps_previous_dataset(self, tmp_path):
        dataset = run_study(user_count=3, iterations=2, vectors=("dc",),
                            seed=1, workers=0)
        path = tmp_path / "ds.json"
        dataset.save(str(path))
        good = path.read_bytes()

        broken = run_study(user_count=3, iterations=2, vectors=("dc",),
                           seed=2, workers=0)
        broken.users[0]["poison"] = object()  # json.dumps will raise
        with pytest.raises(TypeError):
            broken.save(str(path))
        assert path.read_bytes() == good
        assert list(tmp_path.iterdir()) == [path]


class TestRunStudyReport:
    def test_torn_report_keeps_previous_report(self, tmp_path, monkeypatch):
        path = tmp_path / "report.json"
        run_study(user_count=3, iterations=2, vectors=("dc",), seed=1,
                  workers=0, report_path=str(path))
        good = json.loads(path.read_text())

        import repro.obs.report as obs_report
        real_build = obs_report.build_report

        def poisoned_build(*args, **kwargs):
            report = real_build(*args, **kwargs)
            report["poison"] = object()
            return report

        monkeypatch.setattr(obs_report, "build_report", poisoned_build)
        with pytest.raises(TypeError):
            run_study(user_count=3, iterations=2, vectors=("dc",), seed=2,
                      workers=0, report_path=str(path))
        assert json.loads(path.read_text()) == good
        assert list(tmp_path.iterdir()) == [path]


class TestCachePersist:
    def test_crash_mid_persist_keeps_old_cache(self, tmp_path, monkeypatch):
        path = str(tmp_path / "cache.json")
        cache = RenderCache(disk_path=path)
        cache.put("k", "old")
        cache.persist()

        cache.put("k", "new")
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (_ for _ in ()).throw(OSError("crash")))
        with pytest.raises(OSError):
            cache.persist()
        monkeypatch.undo()
        assert RenderCache(disk_path=path).get("k") == "old"
        assert os.listdir(tmp_path) == ["cache.json"]


class TestDirectoryFsync:
    """The rename durability gap (satellite): after ``os.replace`` the
    new name lives only in the directory entry until the directory
    itself is fsync'd — every atomic writer must pay that fsync, and a
    kernel refusing it must not be papered over."""

    def test_atomic_writers_fsync_the_containing_directory(self, tmp_path,
                                                           monkeypatch):
        import repro.io as io_mod
        synced = []
        real = io_mod.fsync_dir
        monkeypatch.setattr(io_mod, "fsync_dir",
                            lambda d: (synced.append(d), real(d)))
        io_mod.atomic_write_text(str(tmp_path / "a.json"), "{}")
        io_mod.atomic_write_chunks(str(tmp_path / "b.json"), ["{", "}"])
        assert synced == [str(tmp_path), str(tmp_path)]

    def test_injected_dir_fsync_failure_propagates(self, tmp_path,
                                                   monkeypatch):
        """A real fsync failure (EIO) on the directory must surface:
        returning success would claim durability the kernel refused."""
        from repro.io import atomic_write_text
        target = tmp_path / "x.json"
        atomic_write_text(str(target), "old")

        real_fsync = os.fsync

        def failing_dir_fsync(fd):
            if os.fstat(fd).st_mode & 0o40000:  # only directory fds fail
                raise OSError(5, "Input/output error")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", failing_dir_fsync)
        with pytest.raises(OSError, match="Input/output"):
            atomic_write_text(str(target), "new")
        monkeypatch.undo()
        # the rename itself happened; only its durability promise failed
        assert target.read_text() == "new"

    def test_unsupported_dir_fsync_is_skipped(self, tmp_path, monkeypatch):
        """EINVAL/ENOTSUP (network mounts, platforms without directory
        fds) degrade gracefully — nothing stronger exists there."""
        import errno
        from repro.io import atomic_write_text

        def unsupported_fsync(fd):
            if os.fstat(fd).st_mode & 0o40000:
                raise OSError(errno.EINVAL, "Invalid argument")

        monkeypatch.setattr(os, "fsync", unsupported_fsync)
        atomic_write_text(str(tmp_path / "x.json"), "ok")
        assert (tmp_path / "x.json").read_text() == "ok"

    def test_unopenable_directory_is_skipped(self, monkeypatch, tmp_path):
        from repro.io import fsync_dir
        real_open = os.open

        def no_dir_fds(path, flags, *a, **kw):
            raise OSError("directory fds unsupported")

        monkeypatch.setattr(os, "open", no_dir_fds)
        fsync_dir(str(tmp_path))  # must not raise
        monkeypatch.undo()
        assert real_open is os.open
