"""Chrome trace-event export: report/sidecar -> {"traceEvents": [...]},
clock rebasing across pool-worker pids, and the --check round trip."""
import json

import pytest

from repro import RenderCache, run_study
from repro.obs import make_event, read_events
from repro.obs.trace import build_trace, main, validate_trace


@pytest.fixture(scope="module")
def run_artifacts(tmp_path_factory):
    """One pooled instrumented run: report + events sidecar."""
    base = tmp_path_factory.mktemp("trace_run")
    report_path = str(base / "report.json")
    events_path = str(base / "events.jsonl")
    run_study(8, iterations=3, vectors=("dc", "fft", "hybrid"), seed=11,
              cache=RenderCache(), workers=2, report_path=report_path,
              event_log_path=events_path)
    return report_path, events_path


class TestBuildTrace:
    def test_spans_become_complete_events(self, run_artifacts):
        report_path, _ = run_artifacts
        report = json.load(open(report_path))
        trace = build_trace(spans=report["spans"])
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} >= {"plan", "render", "assemble"}
        for entry in xs:
            assert entry["ts"] >= 0 and entry["dur"] >= 0  # microseconds

    def test_events_become_instants_with_their_pid(self, run_artifacts):
        _, events_path = run_artifacts
        events, _ = read_events(events_path)
        trace = build_trace(events=events)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(events)
        pids = {e["pid"] for e in instants}
        assert len(pids) >= 2, "worker events must keep their own pid lane"
        # each pid gets a process_name metadata record
        named = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "M"}
        assert pids <= named

    def test_foreign_pids_are_rebased_onto_the_anchor_timeline(self):
        """A worker's raw perf_counter clock (epoch 0, arbitrarily far
        from the anchor's) must land between the anchor events around its
        merge point, preserving its own relative spacing."""
        anchor = [
            dict(make_event("study.start", epoch=0.0), seq=0,
                 t_mono_s=1.0, pid=10),
            dict(make_event("study.end", epoch=0.0), seq=3,
                 t_mono_s=9.0, pid=10),
        ]
        worker = [
            dict(make_event("render.batch", batch_size=4), seq=1,
                 t_mono_s=1000.0, pid=20),
            dict(make_event("render.batch", batch_size=4), seq=2,
                 t_mono_s=1000.5, pid=20),
        ]
        trace = build_trace(events=anchor + worker, anchor_pid=10)
        instants = {(-e["pid"], e["ts"]): e for e in trace["traceEvents"]
                    if e["ph"] == "i"}
        worker_ts = sorted(e["ts"] for e in trace["traceEvents"]
                           if e["ph"] == "i" and e["pid"] == 20)
        # first worker event pinned to the preceding anchor event (t=1.0)
        assert worker_ts[0] == pytest.approx(1.0e6)
        # relative spacing preserved (0.5 s = 5e5 µs)
        assert worker_ts[1] - worker_ts[0] == pytest.approx(0.5e6)
        assert instants  # sanity: instants exist

    def test_validate_trace_flags_garbage(self):
        assert validate_trace([]) == ["trace is not a JSON object"]
        assert validate_trace({}) == ["traceEvents must be an array"]
        bad = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1},
            {"ph": "X", "name": "plan", "pid": 1, "ts": -1, "dur": 2},
            {"ph": "i", "name": "not.a.kind", "pid": 1, "ts": 0},
        ]}
        problems = validate_trace(bad)
        assert any("unsupported ph" in p for p in problems)
        assert any("non-negative ts" in p for p in problems)
        assert any("not a known event kind" in p for p in problems)


class TestTraceCLI:
    def test_report_export_round_trips_through_check(self, run_artifacts,
                                                     tmp_path, capsys):
        report_path, _ = run_artifacts
        out = str(tmp_path / "study.trace.json")
        assert main([report_path, "--out", out]) == 0
        capsys.readouterr()
        trace = json.load(open(out))  # valid JSON document
        assert validate_trace(trace) == []
        assert {e["ph"] for e in trace["traceEvents"]} == {"M", "X", "i"}
        assert main([out, "--check"]) == 0  # the exported trace re-validates

    def test_events_only_export(self, run_artifacts, tmp_path, capsys):
        _, events_path = run_artifacts
        out = str(tmp_path / "events.trace.json")
        assert main([events_path, "--out", out]) == 0
        capsys.readouterr()
        trace = json.load(open(out))
        assert all(e["ph"] in ("M", "i") for e in trace["traceEvents"])

    def test_missing_input_fails(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json"), "--check"]) == 2
        assert "no input" in capsys.readouterr().err

    def test_non_report_json_fails(self, tmp_path, capsys):
        path = str(tmp_path / "other.json")
        json.dump({"kind": "something.else"}, open(path, "w"))
        assert main([path, "--check"]) == 2
        assert "neither a trace document nor" in capsys.readouterr().err
