"""Service durability: WAL torn-tail repair, snapshot quarantine, and
the kill-replay determinism pins — a service killed mid-ingest at three
different offsets (mid-WAL-record, pre-snapshot-commit, post-snapshot)
replays + re-ingests to byte-identical identity state, including one
real ``SIGKILL`` delivered to the CLI."""
import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import FaultPlan, run_study
from repro.resilience import Fault
from repro.resilience.faults import ENV_VAR, SNAPSHOT_KEY, WAL_KEY
from repro.service import (FingerprintService, ServiceConfig, ServiceCrashed,
                           SnapshotStore, WriteAheadLog, read_wal,
                           visits_from_dataset)

STUDY = dict(user_count=10, iterations=5, vectors=("dc", "fft"), seed=23)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


@pytest.fixture(scope="module")
def visits():
    dataset = run_study(workers=0, **STUDY)
    return visits_from_dataset(dataset, seed=5, spoof_fraction=0.2,
                               bot_fraction=0.1)


def _run(service, stream, *, expect_crash=False):
    """Drive ``stream`` through ``service`` on a fresh event loop;
    returns the visits ingested before an (expected) injected crash."""
    async def go():
        await service.start()
        done = 0
        try:
            for visit in stream:
                await service.ingest(visit)
                done += 1
        except ServiceCrashed:
            if not expect_crash:
                raise
        await service.stop()
        return done
    return asyncio.run(go())


def _reference_bytes(visits, tmp_path, **config):
    service = FingerprintService(str(tmp_path / "ref"), STUDY["vectors"],
                                 config=ServiceConfig(**config))
    _run(service, visits)
    return service.state_bytes()


class TestWriteAheadLog:
    def test_append_read_roundtrip_and_offsets(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path)
        records = [{"visit_id": f"v{i}", "n": i} for i in range(5)]
        for record in records:
            wal.append(record)
        assert wal.offset == os.path.getsize(path)
        wal.close()
        loaded, torn, problems = read_wal(path)
        assert loaded == records
        assert not torn and problems == []

    def test_read_from_offset_skips_snapshotted_prefix(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path)
        wal.append({"visit_id": "a"})
        midpoint = wal.offset
        wal.append({"visit_id": "b"})
        wal.close()
        loaded, _, _ = read_wal(path, midpoint)
        assert [r["visit_id"] for r in loaded] == ["b"]

    def test_torn_tail_tolerated_by_reader_and_repaired_on_open(
            self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path)
        wal.append({"visit_id": "a"})
        wal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"visit_id": "b", "tor')  # the kill lands here
        loaded, torn, problems = read_wal(path)
        assert [r["visit_id"] for r in loaded] == ["a"]
        assert torn and problems
        reopened = WriteAheadLog(path)
        assert reopened.torn_tail_repaired
        reopened.append({"visit_id": "c"})
        reopened.close()
        loaded, torn, _ = read_wal(path)
        assert [r["visit_id"] for r in loaded] == ["a", "c"]
        assert not torn
        assert "tor" in open(path + ".corrupt").read()

    def test_corrupt_mid_file_record_is_a_hard_problem(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"visit_id": "a"}\ngarbage\n{"visit_id": "b"}\n')
        loaded, torn, problems = read_wal(path)
        assert [r["visit_id"] for r in loaded] == ["a"]
        assert any("corrupt" in p for p in problems)


class TestSnapshotStore:
    def test_roundtrip(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snap.json"))
        assert store.write({"x": 1}, 42)
        state, offset, problem = store.load()
        assert (state, offset, problem) == ({"x": 1}, 42, None)

    def test_missing_snapshot_means_full_replay(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snap.json"))
        assert store.load() == (None, 0, None)

    def test_torn_snapshot_is_quarantined(self, tmp_path):
        path = tmp_path / "snap.json"
        store = SnapshotStore(str(path))
        store.write({"x": 1}, 10)
        path.write_text(path.read_text()[:17])  # tear it
        state, offset, problem = store.load()
        assert state is None and offset == 0 and "unreadable" in problem
        assert not path.exists()
        assert (tmp_path / "snap.json.corrupt").exists()

    def test_foreign_payload_is_quarantined(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"kind": "something.else"}))
        state, offset, problem = SnapshotStore(str(path)).load()
        assert state is None and "malformed" in problem
        assert (tmp_path / "snap.json.corrupt").exists()


class TestKillReplayDeterminism:
    """The three crash offsets, each replayed to byte-identical state."""

    def test_kill_mid_wal_record(self, visits, tmp_path, monkeypatch):
        """Offset 1 — injected ``torn_wal`` fault kills the service mid-
        append; the rerun repairs the tail, replays, re-ingests (dedup)
        and matches the uninterrupted run byte-for-byte."""
        reference = _reference_bytes(visits, tmp_path, snapshot_every=16)
        plan = FaultPlan(seed=1, faults=(
            Fault(kind="torn_wal", keys=(WAL_KEY,), times=1),))
        monkeypatch.setenv(ENV_VAR, plan.save(str(tmp_path / "plan.json")))
        victim_dir = str(tmp_path / "victim")
        victim = FingerprintService(victim_dir, STUDY["vectors"],
                                    config=ServiceConfig(snapshot_every=16))
        done = _run(victim, visits, expect_crash=True)
        assert done < len(visits)  # it really died mid-stream
        assert victim.crashed is not None
        monkeypatch.delenv(ENV_VAR)

        revived = FingerprintService(victim_dir, STUDY["vectors"],
                                     config=ServiceConfig(snapshot_every=16))
        _run(revived, visits)  # re-send everything; visit ids dedup
        assert revived.wal.torn_tail_repaired
        assert revived.state_bytes() == reference
        assert os.path.exists(os.path.join(victim_dir, "wal.jsonl.corrupt"))

    def test_kill_pre_snapshot_commit(self, visits, tmp_path, monkeypatch):
        """Offset 2 — every snapshot write is torn (``crashed_snapshot``
        with ``times=None``), so the directory holds a torn snapshot +
        a complete WAL. Recovery quarantines the snapshot and falls back
        to a full WAL replay — byte-identical."""
        reference = _reference_bytes(visits, tmp_path, snapshot_every=16)
        plan = FaultPlan(seed=2, faults=(
            Fault(kind="crashed_snapshot", keys=(SNAPSHOT_KEY,),
                  times=None),))
        monkeypatch.setenv(ENV_VAR, plan.save(str(tmp_path / "plan.json")))
        victim_dir = str(tmp_path / "victim2")
        victim = FingerprintService(victim_dir, STUDY["vectors"],
                                    config=ServiceConfig(snapshot_every=16))
        _run(victim, visits)
        assert victim.counts["snapshot_torn"] > 0
        assert victim.counts["snapshot_writes"] == 0
        monkeypatch.delenv(ENV_VAR)

        revived = FingerprintService(victim_dir, STUDY["vectors"])
        info = revived.recover()
        assert info["snapshot_problem"] is not None
        assert not info["resumed_from_snapshot"]
        assert info["replayed"] == len(visits)
        assert revived.state_bytes() == reference
        assert os.path.exists(os.path.join(victim_dir,
                                           "snapshot.json.corrupt"))

    def test_kill_post_snapshot_with_wal_tail(self, visits, tmp_path,
                                              monkeypatch):
        """Offset 3 — a good snapshot exists, the WAL runs past it, and
        the kill tears the final record. Recovery resumes *from the
        snapshot* (not offset 0), replays only the tail, and the rerun
        matches byte-for-byte."""
        reference = _reference_bytes(visits, tmp_path, snapshot_every=8)
        victim_dir = str(tmp_path / "victim3")
        victim = FingerprintService(victim_dir, STUDY["vectors"],
                                    config=ServiceConfig(snapshot_every=8))
        # phase 1: ingest fault-free past a snapshot boundary…
        first = visits[:20]

        async def go():
            await victim.start()
            for visit in first:
                await victim.ingest(visit)
            assert victim.counts["snapshot_writes"] >= 1
            # …then arm the torn-WAL fault and keep ingesting until dead
            plan = FaultPlan(seed=3, faults=(
                Fault(kind="torn_wal", keys=(WAL_KEY,), times=1),))
            monkeypatch.setenv(ENV_VAR,
                               plan.save(str(tmp_path / "plan3.json")))
            with pytest.raises(ServiceCrashed):
                for visit in visits[20:]:
                    await victim.ingest(visit)
            await victim.stop()
        asyncio.run(go())
        monkeypatch.delenv(ENV_VAR)

        revived = FingerprintService(victim_dir, STUDY["vectors"],
                                     config=ServiceConfig(snapshot_every=8))
        _run(revived, visits)
        assert revived.recovery["resumed_from_snapshot"]
        assert revived.recovery["wal_offset"] > 0
        assert revived.recovery["replayed"] < len(visits)
        assert revived.state_bytes() == reference


class TestRealSigkill:
    def test_sigkilled_cli_rerun_matches_uninterrupted_run(self, tmp_path):
        """The CI chaos scenario, end to end: SIGKILL the CLI mid-ingest
        (a real process, a real kill), rerun the same command, and the
        final state bytes equal an uninterrupted run's in a fresh
        directory."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..",
                                         "src") + os.pathsep \
            + env.get("PYTHONPATH", "")
        env.pop(ENV_VAR, None)

        def cli(directory, state_out, *extra):
            return [sys.executable, "-m", "repro.service",
                    "--dir", directory, "--users", "8", "--iterations", "4",
                    "--vectors", "dc", "--seed", "9", "--spoof", "0.2",
                    "--state-out", state_out, "--snapshot-every", "10",
                    *extra]

        clean_state = str(tmp_path / "clean-state.json")
        subprocess.run(cli(str(tmp_path / "clean"), clean_state),
                       env=env, check=True, capture_output=True, timeout=120)

        victim_dir = str(tmp_path / "victim")
        victim_state = str(tmp_path / "victim-state.json")
        proc = subprocess.Popen(
            cli(victim_dir, victim_state, "--pace", "0.05"),
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        wal = os.path.join(victim_dir, "wal.jsonl")
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:  # wait for some durable ingests
            if os.path.exists(wal) and os.path.getsize(wal) > 200:
                break
            time.sleep(0.02)
        else:
            proc.kill()
            pytest.fail("victim never started writing its WAL")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        assert not os.path.exists(victim_state)  # it died before finishing

        rerun = subprocess.run(cli(victim_dir, victim_state),
                               env=env, check=True, capture_output=True,
                               timeout=120)
        summary = json.loads(rerun.stdout)
        assert summary["counts"]["duplicates"] > 0  # it really resumed
        with open(clean_state, "rb") as a, open(victim_state, "rb") as b:
            assert a.read() == b.read()
