"""RenderCache: bit-identity with uncached renders, LRU behavior, disk
round-trip, disabled mode."""
import json

import pytest

from repro import RenderCache, run_study
from repro.platform import AudioStack
from repro.vectors import get_vector

STACK = AudioStack("blink", "ucrt", "radix2", "blink")


class TestLRU:
    def test_get_put_and_stats(self):
        cache = RenderCache()
        key = RenderCache.make_key("dc", STACK.cache_key(), "-")
        assert cache.get(key) is None
        cache.put(key, "abc")
        assert cache.get(key) == "abc"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = RenderCache(capacity=2)
        cache.put("a", "1")
        cache.put("b", "2")
        assert cache.get("a") == "1"  # refresh a
        cache.put("c", "3")           # evicts b
        assert "b" not in cache
        assert cache.get("a") == "1"
        assert cache.get("c") == "3"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RenderCache(capacity=0)

    def test_eviction_counter(self):
        cache = RenderCache(capacity=2)
        for i in range(5):
            cache.put(str(i), "v")
        assert cache.evictions == 3
        assert cache.stats()["evictions"] == 3


class TestCounterAPI:
    def test_record_methods_drive_stats(self):
        cache = RenderCache()
        cache.record_hit(2)
        cache.record_miss(3)
        cache.record_eviction()
        cache.record_disk_load(4)
        stats = cache.stats()
        assert (stats["hits"], stats["misses"]) == (2, 3)
        assert (stats["evictions"], stats["disk_loads"]) == (1, 4)
        assert cache.hit_rate == 0.4

    def test_reset_clears_all_counters(self):
        cache = RenderCache()
        cache.record_hit()
        cache.record_miss()
        cache.record_eviction()
        cache.record_disk_load()
        cache.reset_stats()
        assert cache.stats()["hits"] == cache.stats()["misses"] == 0
        assert cache.stats()["evictions"] == cache.stats()["disk_loads"] == 0

    def test_disabled_baseline_uses_miss_counter(self):
        """The disabled-cache study path charges renders through
        record_miss, so its stats line up with the probing path's."""
        cache = RenderCache(disabled=True)
        run_study(user_count=3, iterations=2, vectors=("dc",), seed=1,
                  cache=cache, workers=0)
        assert cache.stats()["misses"] == 6
        assert cache.stats()["hits"] == 0


class TestContains:
    """``in`` routes through the same path as ``get``: it records
    hits/misses and refreshes recency, so membership probes can no
    longer silently skew the LRU order or ``stats()``."""

    def test_probe_counts_hit_and_miss(self):
        cache = RenderCache()
        cache.put("k", "v")
        assert "k" in cache
        assert "absent" not in cache
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_probe_refreshes_recency(self):
        """A probed entry becomes most-recently-used — identical to a
        get — so eviction order reflects probes too."""
        cache = RenderCache(capacity=2)
        cache.put("a", "1")
        cache.put("b", "2")
        assert "a" in cache     # refresh a via membership probe
        cache.put("c", "3")     # must evict b, not a
        assert cache.get("a") == "1"
        assert cache.get("b") is None

    def test_probe_and_get_have_identical_stats_effect(self):
        probed, gotten = RenderCache(), RenderCache()
        for cache in (probed, gotten):
            cache.put("k", "v")
        "k" in probed
        "missing" in probed
        gotten.get("k")
        gotten.get("missing")
        assert probed.stats() == gotten.stats()

    def test_disabled_cache_probe_counts_miss(self):
        cache = RenderCache(disabled=True)
        assert "k" not in cache
        assert cache.stats()["misses"] == 1


class TestBitIdentity:
    def test_cached_render_equals_uncached(self):
        """The acceptance property: for the same cache key the cached value
        is bit-identical to a fresh render."""
        cache = RenderCache()
        for name in ("dc", "fft", "hybrid"):
            vector = get_vector(name)
            for path in (None, "t1.d1.m0.p0"):
                key = RenderCache.make_key(name, STACK.cache_key(),
                                           vector.canonical_path(path))
                fresh = vector.render(STACK, path)
                cache.put(key, fresh)
                assert cache.get(key) == vector.render(STACK, path)

    def test_cached_study_equals_uncached_study(self):
        kwargs = dict(user_count=8, iterations=4, vectors=("dc", "fft"),
                      seed=7, workers=0)
        cached = run_study(cache=RenderCache(), **kwargs)
        uncached = run_study(cache=RenderCache(disabled=True), **kwargs)
        assert cached == uncached


class TestDisk:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "render_cache.json")
        cache = RenderCache(disk_path=path)
        cache.put("k1", "v1")
        cache.put("k2", "v2")
        cache.persist()

        reloaded = RenderCache(disk_path=path)
        assert reloaded.get("k1") == "v1"
        assert reloaded.get("k2") == "v2"

    def test_corrupt_file_ignored(self, tmp_path):
        path = tmp_path / "render_cache.json"
        path.write_text("{not json")
        cache = RenderCache(disk_path=str(path))
        assert len(cache) == 0

    def test_corrupt_file_quarantined_and_counted(self, tmp_path):
        """A broken cache file is moved aside as ``*.corrupt`` (so the
        next persist starts clean and the wreckage stays inspectable) and
        shows up in ``stats()``."""
        path = tmp_path / "render_cache.json"
        path.write_text("{not json")
        cache = RenderCache(disk_path=str(path))
        assert cache.stats()["corrupt_entries"] == 1
        assert not path.exists()
        quarantined = tmp_path / "render_cache.json.corrupt"
        assert quarantined.read_text() == "{not json"
        # the quarantined file never blocks a fresh persist + reload
        cache.put("k", "v")
        cache.persist()
        assert RenderCache(disk_path=str(path)).get("k") == "v"

    def test_wrong_shape_file_quarantined(self, tmp_path):
        path = tmp_path / "render_cache.json"
        path.write_text(json.dumps(["not", "a", "cache"]))
        cache = RenderCache(disk_path=str(path))
        assert len(cache) == 0
        assert cache.corrupt_entries == 1
        assert (tmp_path / "render_cache.json.corrupt").exists()

    def test_per_entry_damage_skips_entry_and_counts(self, tmp_path):
        """Damage confined to individual entries (non-string values) drops
        just those entries — the healthy ones still load — and each one
        is counted, without quarantining the whole file."""
        path = tmp_path / "render_cache.json"
        path.write_text(json.dumps(
            {"format": 1, "entries": {"good": "efp", "bad": 7, "worse": None}}))
        cache = RenderCache(disk_path=str(path))
        assert cache.get("good") == "efp"
        assert len(cache) == 1
        assert cache.stats()["corrupt_entries"] == 2
        assert path.exists()  # file itself is kept: most of it was fine

    def test_reset_stats_clears_corrupt_counter(self, tmp_path):
        path = tmp_path / "render_cache.json"
        path.write_text("garbage")
        cache = RenderCache(disk_path=str(path))
        assert cache.corrupt_entries == 1
        cache.reset_stats()
        assert cache.stats()["corrupt_entries"] == 0

    def test_persist_is_atomic_json(self, tmp_path):
        path = tmp_path / "c.json"
        cache = RenderCache(disk_path=str(path))
        cache.put("k", "v")
        cache.persist()
        payload = json.loads(path.read_text())
        assert payload["entries"] == {"k": "v"}
        assert list(tmp_path.iterdir()) == [path]  # no stray temp files

    def test_no_disk_path_is_noop(self):
        RenderCache().persist()  # must not raise

    def test_persist_creates_missing_directory(self, tmp_path):
        """benchmarks/.cache/ is generated state (untracked); the cache
        must create its directory on demand."""
        path = str(tmp_path / "nested" / "dir" / "cache.json")
        cache = RenderCache(disk_path=path)
        cache.put("k", "v")
        cache.persist()
        assert RenderCache(disk_path=path).get("k") == "v"

    def test_disk_load_counter(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RenderCache(disk_path=path)
        cache.put("k1", "v1")
        cache.put("k2", "v2")
        cache.persist()
        reloaded = RenderCache(disk_path=path)
        assert reloaded.disk_loads == 2
        assert reloaded.stats()["disk_loads"] == 2
        assert RenderCache(disk_path=path, disabled=True).disk_loads == 0


class TestDisabled:
    def test_disabled_never_stores(self):
        cache = RenderCache(disabled=True)
        cache.put("k", "v")
        assert cache.get("k") is None
        assert cache.stats()["entries"] == 0
        assert cache.misses == 1

    def test_disabled_study_counts_every_render(self):
        cache = RenderCache(disabled=True)
        run_study(user_count=3, iterations=2, vectors=("dc",), seed=1,
                  cache=cache, workers=0)
        assert cache.misses == 3 * 2
