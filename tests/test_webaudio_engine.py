"""Engine correctness: nodes, params, graph, block renderer."""
import numpy as np
import pytest

from repro.webaudio import OfflineAudioContext, RENDER_QUANTUM_FRAMES
from repro.webaudio.graph import topological_order


def _context(length=1024, rate=44100.0, channels=1):
    return OfflineAudioContext(channels, length, rate)


class TestOscillator:
    def test_sine_frequency(self):
        ctx = _context(length=4410)
        osc = ctx.create_oscillator()
        osc.frequency.value = 441.0
        osc.connect(ctx.destination)
        osc.start(0.0)
        data = ctx.start_rendering().get_channel_data(0)
        t = np.arange(4410) / 44100.0
        assert np.allclose(data, np.sin(2 * np.pi * 441.0 * t), atol=1e-9)

    def test_not_started_is_silent(self):
        ctx = _context()
        osc = ctx.create_oscillator()
        osc.connect(ctx.destination)
        assert np.all(ctx.start_rendering().get_channel_data(0) == 0.0)

    def test_start_stop_window(self):
        ctx = _context(length=1000)
        osc = ctx.create_oscillator()
        osc.connect(ctx.destination)
        osc.start(256 / 44100.0)
        osc.stop(512 / 44100.0)
        data = ctx.start_rendering().get_channel_data(0)
        assert np.all(data[:256] == 0.0)
        assert np.any(data[256:512] != 0.0)
        assert np.all(data[512:] == 0.0)

    def test_triangle_is_band_limited(self):
        """At 10 kHz/44.1 kHz only the fundamental fits below Nyquist, so the
        'triangle' collapses to a scaled sine — exactly what band-limited
        wavetable synthesis should do."""
        ctx = _context(length=2048)
        osc = ctx.create_oscillator()
        osc.type = "triangle"
        osc.frequency.value = 10000.0
        osc.connect(ctx.destination)
        osc.start(0.0)
        data = ctx.start_rendering().get_channel_data(0)
        assert np.max(np.abs(data)) <= 8.0 / np.pi ** 2 + 1e-9

    def test_unknown_type_raises(self):
        ctx = _context()
        osc = ctx.create_oscillator()
        osc.type = "noise"
        osc.connect(ctx.destination)
        osc.start(0.0)
        with pytest.raises(ValueError):
            ctx.start_rendering()


class TestGainAndParams:
    def test_constant_gain(self):
        ctx = _context()
        osc = ctx.create_oscillator()
        gain = ctx.create_gain()
        gain.gain.value = 0.25
        osc.connect(gain).connect(ctx.destination)
        osc.start(0.0)
        data = ctx.start_rendering().get_channel_data(0)

        ctx2 = _context()
        osc2 = ctx2.create_oscillator()
        osc2.connect(ctx2.destination)
        osc2.start(0.0)
        ref = ctx2.start_rendering().get_channel_data(0)
        assert np.allclose(data, 0.25 * ref)

    def test_linear_ramp(self):
        ctx = _context(length=RENDER_QUANTUM_FRAMES * 4)
        gain = ctx.create_gain()
        duration = ctx.length / ctx.sample_rate
        gain.gain.set_value_at_time(0.0, 0.0)
        gain.gain.linear_ramp_to_value_at_time(1.0, duration)
        values = gain.gain.values(0, ctx.length, ctx.sample_rate)
        expected = np.arange(ctx.length) / ctx.length
        assert np.allclose(values, expected, atol=1e-6)

    def test_set_value_holds(self):
        from repro.webaudio.param import AudioParam
        p = AudioParam(1.0)
        p.set_value_at_time(3.0, 0.5)
        v = p.values(0, 44100, 44100.0)
        assert np.all(v[:22050] == 1.0)
        assert np.all(v[22050:] == 3.0)


class TestMergerAndChannels:
    def test_merger_routes_inputs_to_channels(self):
        ctx = OfflineAudioContext(2, 512, 44100.0)
        osc = ctx.create_oscillator()
        merger = ctx.create_channel_merger(2)
        osc.connect(merger, input=1)  # only channel 1 carries signal
        merger.connect(ctx.destination)
        osc.start(0.0)
        buf = ctx.start_rendering()
        assert np.all(buf.get_channel_data(0) == 0.0)
        assert np.any(buf.get_channel_data(1) != 0.0)

    def test_merger_input_bounds(self):
        ctx = _context()
        merger = ctx.create_channel_merger(2)
        osc = ctx.create_oscillator()
        with pytest.raises(IndexError):
            osc.connect(merger, input=5)

    def test_fan_in_sums(self):
        ctx = _context()
        a, b = ctx.create_oscillator(), ctx.create_oscillator()
        a.connect(ctx.destination)
        b.connect(ctx.destination)
        a.start(0.0)
        b.start(0.0)
        data = ctx.start_rendering().get_channel_data(0)

        ctx2 = _context()
        solo = ctx2.create_oscillator()
        solo.connect(ctx2.destination)
        solo.start(0.0)
        ref = ctx2.start_rendering().get_channel_data(0)
        assert np.allclose(data, 2.0 * ref, atol=1e-12)


class TestCompressor:
    def test_reduces_loud_signal_crest(self):
        """A full-scale signal must come out of the compressor attenuated
        relative to a pass-through render (gain reduction happened)."""
        ctx = _context(length=4096)
        osc = ctx.create_oscillator()
        comp = ctx.create_dynamics_compressor()
        osc.connect(comp).connect(ctx.destination)
        osc.start(0.0)
        out = ctx.start_rendering().get_channel_data(0)
        assert comp.reduction < -1.0  # dB of gain reduction was applied
        # once the envelope settles (no pre-delay, so skip the attack
        # transient) the compressed signal sits well below full scale
        assert np.max(np.abs(out[2048:])) < 1.0

    def test_compressor_is_deterministic(self):
        def render():
            ctx = _context(length=2048)
            osc = ctx.create_oscillator()
            osc.type = "square"
            comp = ctx.create_dynamics_compressor()
            osc.connect(comp).connect(ctx.destination)
            osc.start(0.0)
            return ctx.start_rendering().get_channel_data(0)

        assert np.array_equal(render(), render())


class TestAnalyser:
    def test_peak_bin_matches_tone(self):
        ctx = _context(length=4096)
        osc = ctx.create_oscillator()
        osc.frequency.value = 43.066406  # ~ bin 2 at fftSize 2048
        analyser = ctx.create_analyser()
        osc.connect(analyser).connect(ctx.destination)
        osc.start(0.0)
        ctx.start_rendering()
        db = analyser.get_float_frequency_data()
        expected_bin = round(osc.frequency.value * analyser.fft_size / ctx.sample_rate)
        assert abs(int(np.argmax(db)) - expected_bin) <= 1

    def test_fft_size_validation(self):
        ctx = _context()
        analyser = ctx.create_analyser()
        with pytest.raises(ValueError):
            analyser.fft_size = 1000
        analyser.fft_size = 1024
        assert analyser.frequency_bin_count == 512

    def test_pass_through(self):
        ctx = _context()
        osc = ctx.create_oscillator()
        analyser = ctx.create_analyser()
        osc.connect(analyser).connect(ctx.destination)
        osc.start(0.0)
        data = ctx.start_rendering().get_channel_data(0)
        assert np.any(data != 0.0)


class TestGraphAndContext:
    def test_cycle_detection(self):
        ctx = _context()
        a, b = ctx.create_gain(), ctx.create_gain()
        a.connect(b)
        b.connect(a)
        b.connect(ctx.destination)
        with pytest.raises(ValueError, match="cycle"):
            ctx.start_rendering()

    def test_topological_order_respects_edges(self):
        ctx = _context()
        osc = ctx.create_oscillator()
        gain = ctx.create_gain()
        osc.connect(gain).connect(ctx.destination)
        order = topological_order(ctx._nodes)
        assert order.index(osc) < order.index(gain) < order.index(ctx.destination)

    def test_cross_context_connect_rejected(self):
        ctx1, ctx2 = _context(), _context()
        osc = ctx1.create_oscillator()
        with pytest.raises(ValueError):
            osc.connect(ctx2.destination)

    def test_non_quantum_aligned_length(self):
        ctx = _context(length=5000)  # 5000 = 39*128 + 8
        osc = ctx.create_oscillator()
        osc.connect(ctx.destination)
        osc.start(0.0)
        buf = ctx.start_rendering()
        assert buf.length == 5000

    def test_rendering_is_idempotent(self):
        ctx = _context()
        osc = ctx.create_oscillator()
        osc.connect(ctx.destination)
        osc.start(0.0)
        assert ctx.start_rendering() is ctx.start_rendering()

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            OfflineAudioContext(1, 0, 44100.0)
