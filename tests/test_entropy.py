"""Entropy/anonymity metric unit tests: exact values on known
distributions, bounds, multiset integrity, and exact permutation
invariance of the float results."""
import math
import random
from collections import Counter

from repro.analysis import distribution, normalized_entropy, shannon_entropy


class TestShannonEntropy:
    def test_uniform_is_log2_n(self):
        assert shannon_entropy(["a", "b", "c", "d"]) == 2.0
        assert shannon_entropy(list(range(8))) == 3.0

    def test_single_value_is_zero(self):
        assert shannon_entropy(["x"] * 10) == 0.0
        assert shannon_entropy([]) == 0.0

    def test_known_skewed_value(self):
        # counts {a: 1, b: 3}: H = -(1/4 log2 1/4 + 3/4 log2 3/4)
        expected = -(0.25 * math.log2(0.25) + 0.75 * math.log2(0.75))
        assert abs(shannon_entropy(["a", "b", "b", "b"]) - expected) < 1e-12

    def test_accepts_counter(self):
        assert shannon_entropy(Counter({"a": 2, "b": 2})) == 1.0


class TestNormalizedEntropy:
    def test_all_distinct_is_one(self):
        assert normalized_entropy(list(range(16))) == 1.0

    def test_all_same_is_zero(self):
        assert normalized_entropy(["x"] * 16) == 0.0

    def test_bounds(self):
        rng = random.Random(5)
        ids = [rng.randrange(6) for _ in range(50)]
        assert 0.0 <= normalized_entropy(ids) <= 1.0


class TestDistribution:
    def test_counts_and_anonymity_sets(self):
        dist = distribution(["a", "a", "a", "b", "c"])
        assert dist["count"] == 5
        assert dist["distinct"] == 3
        assert dist["unique_ids"] == 2
        assert dist["unique_fraction"] == 0.4
        assert dist["anonymity_sets"]["sizes"] == {"1": 2, "3": 1}
        assert dist["anonymity_sets"]["min"] == 1
        assert dist["anonymity_sets"]["max"] == 3

    def test_sizes_partition_the_population(self):
        rng = random.Random(11)
        ids = [rng.randrange(20) for _ in range(200)]
        dist = distribution(ids)
        sizes = dist["anonymity_sets"]["sizes"]
        assert sum(int(s) * n for s, n in sizes.items()) == dist["count"]
        assert sum(sizes.values()) == dist["distinct"]

    def test_exact_permutation_invariance(self):
        """Floats, not just values-up-to-epsilon: reordering observations
        must reproduce bit-identical entropy numbers (counts are sorted
        before any reduction)."""
        rng = random.Random(23)
        ids = [rng.randrange(40) for _ in range(500)]
        base = distribution(ids)
        for _ in range(5):
            rng.shuffle(ids)
            # relabel ids bijectively too (what user reordering does)
            perm = list(range(40))
            rng.shuffle(perm)
            assert distribution([perm[i] for i in ids]) == base

    def test_empty(self):
        dist = distribution([])
        assert dist["count"] == 0
        assert dist["entropy_bits"] == 0.0
        assert dist["anonymity_sets"]["sizes"] == {}
