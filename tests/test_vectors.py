"""Vector semantics: purity, jitter sensitivity, registry."""
import numpy as np
import pytest

from repro.platform import AudioStack, REFERENCE_PATH
from repro.vectors import (AUDIO_VECTORS, COMPARATOR_VECTORS, VECTORS,
                           UnknownVectorError, get_vector, register)

STACK = AudioStack("blink", "ucrt", "radix2", "blink")
OTHER = AudioStack("webkit", "apple-libm", "bluestein", "webkit", 48000)


def test_registry_contents():
    assert set(AUDIO_VECTORS) == {"dc", "fft", "hybrid", "custom", "merged",
                                  "am", "fm"}
    assert set(COMPARATOR_VECTORS) == {"mathjs", "canvas", "fonts",
                                       "useragent"}
    assert set(VECTORS) == set(AUDIO_VECTORS) | set(COMPARATOR_VECTORS)
    for name in AUDIO_VECTORS:
        assert get_vector(name).kind == "audio"
    for name in COMPARATOR_VECTORS:
        assert get_vector(name).kind == "comparator"


def test_unknown_vector_is_typed_and_a_keyerror():
    with pytest.raises(UnknownVectorError) as info:
        get_vector("nope")
    assert "nope" in str(info.value) and "dc" in str(info.value)
    with pytest.raises(KeyError):  # backward-compat contract
        get_vector("nope")


def test_register_refuses_duplicate_names():
    from repro.vectors.dc import DCVector
    with pytest.raises(ValueError, match="already registered"):
        register(DCVector())


@pytest.mark.parametrize("name", sorted(AUDIO_VECTORS))
def test_render_is_pure(name):
    vector = get_vector(name)
    assert vector.render(STACK, None) == vector.render(STACK, None)


@pytest.mark.parametrize("name", sorted(AUDIO_VECTORS))
def test_render_separates_stacks(name):
    vector = get_vector(name)
    assert vector.render(STACK, None) != vector.render(OTHER, None)


def test_efp_is_md5_hex():
    efp = get_vector("dc").render(STACK, None)
    assert len(efp) == 32
    int(efp, 16)


@pytest.mark.parametrize("name", ["dc", "custom"])
def test_analyser_free_vectors_ignore_jitter_path(name):
    vector = get_vector(name)
    assert vector.canonical_path("t3.d1.m1.p1") == "-"
    assert vector.render(STACK, "t3.d1.m1.p1") == vector.render(STACK, None)


@pytest.mark.parametrize("name", ["fft", "hybrid", "merged", "am", "fm"])
def test_analyser_vectors_feel_jitter(name):
    vector = get_vector(name)
    ref = vector.render(STACK, REFERENCE_PATH)
    assert vector.render(STACK, None) == ref  # None means reference
    for path in ("t1.d0.m0.p0", "t0.d0.m1.p0", "t0.d0.m0.p1"):
        assert vector.render(STACK, path) != ref


def test_collect_samples_paths():
    vector = get_vector("fft")
    quiet = vector.collect(STACK, np.random.default_rng(1), load=0.0)
    assert quiet == vector.render(STACK, REFERENCE_PATH)
    rng = np.random.default_rng(2)
    observed = {vector.collect(STACK, rng, load=0.95) for _ in range(12)}
    assert len(observed) >= 2  # heavy load -> fickle


def test_fft_family_shares_fft_sensitivity_dc_does_not():
    """Stacks that differ only in FFT backend must collide on DC (it never
    runs an FFT) and separate on the analyser vectors — the paper's 'the
    discriminatory cause is the FFT operation alone'."""
    a = AudioStack("blink", "ucrt", "radix2", "blink")
    b = AudioStack("blink", "ucrt", "splitradix", "blink")
    assert get_vector("dc").render(a, None) == get_vector("dc").render(b, None)
    assert get_vector("fft").render(a, None) != get_vector("fft").render(b, None)


def test_new_sum_vectors_share_dc_fft_blindness():
    """custom sums time-domain samples like dc, so FFT-only stack changes
    cannot separate it; the new analyser vectors must separate."""
    a = AudioStack("blink", "ucrt", "radix2", "blink")
    b = AudioStack("blink", "ucrt", "splitradix", "blink")
    assert get_vector("custom").render(a, None) \
        == get_vector("custom").render(b, None)
    for name in ("merged", "am", "fm"):
        assert get_vector(name).render(a, None) \
            != get_vector(name).render(b, None)


def test_comparator_vectors_render_device_stacks():
    """Comparators fingerprint their own per-device stacks, purely and
    distinctly across different identities."""
    from repro.population.sampler import sample_population
    devices = sample_population(30, seed=5)
    for name in COMPARATOR_VECTORS:
        vector = get_vector(name)
        stacks = [vector.stack_of(d) for d in devices]
        efps = [vector.render(s, vector.canonical_path(None)) for s in stacks]
        assert efps == [vector.render(s, vector.canonical_path(None))
                        for s in stacks]  # pure
        assert all(len(e) == 32 for e in efps)
        # same cache key <=> same eFP (the render is a function of the stack)
        by_key = {}
        for stack, efp in zip(stacks, efps):
            assert by_key.setdefault(stack.cache_key(), efp) == efp
        assert len(set(efps)) == len(by_key) > 1


def test_comparator_stack_of_rejects_bare_devices():
    """Hand-built audio-only devices carry no comparator identities; the
    comparators must say so instead of crashing downstream."""
    from repro.population.device import Device
    bare = Device(user_id="u0", stack=STACK, os="Windows", browser="Chrome",
                  load=0.1)
    for name in ("canvas", "fonts", "useragent"):
        with pytest.raises(ValueError, match="sampler-built"):
            get_vector(name).stack_of(bare)
    # mathjs only needs the audio stack's math backend
    assert get_vector("mathjs").stack_of(bare).cache_key() == "mathjs|ucrt"


def test_mathjs_separates_math_backends_only():
    vector = get_vector("mathjs")
    from repro.vectors.mathjs import MathProbe
    a = vector.render(MathProbe("ucrt"), "-")
    b = vector.render(MathProbe("glibc"), "-")
    c = vector.render(MathProbe("ucrt"), "-")
    assert a != b and a == c
