"""Vector semantics: purity, jitter sensitivity, registry."""
import numpy as np
import pytest

from repro.platform import AudioStack, REFERENCE_PATH
from repro.vectors import VECTORS, get_vector

STACK = AudioStack("blink", "ucrt", "radix2", "blink")
OTHER = AudioStack("webkit", "apple-libm", "bluestein", "webkit", 48000)


def test_registry_contents():
    assert set(VECTORS) == {"dc", "fft", "hybrid"}
    with pytest.raises(KeyError):
        get_vector("am")


@pytest.mark.parametrize("name", sorted(VECTORS))
def test_render_is_pure(name):
    vector = get_vector(name)
    assert vector.render(STACK, None) == vector.render(STACK, None)


@pytest.mark.parametrize("name", sorted(VECTORS))
def test_render_separates_stacks(name):
    vector = get_vector(name)
    assert vector.render(STACK, None) != vector.render(OTHER, None)


def test_efp_is_md5_hex():
    efp = get_vector("dc").render(STACK, None)
    assert len(efp) == 32
    int(efp, 16)


def test_dc_ignores_jitter_path():
    dc = get_vector("dc")
    assert dc.canonical_path("t3.d1.m1.p1") == "-"
    assert dc.render(STACK, "t3.d1.m1.p1") == dc.render(STACK, None)


@pytest.mark.parametrize("name", ["fft", "hybrid"])
def test_analyser_vectors_feel_jitter(name):
    vector = get_vector(name)
    ref = vector.render(STACK, REFERENCE_PATH)
    assert vector.render(STACK, None) == ref  # None means reference
    for path in ("t1.d0.m0.p0", "t0.d0.m1.p0", "t0.d0.m0.p1"):
        assert vector.render(STACK, path) != ref


def test_collect_samples_paths():
    vector = get_vector("fft")
    quiet = vector.collect(STACK, np.random.default_rng(1), load=0.0)
    assert quiet == vector.render(STACK, REFERENCE_PATH)
    rng = np.random.default_rng(2)
    observed = {vector.collect(STACK, rng, load=0.95) for _ in range(12)}
    assert len(observed) >= 2  # heavy load -> fickle


def test_fft_family_shares_fft_sensitivity_dc_does_not():
    """Stacks that differ only in FFT backend must collide on DC (it never
    runs an FFT) and separate on the analyser vectors — the paper's 'the
    discriminatory cause is the FFT operation alone'."""
    a = AudioStack("blink", "ucrt", "radix2", "blink")
    b = AudioStack("blink", "ucrt", "splitradix", "blink")
    assert get_vector("dc").render(a, None) == get_vector("dc").render(b, None)
    assert get_vector("fft").render(a, None) != get_vector("fft").render(b, None)
