"""Checkpoint/resume coverage: crash-safe snapshots during the render
phase, resume of a killed run (simulated truncation AND a real SIGKILL),
torn-write and corrupt-checkpoint quarantine, and the refusal to resume a
checkpoint that belongs to a different study."""
import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro import Recorder, RenderCache, run_study
from repro.resilience import (CHECKPOINT_FORMAT, CHECKPOINT_KIND, Fault,
                              FaultPlan, study_fingerprint, write_checkpoint)
from repro.resilience.faults import ENV_VAR

STUDY = dict(user_count=5, iterations=3, vectors=("dc", "fft"), seed=7)

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


@pytest.fixture(scope="module")
def clean():
    mp = pytest.MonkeyPatch()
    mp.delenv(ENV_VAR, raising=False)
    try:
        dataset = run_study(workers=0, **STUDY)
    finally:
        mp.undo()
    return dataset


def _bytes_of(dataset, tmp_path, name):
    path = tmp_path / name
    dataset.save(str(path))
    return path.read_bytes()


class TestCheckpointWriting:
    def test_checkpoint_written_with_study_fingerprint(self, clean, tmp_path):
        ckpt = tmp_path / "study.ckpt"
        recorder = Recorder()
        dataset = run_study(workers=0, checkpoint_path=str(ckpt),
                            checkpoint_every=1, recorder=recorder, **STUDY)
        assert dataset == clean
        payload = json.loads(ckpt.read_text())
        assert payload["kind"] == CHECKPOINT_KIND
        assert payload["format"] == CHECKPOINT_FORMAT
        assert payload["study"] == study_fingerprint(
            STUDY["seed"], STUDY["user_count"], STUDY["iterations"],
            STUDY["vectors"])
        assert payload["rendered"]  # holds the full render map at the end
        assert recorder.counters["checkpoint.writes"] >= 1

    def test_resume_of_complete_checkpoint_renders_nothing(self, clean,
                                                           tmp_path):
        ckpt = tmp_path / "study.ckpt"
        run_study(workers=0, checkpoint_path=str(ckpt), **STUDY)
        recorder = Recorder()
        dataset = run_study(workers=0, checkpoint_path=str(ckpt),
                            cache=RenderCache(), recorder=recorder, **STUDY)
        assert dataset == clean
        assert recorder.counters["checkpoint.resumed_classes"] >= 1
        # nothing re-rendered
        assert recorder.counters.get("retry.attempts", 0) == 0


class TestKillResume:
    def test_truncated_checkpoint_resumes_byte_identical(self, clean,
                                                         tmp_path):
        """Simulated mid-run kill: keep only half the checkpoint's render
        map, resume, and require byte-identical output plus strictly less
        render work than a cold run."""
        ckpt = tmp_path / "study.ckpt"
        run_study(workers=0, checkpoint_path=str(ckpt), **STUDY)
        payload = json.loads(ckpt.read_text())
        keys = sorted(payload["rendered"])
        kept = {k: payload["rendered"][k] for k in keys[:len(keys) // 2]}
        payload["rendered"] = kept
        ckpt.write_text(json.dumps(payload))

        recorder = Recorder()
        dataset = run_study(workers=0, checkpoint_path=str(ckpt),
                            cache=RenderCache(), recorder=recorder, **STUDY)
        assert _bytes_of(dataset, tmp_path, "resumed.json") == \
            _bytes_of(clean, tmp_path, "clean.json")
        assert recorder.counters["checkpoint.resumed_classes"] == len(kept)
        # the resumed run rendered only the missing classes
        cold = Recorder()
        run_study(workers=0, cache=RenderCache(), recorder=cold, **STUDY)
        assert recorder.counters["retry.attempts"] < \
            cold.counters["retry.attempts"]

    def test_sigkill_mid_render_then_resume(self, clean, tmp_path):
        """The real thing: a child process running the study (slowed by a
        delay fault) is SIGKILLed once its first checkpoint lands; the
        resumed run completes and matches the fault-free dataset."""
        plan = FaultPlan(seed=1, faults=(
            Fault(kind="delay", fraction=1.0, times=None, seconds=0.25),))
        plan_path = plan.save(str(tmp_path / "slow.json"))
        ckpt = tmp_path / "study.ckpt"
        script = tmp_path / "child.py"
        script.write_text(textwrap.dedent(f"""
            from repro import run_study
            run_study(user_count={STUDY['user_count']},
                      iterations={STUDY['iterations']},
                      vectors={STUDY['vectors']!r}, seed={STUDY['seed']},
                      workers=0, checkpoint_path={str(ckpt)!r},
                      checkpoint_every=1)
        """))
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        env[ENV_VAR] = plan_path
        child = subprocess.Popen([sys.executable, str(script)], env=env)
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if ckpt.exists() and child.poll() is None:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("child never wrote a checkpoint")
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30)

        recorder = Recorder()
        dataset = run_study(workers=0, checkpoint_path=str(ckpt),
                            recorder=recorder, **STUDY)
        assert _bytes_of(dataset, tmp_path, "resumed.json") == \
            _bytes_of(clean, tmp_path, "clean.json")
        assert recorder.counters["checkpoint.resumed_classes"] >= 1


class TestCheckpointDefenses:
    def test_torn_write_fault_is_counted_and_survivable(self, clean,
                                                        monkeypatch,
                                                        tmp_path):
        plan = FaultPlan(seed=3,
                         faults=(Fault(kind="torn_checkpoint", times=1),))
        monkeypatch.setenv(ENV_VAR, plan.save(str(tmp_path / "torn.json")))
        ckpt = tmp_path / "study.ckpt"
        recorder = Recorder()
        dataset = run_study(workers=0, checkpoint_path=str(ckpt),
                            checkpoint_every=1, recorder=recorder, **STUDY)
        assert dataset == clean
        assert recorder.counters["checkpoint.torn_writes"] == 1
        assert recorder.counters["checkpoint.writes"] >= 1
        # the last (untorn) write healed the file
        assert json.loads(ckpt.read_text())["kind"] == CHECKPOINT_KIND

    def test_corrupt_checkpoint_quarantined_and_run_starts_cold(self, clean,
                                                                tmp_path):
        ckpt = tmp_path / "study.ckpt"
        ckpt.write_text('{"kind": "repro.study.checkpo')  # torn JSON
        recorder = Recorder()
        dataset = run_study(workers=0, checkpoint_path=str(ckpt),
                            recorder=recorder, **STUDY)
        assert dataset == clean
        assert recorder.counters["checkpoint.corrupt"] == 1
        quarantined = tmp_path / "study.ckpt.corrupt"
        assert quarantined.exists()
        assert quarantined.read_text().startswith('{"kind"')

    def test_checkpoint_of_different_study_refuses_to_resume(self, tmp_path):
        ckpt = tmp_path / "study.ckpt"
        other = study_fingerprint(STUDY["seed"] + 1, STUDY["user_count"],
                                  STUDY["iterations"], STUDY["vectors"])
        write_checkpoint(str(ckpt), other, {"k": "e"}, completed_jobs=1)
        with pytest.raises(ValueError, match="seed"):
            run_study(workers=0, checkpoint_path=str(ckpt), **STUDY)

    def test_foreign_structure_quarantined_not_trusted(self, clean, tmp_path):
        ckpt = tmp_path / "study.ckpt"
        ckpt.write_text(json.dumps({"kind": "something-else",
                                    "rendered": {"x": "y"}}))
        dataset = run_study(workers=0, checkpoint_path=str(ckpt), **STUDY)
        assert dataset == clean
        assert (tmp_path / "study.ckpt.corrupt").exists()
