"""Run-report coverage: `run_study(report_path=...)` emits a valid,
self-consistent report; validate_report catches malformations; the
`python -m repro.obs.report` CLI renders and schema-checks it."""
import copy
import json
import os
import subprocess
import sys

import pytest

from repro import RenderCache, run_study
from repro.obs import Recorder, build_report, render_report, validate_report
from repro.obs.report import STUDY_PHASES, main as report_main

STUDY = dict(user_count=8, iterations=4, vectors=("dc", "fft", "hybrid"),
             seed=13, workers=0)


@pytest.fixture(scope="module")
def report_and_cache(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "report.json"
    cache = RenderCache()
    dataset = run_study(cache=cache, report_path=str(path), **STUDY)
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh), cache, dataset, str(path)


class TestStudyReport:
    def test_schema_valid(self, report_and_cache):
        report, _, _, _ = report_and_cache
        assert validate_report(report) == []

    def test_phase_spans_present(self, report_and_cache):
        report, _, _, _ = report_and_cache
        names = [p["name"] for p in report["phases"]]
        assert names == list(STUDY_PHASES)
        assert all(p["duration_s"] >= 0 for p in report["phases"])
        # the probe span nests under render
        span_names = {s["name"] for s in report["spans"]}
        assert {"plan", "render", "assemble", "probe"} <= span_names

    def test_cache_section_matches_cache_state(self, report_and_cache):
        report, cache, _, _ = report_and_cache
        assert report["cache"] == cache.stats()
        assert report["cache"]["hits"] + report["cache"]["misses"] > 0

    def test_per_vector_latency_histograms(self, report_and_cache):
        report, cache, _, _ = report_and_cache
        rendered = 0
        for vector in STUDY["vectors"]:
            hist = report["histograms"][f"render.latency_s.{vector}"]
            assert hist["count"] > 0
            assert hist["sum"] > 0
            rendered += hist["count"]
        # one timed render per cache miss, no more, no fewer
        assert rendered == cache.stats()["misses"]
        assert report["counters"]["render.renders"] == rendered

    def test_node_breakdown_for_profiled_stacks(self, report_and_cache):
        report, _, _, _ = report_and_cache
        assert report["node_profile"], "no stack was profiled"
        # at least one analyser-bearing stack must attribute time across
        # the full node set, including its FFT backend
        assert any(
            {"Oscillator", "Gain", "Analyser", "DynamicsCompressor"} <= set(nodes)
            and any(label.startswith("fft:") for label in nodes)
            for nodes in report["node_profile"].values())
        for nodes in report["node_profile"].values():
            for entry in nodes.values():
                assert entry["seconds"] >= 0 and entry["calls"] > 0

    def test_workload_and_pool_sections(self, report_and_cache):
        report, _, _, _ = report_and_cache
        assert report["workload"]["users"] == STUDY["user_count"]
        assert report["workload"]["grid_items"] == 8 * 4 * 3
        assert report["pool"]["jobs"] == report["counters"]["pool.jobs"]
        assert report["pool"]["pooled"] is False

    def test_dataset_identical_with_and_without_observability(self, report_and_cache):
        _, _, observed_dataset, _ = report_and_cache
        assert run_study(**STUDY) == observed_dataset

    def test_render_report_renders_every_section(self, report_and_cache):
        report, _, _, _ = report_and_cache
        text = render_report(report)
        for marker in ("phases:", "cache:", "latency histograms:",
                       "hot nodes", "pool:"):
            assert marker in text


class TestValidator:
    def _valid(self, report_and_cache):
        return copy.deepcopy(report_and_cache[0])

    def test_rejects_non_object(self):
        assert validate_report([1, 2]) != []
        assert validate_report(None) != []

    def test_rejects_wrong_kind_or_format(self, report_and_cache):
        report = self._valid(report_and_cache)
        report["kind"] = "something-else"
        report["format"] = 99
        problems = validate_report(report)
        assert any("kind" in p for p in problems)
        assert any("format" in p for p in problems)

    def test_rejects_missing_phase(self, report_and_cache):
        report = self._valid(report_and_cache)
        report["phases"] = [p for p in report["phases"] if p["name"] != "render"]
        assert any("render" in p for p in validate_report(report))

    def test_rejects_inconsistent_histogram(self, report_and_cache):
        report = self._valid(report_and_cache)
        name = next(iter(report["histograms"]))
        report["histograms"][name]["count"] += 1
        assert any("sum to count" in p for p in validate_report(report))

    def test_rejects_malformed_node_profile(self, report_and_cache):
        report = self._valid(report_and_cache)
        report["node_profile"]["stack"] = {"Gain": {"seconds": "fast"}}
        assert validate_report(report) != []

    def test_build_report_minimal_recorder(self):
        rec = Recorder()
        for phase in STUDY_PHASES:
            with rec.span(phase):
                pass
        report = build_report(rec, workload={"users": 1})
        assert validate_report(report) == []
        assert report["cache"] is None and report["pool"] is None


class TestCLI:
    def test_check_passes_on_valid_report(self, report_and_cache):
        _, _, _, path = report_and_cache
        assert report_main([path, "--check"]) == 0

    def test_renders_tables(self, report_and_cache, capsys):
        _, _, _, path = report_and_cache
        assert report_main([path]) == 0
        out = capsys.readouterr().out
        assert "== run report ==" in out and "phases:" in out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "nope.json")]) == 2
        assert "no report" in capsys.readouterr().err

    def test_invalid_json_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert report_main([str(bad), "--check"]) == 2

    def test_schema_violation_fails(self, tmp_path, report_and_cache, capsys):
        report = copy.deepcopy(report_and_cache[0])
        del report["phases"]
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(report))
        assert report_main([str(path), "--check"]) == 2
        assert "phases" in capsys.readouterr().err

    def test_python_dash_m_entrypoint(self, report_and_cache):
        import os
        _, _, _, path = report_and_cache
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.report", path, "--check"],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        assert "RuntimeWarning" not in proc.stderr


class TestChaosReportCheck:
    """--check on reports from fault-injected runs, and on reports whose
    events sidecar was damaged after the fact."""

    @pytest.fixture()
    def chaos_report(self, tmp_path, monkeypatch):
        """A $REPRO_FAULTS-injected study run with report + events
        sidecar (one crash and one corrupt return, both recovered)."""
        from repro import FaultPlan
        from repro.resilience import Fault, RetryPolicy
        from repro.resilience.faults import ENV_VAR
        study = dict(user_count=6, iterations=3,
                     vectors=("dc", "fft", "hybrid"), seed=11)
        monkeypatch.delenv(ENV_VAR, raising=False)
        probe = RenderCache()
        run_study(cache=probe, workers=0, **study)
        keys = sorted(probe._store)
        plan = FaultPlan(seed=3, faults=(
            Fault(kind="crash", keys=(keys[0],), times=1),
            Fault(kind="corrupt", keys=(keys[-1],), times=1),
        ))
        monkeypatch.setenv(ENV_VAR, plan.save(str(tmp_path / "plan.json")))
        report_path = str(tmp_path / "report.json")
        events_path = str(tmp_path / "events.jsonl")
        run_study(cache=RenderCache(), workers=0, report_path=report_path,
                  event_log_path=events_path,
                  retry_policy=RetryPolicy(base_delay_s=0.005,
                                           max_delay_s=0.05),
                  **study)
        return report_path, events_path

    def test_chaos_run_report_passes_check(self, chaos_report):
        report_path, _ = chaos_report
        payload = json.load(open(report_path))
        # the faults really perturbed the run this report describes
        assert payload["retry"]["retries"] >= 2
        assert payload["events"]["kinds"].get("job.failed", 0) == 2
        assert report_main([report_path, "--check"]) == 0

    def test_truncated_events_sidecar_fails_check_with_named_error(
            self, chaos_report, capsys):
        report_path, events_path = chaos_report
        with open(events_path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        with open(events_path, "w", encoding="utf-8") as fh:
            fh.writelines(lines[: len(lines) // 2])
        assert report_main([report_path, "--check"]) == 2
        err = capsys.readouterr().err
        assert "events sidecar truncated" in err
        assert f"holds {len(lines) // 2} of {len(lines)} events" in err

    def test_missing_events_sidecar_fails_check(self, chaos_report, capsys):
        report_path, events_path = chaos_report
        os.remove(events_path)
        assert report_main([report_path, "--check"]) == 2
        assert "events sidecar missing" in capsys.readouterr().err

    def test_torn_sidecar_tail_is_reported_as_a_sidecar_problem(
            self, chaos_report, capsys):
        """A sidecar whose final line was torn by a crash: the events
        before it are intact but --check must surface the tear."""
        report_path, events_path = chaos_report
        with open(events_path, "ab") as fh:
            fh.write(b'{"schema": 1, "kind": "study.e')
        assert report_main([report_path, "--check"]) == 2
        assert "events sidecar: torn tail" in capsys.readouterr().err
