"""StudyDataset.from_dict integrity validation: corrupt or inconsistent
payloads raise ValueError naming the offending field instead of
propagating bad data into the analysis layer."""
import json

import pytest

from repro import StudyDataset, run_study


@pytest.fixture()
def payload():
    return run_study(user_count=4, iterations=3, vectors=("dc", "fft"),
                     seed=9, workers=0).to_dict()


def test_valid_payload_round_trips(payload):
    dataset = StudyDataset.from_dict(payload)
    assert dataset.to_dict() == payload


def test_user_count_mismatch(payload):
    payload["meta"]["user_count"] = 99
    with pytest.raises(ValueError, match="user_count"):
        StudyDataset.from_dict(payload)


def test_series_vector_absent_from_meta(payload):
    payload["series"]["mystery"] = payload["series"]["dc"]
    with pytest.raises(ValueError, match="absent from meta.vectors"):
        StudyDataset.from_dict(payload)


def test_declared_vector_missing_from_series(payload):
    del payload["series"]["fft"]
    with pytest.raises(ValueError, match="no entry"):
        StudyDataset.from_dict(payload)


def test_series_length_mismatch(payload):
    uid = payload["users"][0]["id"]
    payload["series"]["dc"][uid] = payload["series"]["dc"][uid][:-1]
    with pytest.raises(ValueError, match="iterations"):
        StudyDataset.from_dict(payload)


def test_series_unknown_user(payload):
    payload["series"]["dc"]["ghost"] = ["e"] * 3
    with pytest.raises(ValueError, match="do not match the users list"):
        StudyDataset.from_dict(payload)


def test_duplicate_user_ids(payload):
    payload["users"][1] = payload["users"][0]
    with pytest.raises(ValueError, match="duplicate"):
        StudyDataset.from_dict(payload)


@pytest.mark.parametrize("iterations", [0, -1, "3", 2.5, True])
def test_bad_iterations(payload, iterations):
    payload["meta"]["iterations"] = iterations
    with pytest.raises(ValueError, match="iterations"):
        StudyDataset.from_dict(payload)


def test_empty_vectors(payload):
    payload["meta"]["vectors"] = []
    with pytest.raises(ValueError, match="vectors"):
        StudyDataset.from_dict(payload)


@pytest.mark.parametrize("key", ["meta", "users", "series"])
def test_missing_top_level_key(payload, key):
    del payload[key]
    with pytest.raises(ValueError, match=key):
        StudyDataset.from_dict(payload)


def test_missing_meta_key(payload):
    del payload["meta"]["seed"]
    with pytest.raises(ValueError, match="seed"):
        StudyDataset.from_dict(payload)


def test_non_string_efp(payload):
    uid = payload["users"][0]["id"]
    payload["series"]["dc"][uid][0] = 42
    with pytest.raises(ValueError, match="array of strings"):
        StudyDataset.from_dict(payload)


def test_load_rejects_corrupt_file(tmp_path, payload):
    payload["meta"]["user_count"] = 99
    path = tmp_path / "corrupt.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="user_count"):
        StudyDataset.load(str(path))


def test_not_an_object():
    with pytest.raises(ValueError, match="object"):
        StudyDataset.from_dict([1, 2, 3])
